#include "core/sharded_coordinator.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>
#include <tuple>

#include "core/fault_injection.h"
#include "obs/names.h"
#include "obs/registry.h"
#include "obs/span.h"

namespace wiscape::core {

namespace {
// Pipeline-level metrics, aggregated over every sharded_coordinator in the
// process; per-shard detail is registered per shard index below.
struct sharded_metrics {
  obs::counter& routed;
  obs::counter& dropped;
  obs::counter& apply_errors;
  obs::counter& drain_batches;
  obs::histogram& drain_latency;
};

sharded_metrics& metrics() {
  auto& reg = obs::registry::global();
  static sharded_metrics m{
      reg.get_counter(obs::names::kShardedRoutedTotal),
      reg.get_counter(obs::names::kShardedDropped),
      reg.get_counter(obs::names::kShardedApplyErrors),
      reg.get_counter(obs::names::kShardedDrainBatches),
      reg.get_histogram(obs::names::kShardedDrainLatency)};
  return m;
}

std::string shard_metric(std::size_t index, const char* suffix) {
  return std::string(obs::names::kShardPrefix) + std::to_string(index) + "." +
         suffix;
}

// Applies one record, containing any throw. coordinator::report rejects all
// wire-reachable bad input itself, so this catch is defense in depth: a
// throw unwinding a drain worker would std::terminate the whole process, so
// an un-applicable record is counted and dropped instead. Call with the
// shard's mutex held.
void apply_record(coordinator& coord, const trace::measurement_record& rec) {
  try {
    coord.report(rec);
  } catch (const std::exception&) {
    metrics().apply_errors.inc();
  }
}
}  // namespace

struct sharded_coordinator::shard {
  shard(geo::zone_grid grid, std::vector<std::string> networks,
        const coordinator_config& cfg, std::uint64_t seed,
        std::size_t queue_capacity, std::size_t index)
      : coord(std::move(grid), std::move(networks), cfg, seed),
        queue(queue_capacity),
        routed_metric(obs::registry::global().get_counter(
            shard_metric(index, obs::names::kShardRoutedSuffix))),
        drained_metric(obs::registry::global().get_counter(
            shard_metric(index, obs::names::kShardDrainedSuffix))) {}

  mutable std::mutex mu;  // guards coord and the drain stats below
  coordinator coord;
  report_queue queue;
  std::atomic<std::uint64_t> enqueued{0};
  std::atomic<std::uint64_t> applied{0};
  std::condition_variable drained_cv;  // signalled after each applied batch
  std::uint64_t tasks = 0;
  std::uint64_t drain_batches = 0;
  double drain_latency_s = 0.0;
  obs::counter& routed_metric;   // core.sharded.shard<i>.routed
  obs::counter& drained_metric;  // core.sharded.shard<i>.drained
  // Portion of `enqueued` already published to the routed counters (guarded
  // by mu). Routing is the per-report hot path, so the registry counters are
  // fed deltas of the pre-existing `enqueued` atomic at drain and flush
  // boundaries instead of one fetch-add per report.
  std::uint64_t routed_published = 0;

  /// Publishes any un-counted routed reports (enqueued - routed_published)
  /// into the process-wide and per-shard routed counters. Call with mu held.
  void publish_routed_locked(obs::counter& routed_total) {
    const std::uint64_t enq = enqueued.load(std::memory_order_relaxed);
    if (enq > routed_published) {
      const std::uint64_t delta = enq - routed_published;
      routed_published = enq;
      routed_total.inc(delta);
      routed_metric.inc(delta);
    }
  }
};

sharded_coordinator::sharded_coordinator(geo::zone_grid grid,
                                         std::vector<std::string> networks,
                                         sharded_config cfg,
                                         std::uint64_t seed)
    : grid_(grid),
      cfg_(cfg),
      wire_ids_(networks),
      ring_(cfg.coordinator.alert_ring_capacity) {
  if (cfg.num_shards == 0) {
    throw std::invalid_argument("sharded_coordinator needs >= 1 shard");
  }
  shards_.reserve(cfg.num_shards);
  const stats::rng_stream seeder(seed);
  for (std::size_t i = 0; i < cfg.num_shards; ++i) {
    const std::uint64_t shard_seed = i == 0 ? seed : seeder.fork(i).seed();
    shards_.push_back(std::make_unique<shard>(
        grid, networks, cfg.coordinator, shard_seed, cfg.queue_capacity, i));
    // All shards sequence their alerts through the shared ring -- one total
    // order of alert sequence numbers across the whole coordinator.
    shards_.back()->coord.redirect_alert_sink(ring_);
  }
  if (!cfg_.synchronous) {
    workers_.reserve(shards_.size());
    for (auto& sh : shards_) {
      shard* owned = sh.get();
      workers_.emplace_back([this, owned] { drain_loop(*owned); });
    }
  }
}

sharded_coordinator::~sharded_coordinator() { stop(); }

std::size_t sharded_coordinator::shard_of(
    const geo::zone_id& zone) const noexcept {
  return geo::zone_id_hash{}(zone) % shards_.size();
}

std::size_t sharded_coordinator::shard_of(
    const geo::lat_lon& pos) const noexcept {
  return shard_of(grid_.zone_of(pos));
}

sharded_coordinator::shard& sharded_coordinator::owner_of(
    const geo::zone_id& zone) noexcept {
  return *shards_[shard_of(zone)];
}

std::optional<measurement_task> sharded_coordinator::checkin(
    const geo::lat_lon& pos, double time_s, std::size_t network_index,
    std::size_t active_clients_in_zone, std::uint64_t client_id) {
  shard& sh = owner_of(grid_.zone_of(pos));
  std::optional<measurement_task> task;
  {
    std::lock_guard lock(sh.mu);
    task = sh.coord.checkin(pos, time_s, network_index,
                            active_clients_in_zone, client_id);
    if (task) ++sh.tasks;
  }
  if (task) tasks_issued_.fetch_add(1, std::memory_order_relaxed);
  return task;
}

bool sharded_coordinator::report(const trace::measurement_record& rec) {
  if (stopped_.load(std::memory_order_relaxed)) {
    metrics().dropped.inc();
    return false;
  }
  shard& sh = owner_of(grid_.zone_of(rec.pos));
  if (cfg_.synchronous) {
    {
      std::lock_guard lock(sh.mu);
      apply_record(sh.coord, rec);
      sh.enqueued.fetch_add(1, std::memory_order_relaxed);
      sh.applied.fetch_add(1, std::memory_order_relaxed);
      reports_received_.fetch_add(1, std::memory_order_relaxed);
      sh.publish_routed_locked(metrics().routed);
    }
    sh.drained_metric.inc();
    return true;
  }
  if (!sh.queue.push(rec)) {
    metrics().dropped.inc();
    return false;
  }
  // Hot path: no registry fetch-adds here. The routed counters are fed from
  // `enqueued` deltas at drain/flush boundaries (publish_routed_locked), so
  // snapshots may lag mid-run but are exact once the pipeline is flushed.
  sh.enqueued.fetch_add(1, std::memory_order_relaxed);
  reports_received_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::size_t sharded_coordinator::report_batch(
    std::span<const trace::measurement_record> recs) {
  if (recs.empty()) return 0;
  if (stopped_.load(std::memory_order_relaxed)) {
    metrics().dropped.inc(recs.size());
    return 0;
  }
  // Route once, then touch each shard once. The per-shard copies are the
  // price of one lock acquisition per shard instead of one per record; the
  // single-shard case routes straight through without regrouping.
  std::size_t accepted = 0;
  if (shards_.size() == 1) {
    accepted = ingest_group(*shards_[0], recs);
  } else {
    std::vector<std::vector<trace::measurement_record>> groups(shards_.size());
    for (const auto& rec : recs) {
      groups[shard_of(grid_.zone_of(rec.pos))].push_back(rec);
    }
    for (std::size_t s = 0; s < groups.size(); ++s) {
      if (!groups[s].empty()) accepted += ingest_group(*shards_[s], groups[s]);
    }
  }
  reports_received_.fetch_add(accepted, std::memory_order_relaxed);
  if (accepted < recs.size()) metrics().dropped.inc(recs.size() - accepted);
  return accepted;
}

std::size_t sharded_coordinator::ingest_group(
    shard& sh, std::span<const trace::measurement_record> recs) {
  if (cfg_.synchronous) {
    {
      std::lock_guard lock(sh.mu);
      for (const auto& rec : recs) apply_record(sh.coord, rec);
      sh.enqueued.fetch_add(recs.size(), std::memory_order_relaxed);
      sh.applied.fetch_add(recs.size(), std::memory_order_relaxed);
      sh.publish_routed_locked(metrics().routed);
    }
    sh.drained_metric.inc(recs.size());
    return recs.size();
  }
  const std::size_t pushed = sh.queue.push_batch(recs);
  sh.enqueued.fetch_add(pushed, std::memory_order_relaxed);
  return pushed;
}

void sharded_coordinator::drain_loop(shard& sh) {
  std::vector<trace::measurement_record> batch;
  batch.reserve(cfg_.drain_batch);
  for (;;) {
    batch.clear();
    if (sh.queue.pop_batch(batch, cfg_.drain_batch) == 0) return;
    // Scenario seam: a slow-consumer stressor stalls the drain worker here
    // (outside the shard lock), backing the queue up against producers.
    // Timing-only -- the batch is always applied; which records exist and
    // what they compute never changes. Un-hooked cost: one relaxed load.
    if (fault::fire(fault::site::drain_stall) != fault::action::proceed) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    apply_batch(sh, batch);
  }
}

void sharded_coordinator::apply_batch(
    shard& sh, const std::vector<trace::measurement_record>& batch) {
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::lock_guard lock(sh.mu);
    {
      // The span times the batched table updates -- the per-batch critical
      // section a drain worker holds the shard lock for.
      obs::span drain_span(metrics().drain_latency);
      for (const auto& rec : batch) apply_record(sh.coord, rec);
    }
    ++sh.drain_batches;
    sh.drain_latency_s +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    metrics().drain_batches.inc();
    sh.drained_metric.inc(batch.size());
    sh.publish_routed_locked(metrics().routed);
    // Last write under the lock: flush() waits on `applied` under sh.mu, so
    // every metric update above is visible once a flusher sees this store.
    sh.applied.fetch_add(batch.size(), std::memory_order_relaxed);
  }
  sh.drained_cv.notify_all();
}

void sharded_coordinator::flush() {
  if (cfg_.synchronous) return;
  for (auto& shp : shards_) {
    shard& sh = *shp;
    const std::uint64_t target = sh.enqueued.load(std::memory_order_relaxed);
    std::unique_lock lock(sh.mu);
    sh.drained_cv.wait(lock, [&] {
      return sh.applied.load(std::memory_order_relaxed) >= target;
    });
    // The routed counters are published in enqueued-deltas at drain
    // boundaries; settle any remainder so a post-flush STATS/snapshot
    // accounts for 100% of the reports this pipeline accepted.
    sh.publish_routed_locked(metrics().routed);
  }
}

void sharded_coordinator::stop() {
  stopped_.store(true, std::memory_order_relaxed);
  for (auto& sh : shards_) sh->queue.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void sharded_coordinator::recompute_epochs() {
  for (auto& sh : shards_) {
    std::lock_guard lock(sh->mu);
    sh->coord.recompute_epochs();
  }
}

std::size_t sharded_coordinator::refine_sample_target(
    const geo::zone_id& zone, std::string_view network, trace::metric metric) {
  shard& sh = owner_of(zone);
  std::lock_guard lock(sh.mu);
  return sh.coord.refine_sample_target(zone, network, metric);
}

zone_status sharded_coordinator::status_of(const geo::zone_id& zone) const {
  const shard& sh = *shards_[shard_of(zone)];
  std::lock_guard lock(sh.mu);
  return sh.coord.status_of(zone);
}

double sharded_coordinator::client_spend_mb(std::uint64_t client_id,
                                            double time_s) const {
  double total = 0.0;
  for (const auto& sh : shards_) {
    std::lock_guard lock(sh->mu);
    total += sh->coord.client_spend_mb(client_id, time_s);
  }
  return total;
}

std::optional<epoch_estimate> sharded_coordinator::latest(
    const estimate_key& key) const {
  const shard& sh = *shards_[shard_of(key.zone)];
  std::lock_guard lock(sh.mu);
  return sh.coord.table().latest(key);
}

std::vector<epoch_estimate> sharded_coordinator::history(
    const estimate_key& key) const {
  const shard& sh = *shards_[shard_of(key.zone)];
  std::lock_guard lock(sh.mu);
  // Materialise from the non-copying view while the shard lock is held --
  // the returned vector must outlive the lock, the view must not.
  const auto view = sh.coord.table().history_view(key);
  return {view.begin(), view.end()};
}

std::vector<estimate_key> sharded_coordinator::keys() const {
  std::vector<estimate_key> out;
  for (const auto& sh : shards_) {
    std::lock_guard lock(sh->mu);
    auto shard_keys = sh->coord.table().keys();
    out.insert(out.end(), std::make_move_iterator(shard_keys.begin()),
               std::make_move_iterator(shard_keys.end()));
  }
  return out;
}

std::vector<change_alert> sharded_coordinator::alerts() const {
  std::vector<change_alert> out;
  for (const auto& sh : shards_) {
    std::lock_guard lock(sh->mu);
    const auto& alerts = sh->coord.alerts();
    out.insert(out.end(), alerts.begin(), alerts.end());
  }
  const auto order = [](const change_alert& a) {
    return std::make_tuple(a.epoch_start_s, a.key.zone.ix, a.key.zone.iy,
                           a.key.network, static_cast<int>(a.key.metric),
                           a.new_mean);
  };
  std::sort(out.begin(), out.end(),
            [&](const change_alert& a, const change_alert& b) {
              return order(a) < order(b);
            });
  return out;
}

void sharded_coordinator::restore_estimate(const estimate_key& key,
                                           const epoch_estimate& e) {
  shard& sh = owner_of(key.zone);
  std::lock_guard lock(sh.mu);
  sh.coord.restore_estimate(key, e);
}

void sharded_coordinator::restore_open(const estimate_key& key,
                                       const open_epoch_state& st) {
  shard& sh = owner_of(key.zone);
  std::lock_guard lock(sh.mu);
  sh.coord.restore_open(key, st);
}

std::optional<open_epoch_state> sharded_coordinator::open_state(
    const estimate_key& key) const {
  const shard& sh = *shards_[shard_of(key.zone)];
  std::lock_guard lock(sh.mu);
  return sh.coord.open_state(key);
}

void sharded_coordinator::set_epoch_tap(epoch_tap* tap) {
  for (auto& sh : shards_) {
    std::lock_guard lock(sh->mu);
    sh->coord.set_epoch_tap(tap);
  }
}

bool sharded_coordinator::apply_epoch(const estimate_key& key,
                                      const epoch_estimate& e) {
  shard& sh = owner_of(key.zone);
  std::lock_guard lock(sh.mu);
  return sh.coord.merge_estimate(key, e);
}

const estimate_mirror& sharded_coordinator::published_of(
    std::size_t shard_index) const noexcept {
  return shards_[shard_index]->coord.published();
}

std::uint64_t sharded_coordinator::reports_ingested() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) {
    total += sh->applied.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t sharded_coordinator::queue_depth() const {
  std::size_t total = 0;
  for (const auto& sh : shards_) total += sh->queue.size();
  return total;
}

double sharded_coordinator::ingest_saturation() const noexcept {
  if (cfg_.synchronous || cfg_.queue_capacity == 0) return 0.0;
  std::size_t worst = 0;
  for (const auto& sh : shards_) worst = std::max(worst, sh->queue.size());
  return std::min(1.0, static_cast<double>(worst) /
                           static_cast<double>(cfg_.queue_capacity));
}

shard_stats sharded_coordinator::stats_of(std::size_t shard_index) const {
  const shard& sh = *shards_.at(shard_index);
  shard_stats out;
  out.queue_depth = sh.queue.size();
  std::lock_guard lock(sh.mu);
  out.reports_ingested = sh.applied.load(std::memory_order_relaxed);
  out.tasks_issued = sh.tasks;
  out.drain_batches = sh.drain_batches;
  out.drain_latency_s = sh.drain_latency_s;
  return out;
}

}  // namespace wiscape::core

// Bounded, sequenced ring of change alerts -- the serving-side sink for the
// zone table's >2-sigma detections (paper Sec 3.4: the server flags
// estimates that "changed substantially from [the] previous update").
//
// Every alert pushed gets a process-unique, monotonically increasing
// sequence number (starting at 1), so clients drain incrementally with a
// cursor: `drain_since(seq)` returns alerts with sequence > seq in order,
// plus the cursor to pass next time and an exact count of alerts that were
// evicted unseen (ring wraparound). served + dropped always accounts for
// every alert ever pushed -- a lagging client learns *that* it lost alerts
// and how many, never silently.
//
// Concurrency: a plain mutex. Alerts are born on epoch rollovers (a cold
// path, orders of magnitude rarer than sample ingestion), so contention is
// negligible and cannot stall drain workers; the lock-free machinery is
// reserved for the estimate read path (core/estimate_mirror.h). In sharded
// mode one ring is shared by every shard, giving a single total order of
// alert sequence numbers across the whole coordinator.
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "core/zone_table.h"

namespace wiscape::core {

/// One alert with its ring-assigned sequence number.
struct sequenced_alert {
  std::uint64_t seq = 0;  ///< monotonically increasing, starts at 1
  change_alert alert;
};

/// Result of one incremental drain.
struct alert_drain {
  std::vector<sequenced_alert> alerts;  ///< sequence order, seq > `since`
  std::uint64_t next_seq = 0;  ///< cursor for the next drain_since call
  std::uint64_t dropped = 0;   ///< alerts past `since` evicted before serving
};

class alert_ring {
 public:
  /// `capacity`: alerts retained; older ones are evicted (and accounted as
  /// dropped to any reader whose cursor predates them). Must be >= 1.
  explicit alert_ring(std::size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {
    ring_.assign(capacity_, sequenced_alert{});
  }

  alert_ring(const alert_ring&) = delete;
  alert_ring& operator=(const alert_ring&) = delete;

  /// Appends one alert, assigning the next sequence number.
  void push(const change_alert& a) {
    std::lock_guard lock(mu_);
    const std::uint64_t seq = next_seq_++;
    ring_[static_cast<std::size_t>((seq - 1) % capacity_)] = {seq, a};
  }

  /// Resumes sequence numbering after a restart: the next push gets
  /// `last_seq + 1`, and every sequence <= last_seq is treated as evicted
  /// (a drain cursor behind it learns those alerts as `dropped` -- alert
  /// payloads do not survive a restart, but their accounting does, so the
  /// served+dropped==pushed ledger stays exact across process lifetimes).
  /// Only valid on a ring nothing has been pushed into; throws
  /// std::logic_error otherwise (resuming mid-stream would renumber live
  /// alerts).
  void resume_from(std::uint64_t last_seq) {
    std::lock_guard lock(mu_);
    if (next_seq_ != 1) {
      throw std::logic_error("alert_ring::resume_from on a non-fresh ring");
    }
    next_seq_ = last_seq + 1;
    base_seq_ = last_seq;
  }

  /// Alerts with sequence > `since`, oldest first, at most `max` of them.
  /// `next_seq` is the cursor that makes the following call continue where
  /// this one stopped (even when `max` truncated the result); `dropped`
  /// counts alerts past `since` that were already evicted.
  alert_drain drain_since(std::uint64_t since, std::size_t max = 256) const {
    alert_drain out;
    std::lock_guard lock(mu_);
    const std::uint64_t newest = next_seq_ - 1;  // base_seq_ = nothing pushed
    // Oldest sequence still in the ring: capacity eviction, floored at
    // base_seq_ + 1 (sequences at or below base_seq_ predate a restart and
    // were never stored here -- they count as dropped, same as evicted).
    std::uint64_t oldest = next_seq_ > capacity_ ? next_seq_ - capacity_ : 1;
    if (oldest <= base_seq_) oldest = base_seq_ + 1;
    if (newest <= base_seq_ || since >= newest) {
      // Nothing drainable. A cursor behind a resumed-empty ring still
      // advances past the pre-restart sequences, accounting them dropped.
      out.dropped = newest > since ? newest - since : 0;
      out.next_seq = newest;
      return out;
    }
    std::uint64_t first = since + 1;
    if (first < oldest) {
      out.dropped = oldest - first;
      first = oldest;
    }
    const std::uint64_t avail = newest - first + 1;
    const std::uint64_t take =
        std::min<std::uint64_t>(avail, std::max<std::size_t>(max, 1));
    const std::uint64_t last = first + take - 1;
    out.alerts.reserve(static_cast<std::size_t>(take));
    for (std::uint64_t s = first; s <= last; ++s) {
      out.alerts.push_back(ring_[static_cast<std::size_t>((s - 1) % capacity_)]);
    }
    out.next_seq = last;
    return out;
  }

  /// Total alerts ever pushed (served + still ringed + dropped). After
  /// resume_from this includes the pre-restart sequences, so the ledger is
  /// continuous across process lifetimes.
  std::uint64_t pushed() const {
    std::lock_guard lock(mu_);
    return next_seq_ - 1;
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<sequenced_alert> ring_;  // slot of seq s: (s-1) % capacity_
  std::uint64_t next_seq_ = 1;
  std::uint64_t base_seq_ = 0;  // sequences <= base predate a resume_from
};

}  // namespace wiscape::core

// Bounded, sequenced ring of change alerts -- the serving-side sink for the
// zone table's >2-sigma detections (paper Sec 3.4: the server flags
// estimates that "changed substantially from [the] previous update").
//
// Every alert pushed gets a process-unique, monotonically increasing
// sequence number (starting at 1), so clients drain incrementally with a
// cursor: `drain_since(seq)` returns alerts with sequence > seq in order,
// plus the cursor to pass next time and an exact count of alerts that were
// evicted unseen (ring wraparound). served + dropped always accounts for
// every alert ever pushed -- a lagging client learns *that* it lost alerts
// and how many, never silently.
//
// Concurrency: a plain mutex. Alerts are born on epoch rollovers (a cold
// path, orders of magnitude rarer than sample ingestion), so contention is
// negligible and cannot stall drain workers; the lock-free machinery is
// reserved for the estimate read path (core/estimate_mirror.h). In sharded
// mode one ring is shared by every shard, giving a single total order of
// alert sequence numbers across the whole coordinator.
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/zone_table.h"

namespace wiscape::core {

/// One alert with its ring-assigned sequence number.
struct sequenced_alert {
  std::uint64_t seq = 0;  ///< monotonically increasing, starts at 1
  change_alert alert;
};

/// Result of one incremental drain.
struct alert_drain {
  std::vector<sequenced_alert> alerts;  ///< sequence order, seq > `since`
  std::uint64_t next_seq = 0;  ///< cursor for the next drain_since call
  std::uint64_t dropped = 0;   ///< alerts past `since` evicted before serving
};

class alert_ring {
 public:
  /// `capacity`: alerts retained; older ones are evicted (and accounted as
  /// dropped to any reader whose cursor predates them). Must be >= 1.
  explicit alert_ring(std::size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {
    ring_.reserve(capacity_);
  }

  alert_ring(const alert_ring&) = delete;
  alert_ring& operator=(const alert_ring&) = delete;

  /// Appends one alert, assigning the next sequence number.
  void push(const change_alert& a) {
    std::lock_guard lock(mu_);
    const std::uint64_t seq = next_seq_++;
    if (ring_.size() < capacity_) {
      ring_.push_back({seq, a});
    } else {
      ring_[static_cast<std::size_t>((seq - 1) % capacity_)] = {seq, a};
    }
  }

  /// Alerts with sequence > `since`, oldest first, at most `max` of them.
  /// `next_seq` is the cursor that makes the following call continue where
  /// this one stopped (even when `max` truncated the result); `dropped`
  /// counts alerts past `since` that were already evicted.
  alert_drain drain_since(std::uint64_t since, std::size_t max = 256) const {
    alert_drain out;
    std::lock_guard lock(mu_);
    const std::uint64_t newest = next_seq_ - 1;  // 0 = nothing pushed yet
    const std::uint64_t oldest =
        ring_.size() < capacity_ ? 1 : next_seq_ - capacity_;
    if (newest == 0 || since >= newest) {
      out.next_seq = newest;
      return out;
    }
    std::uint64_t first = since + 1;
    if (first < oldest) {
      out.dropped = oldest - first;
      first = oldest;
    }
    const std::uint64_t avail = newest - first + 1;
    const std::uint64_t take =
        std::min<std::uint64_t>(avail, std::max<std::size_t>(max, 1));
    const std::uint64_t last = first + take - 1;
    out.alerts.reserve(static_cast<std::size_t>(take));
    for (std::uint64_t s = first; s <= last; ++s) {
      out.alerts.push_back(ring_[static_cast<std::size_t>((s - 1) % capacity_)]);
    }
    out.next_seq = last;
    return out;
  }

  /// Total alerts ever pushed (served + still ringed + dropped).
  std::uint64_t pushed() const {
    std::lock_guard lock(mu_);
    return next_seq_ - 1;
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<sequenced_alert> ring_;  // slot of seq s: (s-1) % capacity_
  std::uint64_t next_seq_ = 1;
};

}  // namespace wiscape::core

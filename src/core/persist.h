// Zone-table and coordinator-state persistence.
//
// A real WiScape coordinator runs for months; its product -- the frozen
// per-zone-epoch estimates -- must survive restarts. The format is
// line-oriented text like the rest of the interchange surfaces
// (one `EST <zone> <network> <metric> <epoch_start> <mean> <stddev> <n>`
// line per frozen estimate), so operators can grep their coverage history.
//
// Format versions:
//  * v1 ("WISCAPE-ZONETABLE v1"): EST lines only, fixed-precision doubles
//    (%.3f / %.6f). Still loaded, never written.
//  * v2 ("WISCAPE-ZONETABLE v2"): EST doubles are printed with %.17g so a
//    save/load round trip is bit-exact, and each stream with a non-empty
//    open (not yet frozen) epoch adds one
//    `OPEN <zone> <network> <metric> <open_start> <n> <mean> <m2>` line
//    carrying its Welford accumulator -- a coordinator killed mid-epoch
//    resumes exactly where it stopped instead of losing the partial epoch.
//    Streams whose open epoch is empty write no OPEN line: an empty epoch
//    re-aligns to floor(t / duration) * duration on the first post-restart
//    sample, identical to a fresh stream.
//  * Coordinator-state flavour ("WISCAPE-COORD v2"): the v2 body plus one
//    `ALERTSEQ <pushed>` line recording the alert ring's high sequence
//    number, so a restarted coordinator resumes alert numbering instead of
//    restarting at 1 (which would silently rewind client cursors).
//
// Since ISSUE 10 the coordinator-state flavour is written and read through
// the narrow core::durable_state interface (src/core/durable_state.h)
// instead of per-coordinator overloads, so the same snapshot code serves
// the sequential coordinator, the sharded coordinator and the replication
// catch-up path. The crash-consistent WAL/snapshot *pair* built on top of
// these snapshots lives in core/durable_log.h.
#pragma once

#include <iosfwd>
#include <string>

#include "core/durable_state.h"
#include "core/zone_table.h"

namespace wiscape::core {

class sharded_coordinator;

/// Writes every frozen estimate of every key plus the open-epoch accumulator
/// of each stream that has one (v2 format; bit-exact round trip).
void save_zone_table(std::ostream& os, const zone_table& table);
void save_zone_table_file(const std::string& path, const zone_table& table);

/// Rebuilds a zone table from a saved stream (v1 or v2 header). Restored
/// estimates keep their history order; change alerts are not replayed (they
/// were already acted on). Throws std::invalid_argument on malformed input
/// and std::runtime_error when the file cannot be opened.
zone_table load_zone_table(std::istream& is, double change_sigma_factor = 2.0);
zone_table load_zone_table_file(const std::string& path,
                                double change_sigma_factor = 2.0);

/// Writes a coordinator's full estimate state (frozen + open epochs,
/// deterministically sorted) plus the alert sequence high-water mark,
/// through the durable_state interface. Quiesce producers (sharded mode:
/// flush()) first so in-flight reports are applied. Honours the
/// `persist_save` fault-injection site: an injected fault throws
/// std::runtime_error before anything is written, modelling a failed
/// snapshot (callers must treat a throw as "no snapshot taken").
void save_state(std::ostream& os, const durable_state& state);

/// Restores state saved by save_state into a freshly constructed
/// coordinator (same grid / networks / config). Must be called before any
/// report is ingested: the ALERTSEQ line resumes the alert ring's
/// numbering, which alert_ring::resume_from only permits on an untouched
/// ring. Throws std::invalid_argument on malformed input.
void load_state(std::istream& is, durable_state& state);

/// Deprecated spellings of save_state/load_state from before the
/// durable_state boundary existed; thin wrappers, kept for callers.
void save_coordinator_state(std::ostream& os, const sharded_coordinator& coord);
void load_coordinator_state(std::istream& is, sharded_coordinator& coord);

}  // namespace wiscape::core

// Zone-table persistence.
//
// A real WiScape coordinator runs for months; its product -- the frozen
// per-zone-epoch estimates -- must survive restarts. The format is
// line-oriented text like the rest of the interchange surfaces
// (one `EST <zone> <network> <metric> <epoch_start> <mean> <stddev> <n>`
// line per frozen estimate), so operators can grep their coverage history.
#pragma once

#include <iosfwd>
#include <string>

#include "core/zone_table.h"

namespace wiscape::core {

/// Writes every frozen estimate of every key (open epochs are transient and
/// not persisted; they re-accumulate after a restart).
void save_zone_table(std::ostream& os, const zone_table& table);
void save_zone_table_file(const std::string& path, const zone_table& table);

/// Rebuilds a zone table from a saved stream. Restored estimates keep their
/// history order; change alerts are not replayed (they were already acted
/// on). Throws std::invalid_argument on malformed input and
/// std::runtime_error when the file cannot be opened.
zone_table load_zone_table(std::istream& is, double change_sigma_factor = 2.0);
zone_table load_zone_table_file(const std::string& path,
                                double change_sigma_factor = 2.0);

}  // namespace wiscape::core

// The application-facing read API of the coordinator (the serving layer).
//
// WiScape's product is the per-(zone, network, metric) estimate: "the
// server aggregates client samples into per-zone per-epoch estimates ...
// and serves the estimates to applications" (paper Sec 3.4, applications in
// Sec 6). estimate_view is the *only* sanctioned way applications read
// those estimates -- src/apps and examples consume it, and the wire QUERY/
// ALERTS commands are a thin codec over it. Raw zone_table access is an
// implementation detail (coordinator::table_for_test for tests/benches).
//
// lookup() answers "what do we currently believe about stream (zone,
// network, metric)?" with the frozen estimate *plus* the serving context an
// application needs to trust it: which epoch it is (epoch_index), how old
// it is (staleness_s), and how close its sample count came to the zone's
// target (confidence, the paper's ~100-samples rule as a [0,1] ratio).
// alerts_since() incrementally drains the coordinator's >2-sigma change
// alerts by sequence-number cursor.
//
// Concurrency: over a sharded_coordinator, lookups read the owning shard's
// seqlock'd estimate mirror -- no shard lock, no stalls to drain workers,
// safe from any thread, and the returned triple is never torn (it is
// bit-for-bit an estimate the shard's sequential state machine published).
// Over a plain coordinator the same mirror path runs single-threaded.
// keys() is the one cold exception: it enumerates under shard locks and is
// meant for tools, not the query hot path.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "core/alert_ring.h"
#include "core/coordinator.h"
#include "core/sharded_coordinator.h"

namespace wiscape::core {

struct view_config {
  /// Sample count at which an estimate is considered fully trustworthy
  /// ("around 100 measurement samples", paper Sec 1). confidence =
  /// min(1, count / target_samples).
  double target_samples = 100.0;
};

/// One served estimate: the frozen triple plus serving context.
struct served_estimate {
  std::uint64_t count = 0;        ///< samples in the frozen epoch
  double mean = 0.0;
  double stddev = 0.0;
  std::uint64_t epoch_index = 0;  ///< 0-based index into the stream's history
  double epoch_start_s = 0.0;     ///< when the frozen epoch began
  double staleness_s = -1.0;      ///< query time - epoch_start_s; -1 unknown
  double confidence = 0.0;        ///< min(1, count / target_samples)
};

class estimate_view {
 public:
  /// Serves a sequential coordinator (borrowed; must outlive the view).
  explicit estimate_view(const coordinator& coord, view_config cfg = {})
      : seq_(&coord), cfg_(cfg) {}

  /// Serves a sharded coordinator (borrowed; must outlive the view).
  /// lookup()/alerts_since() are safe from any thread while ingestion runs.
  explicit estimate_view(const sharded_coordinator& coord,
                         view_config cfg = {})
      : sharded_(&coord), cfg_(cfg) {}

  /// Latest published estimate of a stream, or nullopt before its first
  /// epoch rollover. `now_s` (the caller's clock) prices staleness_s;
  /// pass a negative value when unknown (staleness_s stays -1).
  std::optional<served_estimate> lookup(const geo::zone_id& zone,
                                        std::uint16_t network_id,
                                        trace::metric metric,
                                        double now_s = -1.0) const;

  /// Name-keyed flavour. Over a sharded coordinator only operators from the
  /// constructor's network list resolve (the frozen wire interner) -- the
  /// same restriction the wire boundary has.
  std::optional<served_estimate> lookup(const geo::zone_id& zone,
                                        std::string_view network,
                                        trace::metric metric,
                                        double now_s = -1.0) const;

  /// Change alerts with sequence number > `since` (cursor semantics: feed
  /// the returned next_seq into the next call; `dropped` counts alerts
  /// evicted unseen by ring wraparound). At most `max` alerts per call.
  alert_drain alerts_since(std::uint64_t since, std::size_t max = 256) const;

  /// Interned id of `network` (trace::no_network_id when unknown). Matches
  /// the id space lookup() expects.
  std::uint16_t network_id_of(std::string_view network) const noexcept {
    return seq_ != nullptr ? seq_->network_id_of(network)
                           : sharded_->network_id_of(network);
  }

  /// All streams ever materialised. COLD: takes each shard's lock in
  /// sharded mode; for tools and enumeration, never the query hot path.
  std::vector<estimate_key> keys() const {
    return seq_ != nullptr ? seq_->keys() : sharded_->keys();
  }

  const view_config& config() const noexcept { return cfg_; }

 private:
  const coordinator* seq_ = nullptr;
  const sharded_coordinator* sharded_ = nullptr;
  view_config cfg_;
};

}  // namespace wiscape::core

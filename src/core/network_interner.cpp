#include "core/network_interner.h"

#include <stdexcept>

namespace wiscape::core {

network_interner::network_interner(const std::vector<std::string>& names) {
  for (const auto& name : names) id_of(name);
}

std::uint16_t network_interner::id_of(std::string_view name) {
  const std::uint16_t id = try_intern(name);
  if (id == npos) {
    throw std::length_error("network_interner: more than " +
                            std::to_string(max_networks) +
                            " distinct networks");
  }
  return id;
}

std::uint16_t network_interner::try_intern(std::string_view name) {
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  if (names_.size() >= max_networks) return npos;
  const auto id = static_cast<std::uint16_t>(names_.size());
  names_.emplace_back(name);
  try {
    index_.emplace(names_.back(), id);
  } catch (...) {
    names_.pop_back();  // keep names_/index_ in lockstep if the map throws
    throw;
  }
  return id;
}

std::uint16_t network_interner::try_id(std::string_view name) const noexcept {
  const auto it = index_.find(name);
  return it == index_.end() ? npos : it->second;
}

std::string_view network_interner::name_of(std::uint16_t id) const {
  if (id >= names_.size()) {
    throw std::out_of_range("network_interner: unknown id " +
                            std::to_string(id));
  }
  return names_[id];
}

}  // namespace wiscape::core

// Cross-device-category normalization (paper Sec 3.3).
//
// "Composability of measurements from a mobile phone and a laptop ... may
// not always work well ... data collected from such devices with different
// capabilities need to go through a normalization or scaling process."
// WiScape sidesteps this by monitoring per category; this module provides
// the scaling the paper defers to future work: estimate a multiplicative
// factor between two categories from zones where both measured, then lift
// one category's samples onto the other's scale.
#pragma once

#include <string_view>

#include "geo/zone_grid.h"
#include "trace/dataset.h"

namespace wiscape::core {

struct category_scale {
  /// Multiplier taking `from`-category values onto the `to` scale
  /// (median of per-zone mean ratios).
  double scale = 1.0;
  /// Zones where both categories had enough samples.
  std::size_t zones_used = 0;
  /// Spread of the per-zone ratios (relative stddev); large spread means
  /// the two categories do not differ by a simple scale and should stay
  /// separate, exactly the paper's caution.
  double ratio_spread = 0.0;
};

/// Estimates the `from` -> `to` scale for `metric` over grid zones where
/// both device categories contributed at least `min_samples` successful
/// samples. Returns scale 1.0 with zones_used == 0 when no zone qualifies.
category_scale estimate_category_scale(const trace::dataset& ds,
                                       const geo::zone_grid& grid,
                                       trace::metric metric,
                                       std::string_view from_device,
                                       std::string_view to_device,
                                       std::size_t min_samples = 20);

/// Returns a copy of `ds` with `metric`'s value multiplied by `scale` on
/// every successful record of `device`, and those records relabelled as
/// `as_device`. Other records pass through untouched.
trace::dataset apply_category_scale(const trace::dataset& ds,
                                    trace::metric metric,
                                    std::string_view device, double scale,
                                    std::string_view as_device);

}  // namespace wiscape::core

#include "core/coordinator.h"

#include <algorithm>
#include <cmath>

#include "obs/names.h"
#include "obs/registry.h"

namespace wiscape::core {

namespace {
// Process-wide coordinator metrics (aggregated over all instances -- every
// shard of a sharded_coordinator contributes to the same counters).
struct coord_metrics {
  obs::counter& checkins;
  obs::counter& tasks_issued;
  obs::counter& budget_exhausted;
  obs::counter& reports_accepted;
  obs::counter& reports_rejected;
  obs::counter& alerts_raised;
};

coord_metrics& metrics() {
  auto& reg = obs::registry::global();
  static coord_metrics m{reg.get_counter(obs::names::kCoordCheckins),
                         reg.get_counter(obs::names::kCoordTasksIssued),
                         reg.get_counter(obs::names::kCoordBudgetExhausted),
                         reg.get_counter(obs::names::kCoordReportsAccepted),
                         reg.get_counter(obs::names::kCoordReportsRejected),
                         reg.get_counter(obs::names::kCoordAlertsRaised)};
  return m;
}
}  // namespace

coordinator::coordinator(geo::zone_grid grid, std::vector<std::string> networks,
                         coordinator_config cfg, std::uint64_t seed)
    : grid_(std::move(grid)),
      networks_(std::move(networks)),
      cfg_(cfg),
      ring_(cfg.alert_ring_capacity),
      table_(cfg.change_sigma_factor, networks_),
      epochs_(cfg.epochs),
      planner_(cfg.planner),
      rng_(seed) {
  // Every rollover publishes into the serving-layer mirror and sequences
  // its alert (sharded mode re-points the alert sink at a shared ring).
  table_.set_sinks(&mirror_, alert_sink_);
  // networks_[i] -> interned id; the interner collapses duplicate operator
  // names to the first id, so two indices can legitimately share one.
  net_ids_.reserve(networks_.size());
  for (const auto& n : networks_) net_ids_.push_back(table_.interner().try_id(n));
}

coordinator::zone_state& coordinator::state_of(const geo::zone_id& z) {
  auto it = zones_.find(z);
  if (it == zones_.end()) {
    it = zones_
             .emplace(z, zone_state{cfg_.epochs.default_epoch_s,
                                    cfg_.default_samples_per_epoch,
                                    {}})
             .first;
  }
  return it->second;
}

trace::metric coordinator::planning_metric(trace::probe_kind k) noexcept {
  switch (k) {
    case trace::probe_kind::tcp_download:
      return trace::metric::tcp_throughput_bps;
    case trace::probe_kind::udp_burst:
      return trace::metric::udp_throughput_bps;
    case trace::probe_kind::ping:
      return trace::metric::rtt_s;
    case trace::probe_kind::udp_uplink:
      return trace::metric::uplink_throughput_bps;
  }
  return trace::metric::rtt_s;
}

std::optional<measurement_task> coordinator::checkin(
    const geo::lat_lon& pos, double time_s, std::size_t network_index,
    std::size_t active_clients_in_zone, std::uint64_t client_id) {
  metrics().checkins.inc();
  const geo::zone_id z = grid_.zone_of(pos);
  zone_state& st = state_of(z);
  if (network_index >= networks_.size()) return std::nullopt;

  // How many samples has the open epoch of this zone's planning stream
  // accumulated? (Tracked on the probe kind we would issue next.)
  const auto kind = static_cast<trace::probe_kind>(task_counter_ % 3);
  const std::size_t have = table_.open_epoch_samples(
      z, net_ids_[network_index], planning_metric(kind));
  if (have >= st.samples_target) return std::nullopt;

  // Per-client budget guard: a device that already spent its day's
  // allowance is left alone (Sec 3.4's overhead knob).
  double task_mb = 0.0;
  switch (kind) {
    case trace::probe_kind::tcp_download:
      task_mb = cfg_.tcp_task_mb;
      break;
    case trace::probe_kind::udp_burst:
      task_mb = cfg_.udp_task_mb;
      break;
    case trace::probe_kind::ping:
      task_mb = cfg_.ping_task_mb;
      break;
    case trace::probe_kind::udp_uplink:
      task_mb = cfg_.udp_task_mb;
      break;
  }
  budget_state* budget = nullptr;
  if (client_id != 0 && cfg_.client_daily_budget_mb > 0.0) {
    budget = &budgets_[client_id];
    const auto day = static_cast<std::int64_t>(std::floor(time_s / 86400.0));
    if (budget->day != day) {
      budget->day = day;
      budget->spent_mb = 0.0;
    }
    if (budget->spent_mb + task_mb > cfg_.client_daily_budget_mb) {
      metrics().budget_exhausted.inc();
      return std::nullopt;
    }
  }

  const std::size_t remaining = st.samples_target - have;
  // Expected samples this epoch ~= p * active clients * checkins left; the
  // paper's minimal form: select each active client with probability
  // remaining/active (clamped).
  const double p = std::min(
      1.0, static_cast<double>(remaining) /
               static_cast<double>(std::max<std::size_t>(1, active_clients_in_zone)));
  if (!rng_.chance(p)) return std::nullopt;

  ++task_counter_;
  if (budget != nullptr) budget->spent_mb += task_mb;
  metrics().tasks_issued.inc();
  return measurement_task{kind, network_index};
}

double coordinator::client_spend_mb(std::uint64_t client_id,
                                    double time_s) const {
  const auto it = budgets_.find(client_id);
  if (it == budgets_.end()) return 0.0;
  const auto day = static_cast<std::int64_t>(std::floor(time_s / 86400.0));
  return it->second.day == day ? it->second.spent_mb : 0.0;
}

std::uint16_t coordinator::resolve_network(
    const trace::measurement_record& rec) {
  // Trust the wire-cached id only after checking it maps back to the same
  // name here: records can cross process boundaries carrying ids assigned
  // by a different (or stale) interner.
  const auto& in = table_.interner();
  if (rec.network_id != trace::no_network_id && rec.network_id < in.size() &&
      in.name_of(rec.network_id) == rec.network) {
    return rec.network_id;
  }
  // try_intern, not id_of: network names are untrusted wire strings, so a
  // flood of distinct names must saturate to rejection (npos), not throw
  // through the apply path (and terminate an async drain worker).
  return table_.interner().try_intern(rec.network);
}

void coordinator::report(const trace::measurement_record& rec) {
  if (!rec.success) {
    metrics().reports_rejected.inc();
    return;
  }
  // Wire-reachable validity checks, before any state mutation: a zone
  // outside the store's packed cell range (absurd coordinates) or an
  // exhausted network interner rejects the record instead of throwing --
  // add_sample's throws must stay unreachable from attacker-controlled
  // input because drain workers apply records off-thread.
  const geo::zone_id z = grid_.zone_of(rec.pos);
  if (!zone_table::zone_in_range(z)) {
    metrics().reports_rejected.inc();
    return;
  }
  // A NaN/inf timestamp would poison a stream's epoch boundary (and, before
  // cross_epochs grew its saturation guard, spin its rollover walk forever).
  if (!std::isfinite(rec.time_s)) {
    metrics().reports_rejected.inc();
    return;
  }
  const std::uint16_t nid = resolve_network(rec);
  if (nid == network_interner::npos) {
    metrics().reports_rejected.inc();
    return;
  }
  zone_state& st = state_of(z);
  metrics().reports_accepted.inc();
  const std::size_t alerts_before = table_.alerts().size();

  // Fold every metric the record carries into the table. One id resolution
  // per record; the per-metric applies then hash a single integer each.
  for (const trace::metric m : trace::metrics_of(rec.kind)) {
    table_.add_sample(z, nid, m, rec.time_s, trace::value_of(rec, m),
                      st.epoch_s);
  }

  // Epoch-estimation history tracks the planning metric of the record kind.
  if (nid >= st.history.size()) st.history.resize(nid + 1);
  auto& series = st.history[nid];
  series.add(rec.time_s, trace::value_of(rec, planning_metric(rec.kind)));
  if (series.size() > cfg_.history_cap) {
    // Drop the oldest half to bound memory while keeping a long window.
    series.drop_oldest(series.size() / 2);
  }

  const std::size_t alerts_after = table_.alerts().size();
  if (alerts_after > alerts_before) {
    metrics().alerts_raised.inc(alerts_after - alerts_before);
  }
}

void coordinator::report_batch(
    std::span<const trace::measurement_record> recs) {
  for (const auto& rec : recs) report(rec);
}

void coordinator::recompute_epochs() {
  for (auto& [zone, st] : zones_) {
    // Use the longest per-network history in this zone. Ties go to the
    // lowest network id (the vector replaces the seed's unordered_map, whose
    // tie order was unspecified; strictly-longest winners are unchanged).
    const stats::time_series* best = nullptr;
    for (const auto& series : st.history) {
      if (!best || series.size() > best->size()) best = &series;
    }
    if (!best || best->size() < 32) continue;
    st.epoch_s = epochs_.epoch_for(*best);
  }
}

std::size_t coordinator::refine_sample_target(const geo::zone_id& zone,
                                              std::string_view network,
                                              trace::metric metric) {
  auto it = zones_.find(zone);
  if (it == zones_.end()) return cfg_.default_samples_per_epoch;
  zone_state& st = it->second;
  // Allocation-free lookup: networks with no history were never interned
  // (or never reported into this zone).
  const std::uint16_t nid = table_.interner().try_id(network);
  (void)metric;  // histories are keyed per network on the planning metric
  if (nid == network_interner::npos || nid >= st.history.size() ||
      st.history[nid].size() < cfg_.planner.step * 4) {
    return st.samples_target;
  }
  const auto values = st.history[nid].values();
  st.samples_target = planner_.samples_needed(values, rng_);
  return st.samples_target;
}

zone_status coordinator::status_of(const geo::zone_id& zone) const {
  zone_status out;
  const auto it = zones_.find(zone);
  if (it == zones_.end()) {
    out.epoch_duration_s = cfg_.epochs.default_epoch_s;
    out.samples_target = cfg_.default_samples_per_epoch;
    return out;
  }
  out.epoch_duration_s = it->second.epoch_s;
  out.samples_target = it->second.samples_target;
  // Report the fullest open stream across networks/metrics for this zone.
  for (const std::uint16_t nid : net_ids_) {
    for (const trace::metric m :
         {trace::metric::tcp_throughput_bps, trace::metric::udp_throughput_bps,
          trace::metric::rtt_s}) {
      out.open_epoch_samples = std::max(
          out.open_epoch_samples, table_.open_epoch_samples(zone, nid, m));
    }
  }
  return out;
}

}  // namespace wiscape::core

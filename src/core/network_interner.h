// Network-name interning: the string half of the dense estimate store.
//
// WiScape keys every estimate stream by (zone, network, metric). Zones and
// metrics are already small integers; the network name is the one string in
// the key, and hashing + copying it per sample was the apply path's main
// cost. The interner maps each distinct operator name to a dense u16 id,
// assigned in first-seen order, so the hot path works on a packed integer
// key and the name is only touched at the boundaries (wire decode, persist,
// keys()/alerts()).
//
// Id stability: ids are append-only and never reused. An interner seeded
// from a coordinator's `networks` vector assigns ids 0..n-1 in vector order
// (duplicates collapse to the first occurrence), so every shard of a
// sharded_coordinator -- constructed from the same vector -- agrees on that
// fixed prefix, and a record's cached `network_id` resolved at the wire
// boundary is valid on whichever shard it lands. Networks first seen in a
// report (not in the constructor vector) are interned on the cold path with
// the next free id; those dynamic ids are private to the owning interner.
//
// Thread safety: none. id_of() mutates; callers serialise access exactly as
// they do for the zone_table that owns the interner (one coordinator ==
// one thread, one shard == its mutex). try_id()/name_of() are const and
// safe to call concurrently with each other, but not with id_of().
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace wiscape::core {

class network_interner {
 public:
  /// "No id": the unresolved sentinel, never a valid id.
  static constexpr std::uint16_t npos = 0xFFFF;
  /// Hard cap on distinct networks -- the packed estimate key budgets 12
  /// bits for the network id (see zone_table). id_of throws
  /// std::length_error beyond it.
  static constexpr std::size_t max_networks = 4096;

  network_interner() = default;
  /// Seeds ids in vector order: names[i] gets id i (duplicates collapse to
  /// their first occurrence's id).
  explicit network_interner(const std::vector<std::string>& names);

  /// Id of `name`, interning it on first sight (a mutating call).
  /// Lookup of an already-interned name is allocation-free (transparent
  /// string_view hashing). Throws std::length_error past max_networks.
  std::uint16_t id_of(std::string_view name);

  /// Like id_of, but returns npos instead of throwing when the table is
  /// full. Wire-facing paths use this: network names arrive as untrusted
  /// free-form strings, so exhaustion must reject the record, not unwind
  /// (and in a drain worker, terminate) the apply path.
  std::uint16_t try_intern(std::string_view name);

  /// Id of `name` if already interned, npos otherwise. Never interns.
  std::uint16_t try_id(std::string_view name) const noexcept;

  /// Name behind an id. The view is invalidated by the next interning
  /// id_of() call (storage may relocate). Throws std::out_of_range on an
  /// unknown id.
  std::string_view name_of(std::uint16_t id) const;

  /// Distinct names interned so far (ids are 0..size()-1).
  std::size_t size() const noexcept { return names_.size(); }

 private:
  struct sv_hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct sv_eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };

  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint16_t, sv_hash, sv_eq> index_;
};

}  // namespace wiscape::core

#include "core/epoch_estimator.h"

#include <algorithm>
#include <stdexcept>

namespace wiscape::core {

epoch_estimator::epoch_estimator(epoch_config cfg) : cfg_(cfg) {
  if (!(cfg_.min_epoch_s > 0.0) || !(cfg_.max_epoch_s >= cfg_.min_epoch_s)) {
    throw std::invalid_argument("epoch_config: bad epoch clamp range");
  }
  taus_ = stats::log_spaced_taus(cfg_.scan_lo_s, cfg_.scan_hi_s,
                                 cfg_.scan_points);
}

double epoch_estimator::epoch_for(const stats::time_series& series) const {
  const auto curve = stats::allan_curve(series, taus_);
  if (curve.empty()) return cfg_.default_epoch_s;
  double best_tau = curve.front().tau_s;
  double best = curve.front().deviation;
  for (const auto& p : curve) {
    if (p.deviation < best) {
      best = p.deviation;
      best_tau = p.tau_s;
    }
  }
  return std::clamp(best_tau, cfg_.min_epoch_s, cfg_.max_epoch_s);
}

std::vector<stats::allan_point> epoch_estimator::curve_for(
    const stats::time_series& series) const {
  return stats::allan_curve(series, taus_);
}

}  // namespace wiscape::core

// Lock-free published-estimate mirror: the read side of the serving layer.
//
// The zone table's frozen estimates are the product applications consume
// (paper Sec 3.4 "serves the estimates to applications"), but the table
// itself lives behind its shard's mutex and is mutated by drain workers.
// Taking that mutex on every application read would let a read-heavy
// workload (the ROADMAP's millions of querying clients) stall ingestion.
// Instead, every epoch rollover *publishes* the new frozen estimate into
// this mirror -- a write-once-per-epoch copy, negligible next to the
// per-sample work -- and readers retrieve it with a seqlock, never touching
// a lock the write path contends on.
//
// Concurrency contract:
//  * Exactly one writer at a time (publish/restore run inside zone_table
//    mutations, which the owning shard's mutex already serialises). The
//    writer never blocks on readers.
//  * Any number of readers, any thread, wait-free except for seqlock
//    retries while an epoch is being published (a few relaxed stores wide).
//  * TSan-clean by construction: the payload is relaxed atomics bracketed
//    by the acquire/release seqlock protocol (Boehm, "Can Seqlocks Get
//    Along With Programming Language Memory Models?"), and the directory is
//    an acquire/release-published pointer whose retired generations are
//    kept alive until destruction, so a reader can never touch freed
//    memory. A reader racing the insertion of a brand-new stream may miss
//    it (not-found) -- indistinguishable from querying a moment earlier.
//
// Key scheme: streams are keyed by the zone table's packed group key with
// the metric folded into the free bits -- see zone_table::pack_stream.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/zone_table.h"

namespace wiscape::core {

/// One published estimate as read back from the mirror.
struct published_estimate {
  std::uint64_t count = 0;   ///< samples folded into the frozen epoch
  double mean = 0.0;
  double stddev = 0.0;
  double epoch_start_s = 0.0;
  std::uint64_t epoch_index = 0;  ///< 0-based index into the frozen history
};

class estimate_mirror {
 public:
  estimate_mirror() = default;
  ~estimate_mirror();

  estimate_mirror(const estimate_mirror&) = delete;
  estimate_mirror& operator=(const estimate_mirror&) = delete;

  /// Publishes (or re-publishes) the stream's latest frozen estimate.
  /// Writer side only: callers must hold whatever serialises mutations of
  /// the owning zone_table (the shard mutex). `skey` is
  /// zone_table::pack_stream(...) and must be nonzero.
  void publish(std::uint64_t skey, const epoch_estimate& e,
               std::uint64_t epoch_index);

  /// Reads a stream's latest published estimate. Lock-free; safe from any
  /// thread. Returns false when the stream has never published (or `skey`
  /// is 0, the out-of-range sentinel). Seqlock retries are counted into
  /// core.estimate_view.seqlock_retries.
  bool read(std::uint64_t skey, published_estimate& out) const noexcept;

  /// Streams that have published at least one estimate.
  std::size_t size() const noexcept {
    return count_.load(std::memory_order_acquire);
  }

 private:
  // Seqlock'd per-stream snapshot. All fields are atomics so racing relaxed
  // accesses are defined behaviour; the seq protocol makes the 5-field
  // payload read atomic as a unit (no torn count/mean/stddev triples).
  struct alignas(64) slot {
    std::atomic<std::uint32_t> seq{0};  // odd = publish in progress
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> mean{0.0};
    std::atomic<double> stddev{0.0};
    std::atomic<double> epoch_start_s{0.0};
    std::atomic<std::uint64_t> epoch_index{0};
  };

  // Directory entry: the packed stream key plus the slot it resolves to.
  // The key is store-released after the slot pointer, so a reader that
  // observes the key (acquire) also observes a valid pointer.
  struct dentry {
    std::atomic<std::uint64_t> key{0};  // 0 = empty
    std::atomic<slot*> s{nullptr};
  };

  struct directory {
    std::size_t mask = 0;  // capacity - 1 (pow2)
    std::unique_ptr<dentry[]> entries;
  };

  slot* find_or_insert(std::uint64_t skey);
  void grow(std::size_t need);

  std::atomic<directory*> dir_{nullptr};
  std::atomic<std::size_t> count_{0};  // occupied entries (writer-updated)
  std::deque<slot> slots_;             // stable addresses; writer-only access
  // Superseded directories, kept until destruction so in-flight readers of
  // an old generation stay valid. Geometric growth bounds the total retired
  // footprint to ~1x the live directory.
  std::vector<std::unique_ptr<directory>> retired_;
};

}  // namespace wiscape::core

#include "core/dominance.h"

#include <algorithm>

#include "stats/summary.h"

namespace wiscape::core {

preference preference_for(trace::metric m) noexcept {
  switch (m) {
    case trace::metric::tcp_throughput_bps:
    case trace::metric::udp_throughput_bps:
    case trace::metric::uplink_throughput_bps:
      return preference::higher_is_better;
    case trace::metric::loss_rate:
    case trace::metric::jitter_s:
    case trace::metric::rtt_s:
      return preference::lower_is_better;
  }
  return preference::lower_is_better;
}

int dominant_network(const std::vector<std::vector<double>>& per_network,
                     preference pref, const dominance_config& cfg) {
  const std::size_t n = per_network.size();
  if (n < 2) return -1;
  for (const auto& samples : per_network) {
    if (samples.size() < cfg.min_samples_per_network) return -1;
  }

  // Candidate winner: best mean.
  std::size_t best = 0;
  for (std::size_t i = 1; i < n; ++i) {
    const double a = stats::mean(per_network[i]);
    const double b = stats::mean(per_network[best]);
    if (pref == preference::higher_is_better ? a > b : a < b) best = i;
  }

  // Dominance check: the winner's worst tail must beat everyone else's best
  // tail.
  if (pref == preference::higher_is_better) {
    const double winner_low = stats::percentile(per_network[best], cfg.low_pct);
    for (std::size_t i = 0; i < n; ++i) {
      if (i == best) continue;
      if (winner_low <= stats::percentile(per_network[i], cfg.high_pct)) {
        return -1;
      }
    }
  } else {
    const double winner_high =
        stats::percentile(per_network[best], cfg.high_pct);
    for (std::size_t i = 0; i < n; ++i) {
      if (i == best) continue;
      if (winner_high >= stats::percentile(per_network[i], cfg.low_pct)) {
        return -1;
      }
    }
  }
  return static_cast<int>(best);
}

dominance_summary analyze_dominance(const trace::dataset& ds,
                                    const geo::zone_grid& grid,
                                    trace::metric metric,
                                    const std::vector<std::string>& networks,
                                    const dominance_config& cfg) {
  const trace::probe_kind kind = trace::kind_for(metric);
  // zone -> per-network samples
  std::unordered_map<geo::zone_id, std::vector<std::vector<double>>,
                     geo::zone_id_hash>
      by_zone;
  for (const auto& r : ds.records()) {
    if (!r.success || r.kind != kind) continue;
    const auto net =
        std::find(networks.begin(), networks.end(), r.network);
    if (net == networks.end()) continue;
    auto& bucket = by_zone[grid.zone_of(r.pos)];
    bucket.resize(networks.size());
    bucket[static_cast<std::size_t>(net - networks.begin())].push_back(
        trace::value_of(r, metric));
  }

  dominance_summary out;
  out.wins.assign(networks.size(), 0);
  const preference pref = preference_for(metric);
  for (auto& [zone, samples] : by_zone) {
    samples.resize(networks.size());
    bool enough = true;
    for (const auto& s : samples) {
      if (s.size() < cfg.min_samples_per_network) {
        enough = false;
        break;
      }
    }
    if (!enough) continue;

    zone_dominance zd;
    zd.zone = zone;
    zd.winner = dominant_network(samples, pref, cfg);
    for (const auto& s : samples) zd.means.push_back(stats::mean(s));
    if (zd.winner >= 0) {
      ++out.wins[static_cast<std::size_t>(zd.winner)];
    } else {
      ++out.none;
    }
    out.zones.push_back(std::move(zd));
  }
  // Deterministic ordering for reports: sort by zone id.
  std::sort(out.zones.begin(), out.zones.end(),
            [](const zone_dominance& a, const zone_dominance& b) {
              return a.zone < b.zone;
            });
  out.dominated_fraction =
      out.zones.empty()
          ? 0.0
          : 1.0 - static_cast<double>(out.none) /
                      static_cast<double>(out.zones.size());
  return out;
}

}  // namespace wiscape::core

// A bounded MPMC queue of measurement reports.
//
// The concurrent ingestion pipeline (sharded_coordinator) decouples the
// threads that *receive* reports from the threads that *apply* them to the
// zone tables. This queue is the hand-off point: any number of producers
// block-push completed measurement_records, any number of consumers drain
// them in batches. Bounded capacity gives natural backpressure -- a server
// flooded faster than it can ingest slows its transports down instead of
// growing without limit.
//
// Ordering guarantee: items from one producer thread are dequeued in the
// order that producer pushed them (global FIFO over all successfully
// completed pushes; per-producer order is a corollary). With a single
// consumer per queue this preserves the per-zone sample order the
// zone_table's epoch rollover logic depends on.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "trace/record.h"

namespace wiscape::core {

class report_queue {
 public:
  /// Throws std::invalid_argument if capacity == 0.
  explicit report_queue(std::size_t capacity);

  report_queue(const report_queue&) = delete;
  report_queue& operator=(const report_queue&) = delete;

  /// Blocks while the queue is full. Returns true once the record is
  /// enqueued, false if the queue was closed (record dropped).
  bool push(trace::measurement_record rec);

  /// Non-blocking push: returns false (record dropped) when the queue is
  /// full or closed.
  bool try_push(trace::measurement_record rec);

  /// Pops up to `max_batch` records into `out` (appended), blocking until at
  /// least one record is available or the queue is closed. Returns the
  /// number popped; 0 only after close() with the queue fully drained.
  std::size_t pop_batch(std::vector<trace::measurement_record>& out,
                        std::size_t max_batch);

  /// Closes the queue: pending and future pushes fail, consumers drain the
  /// remaining items and then see 0 from pop_batch. Idempotent.
  void close();

  /// Blocks until the queue is empty (all enqueued items popped) or closed.
  void wait_empty() const;

  std::size_t capacity() const noexcept { return capacity_; }
  bool closed() const;
  std::size_t size() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  mutable std::condition_variable not_full_;
  mutable std::condition_variable not_empty_;
  mutable std::condition_variable emptied_;
  std::deque<trace::measurement_record> items_;
  bool closed_ = false;
};

}  // namespace wiscape::core

// A bounded MPMC queue of measurement reports.
//
// The concurrent ingestion pipeline (sharded_coordinator) decouples the
// threads that *receive* reports from the threads that *apply* them to the
// zone tables. This queue is the hand-off point: any number of producers
// block-push completed measurement_records, any number of consumers drain
// them in batches. Bounded capacity gives natural backpressure -- a server
// flooded faster than it can ingest slows its transports down instead of
// growing without limit.
//
// Ordering guarantee: items from one producer thread are dequeued in the
// order that producer pushed them (global FIFO over all successfully
// completed pushes; per-producer order is a corollary). With a single
// consumer per queue this preserves the per-zone sample order the
// zone_table's epoch rollover logic depends on.
//
// Observability: every queue contributes to the process-wide
// `core.report_queue.*` metrics (see src/obs/names.h and DESIGN.md). The
// per-push bookkeeping is plain arithmetic under the queue mutex the push
// already holds; totals are published to the obs registry in batches -- at
// every pop_batch() and at close() -- so the hot path adds no atomic RMW.
// Snapshots taken mid-run may therefore lag by up to one drain batch; they
// are exact whenever the queue is quiescent (drained or closed).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <vector>

#include "trace/record.h"

namespace wiscape::core {

class report_queue {
 public:
  /// Throws std::invalid_argument if capacity == 0.
  explicit report_queue(std::size_t capacity);

  report_queue(const report_queue&) = delete;
  report_queue& operator=(const report_queue&) = delete;

  /// Blocks while the queue is full. Returns true once the record is
  /// enqueued, false if the queue was closed (record dropped).
  bool push(trace::measurement_record rec);

  /// Non-blocking push: returns false (record dropped) when the queue is
  /// full or closed.
  bool try_push(trace::measurement_record rec);

  /// Enqueues a whole batch under one lock acquisition (and one metrics
  /// delta), blocking while the queue is full -- batches larger than the
  /// remaining capacity are fed in capacity-sized gulps as consumers make
  /// room. The batch is contiguous in FIFO order (no other producer's
  /// records interleave within one gulp). Returns the number of records
  /// enqueued: recs.size() on success, fewer when the queue is closed
  /// mid-batch (the remainder is dropped), or 0 when an injected fault
  /// fires at the core::fault queue_push site (scenario fault storms; the
  /// fault refuses the batch whole, before anything is enqueued). Callers
  /// must count the shortfall against their drop accounting either way.
  std::size_t push_batch(std::span<const trace::measurement_record> recs);

  /// Pops up to `max_batch` records into `out` (appended), blocking until at
  /// least one record is available or the queue is closed. Returns the
  /// number popped; 0 only after close() with the queue fully drained.
  std::size_t pop_batch(std::vector<trace::measurement_record>& out,
                        std::size_t max_batch);

  /// Closes the queue: pending and future pushes fail, consumers drain the
  /// remaining items and then see 0 from pop_batch. Idempotent.
  void close();

  /// Blocks until the queue is empty (all enqueued items popped) or closed.
  void wait_empty() const;

  std::size_t capacity() const noexcept { return capacity_; }
  bool closed() const;
  std::size_t size() const;

 private:
  /// Pushes any un-published enqueue/high-water totals into the obs
  /// registry. Must be called with mu_ held; cheap when nothing is pending.
  void publish_metrics_locked();

  const std::size_t capacity_;
  mutable std::mutex mu_;
  mutable std::condition_variable not_full_;
  mutable std::condition_variable not_empty_;
  mutable std::condition_variable emptied_;
  std::deque<trace::measurement_record> items_;
  bool closed_ = false;
  // Metric staging, guarded by mu_: counted per push with plain arithmetic,
  // flushed to the (atomic) obs registry counters at batch boundaries.
  std::uint64_t enq_count_ = 0;      ///< successful pushes, lifetime total
  std::uint64_t enq_published_ = 0;  ///< portion already in the registry
  std::int64_t high_water_ = 0;      ///< deepest items_.size() seen
};

}  // namespace wiscape::core

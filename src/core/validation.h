// End-to-end accuracy validation (Sec 3.4 "Validation", Fig 8).
//
// The paper splits its Standalone dataset per zone into a client-sourced
// half and a ground-truth half, estimates each zone from a WiScape-sized
// client sample, and reports the CDF of relative estimation error: < 4% for
// more than 70% of zones, max ~15%.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "geo/zone_grid.h"
#include "trace/dataset.h"

namespace wiscape::core {

struct validation_config {
  /// Fraction of each zone's samples playing "client-sourced".
  double client_fraction = 0.5;
  /// Zones participate with at least this many samples (paper: 200).
  std::size_t min_zone_samples = 200;
  /// Samples WiScape would actually collect per zone-epoch (paper: ~100).
  std::size_t wiscape_samples = 100;
};

struct zone_error {
  geo::zone_id zone;
  double truth_mean = 0.0;
  double estimate_mean = 0.0;
  double rel_error = 0.0;  ///< |estimate - truth| / truth
};

struct validation_report {
  std::vector<zone_error> zones;
  std::vector<double> errors;  ///< rel_error of each zone (same order)
  double fraction_within(double rel_error_threshold) const;
  double max_error() const;
};

/// Runs the Fig 8 experiment on any dataset.
validation_report validate_estimation(const trace::dataset& ds,
                                      const geo::zone_grid& grid,
                                      trace::metric metric,
                                      std::string_view network,
                                      const validation_config& cfg,
                                      std::uint64_t seed);

}  // namespace wiscape::core

// How many samples does a zone-epoch need? (Sec 3.3 / 3.3.1)
//
// Two planning questions from the paper:
//  * nkld convergence: the smallest number of client samples whose
//    distribution is "close" (symmetric NKLD <= 0.1) to the zone's long-term
//    distribution, averaged over random draws (Fig 7: ~50-90 in Madison,
//    ~80-120 in New Brunswick).
//  * accuracy: the smallest number of back-to-back probe packets whose mean
//    lands within a target relative error of ground truth (Table 5: 97%
//    accuracy with 40-120 packets).
#pragma once

#include <span>
#include <vector>

#include "stats/rng.h"

namespace wiscape::core {

struct planner_config {
  double nkld_threshold = 0.1;
  double target_accuracy = 0.97;  ///< 1 - relative error
  int iterations = 100;           ///< random draws averaged per candidate n
  std::size_t histogram_bins = 20;
  std::size_t max_samples = 400;  ///< search cap
  std::size_t step = 10;          ///< candidate-n granularity
};

/// One point of the NKLD-vs-sample-count convergence curve (Fig 7).
struct convergence_point {
  std::size_t samples = 0;
  double mean_nkld = 0.0;
};

class sample_planner {
 public:
  explicit sample_planner(planner_config cfg = {});

  /// Mean NKLD between `n`-sized random subsets of `population` and the full
  /// population, over cfg.iterations draws. Throws std::invalid_argument if
  /// n == 0 or n > population size.
  double mean_nkld_at(std::span<const double> population, std::size_t n,
                      stats::rng_stream& rng) const;

  /// Full convergence curve for n = step, 2*step, ... up to
  /// min(max_samples, population size).
  std::vector<convergence_point> convergence_curve(
      std::span<const double> population, stats::rng_stream& rng) const;

  /// Smallest candidate n whose mean NKLD <= threshold; falls back to the
  /// largest scanned n when none converges.
  std::size_t samples_needed(std::span<const double> population,
                             stats::rng_stream& rng) const;

  /// Smallest n such that the mean of n random draws is within
  /// (1 - target_accuracy) relative error of the population mean, averaged
  /// over cfg.iterations draws (Table 5's packet-count rule). Falls back to
  /// the largest scanned n.
  std::size_t packets_for_accuracy(std::span<const double> population,
                                   stats::rng_stream& rng) const;

  const planner_config& config() const noexcept { return cfg_; }

 private:
  planner_config cfg_;
};

}  // namespace wiscape::core

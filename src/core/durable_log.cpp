#include "core/durable_log.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/fault_injection.h"
#include "core/persist.h"
#include "obs/names.h"
#include "obs/registry.h"

namespace wiscape::core {

namespace {

constexpr char kWalHeader[] = "WISCAPE-WAL v1";

struct wal_metrics {
  obs::counter& appends;
  obs::counter& append_failures;
  obs::counter& truncated;
  obs::counter& replayed;
  obs::counter& snapshots;
  obs::counter& snapshot_failures;
};

wal_metrics& metrics() {
  auto& reg = obs::registry::global();
  static wal_metrics m{
      reg.get_counter(obs::names::kPersistWalAppends),
      reg.get_counter(obs::names::kPersistWalAppendFailures),
      reg.get_counter(obs::names::kPersistWalTruncated),
      reg.get_counter(obs::names::kPersistWalReplayed),
      reg.get_counter(obs::names::kPersistSnapshots),
      reg.get_counter(obs::names::kPersistSnapshotFailures)};
  return m;
}

// FNV-1a over the record body: cheap, dependency-free, and plenty to tell
// "record the writer finished" from "record the crash cut" -- the torn-tail
// corpus in tests/wal_test.cpp cuts at every byte offset.
std::uint32_t fnv1a32(std::string_view s) noexcept {
  std::uint32_t h = 2166136261u;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 16777619u;
  }
  return h;
}

geo::zone_id parse_zone(const std::string& s) {
  const auto colon = s.find(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("bad zone id '" + s + "'");
  }
  return {std::stoi(s.substr(0, colon)), std::stoi(s.substr(colon + 1))};
}

/// Renders the checksummed part of a WAL record (no trailing checksum).
std::string render_body(std::uint64_t seq, const estimate_key& key,
                        const epoch_estimate& est) {
  char buf[320];
  std::snprintf(buf, sizeof(buf), "W %llu %s %s %s %.17g %.17g %.17g %zu",
                static_cast<unsigned long long>(seq),
                geo::to_string(key.zone).c_str(), key.network.c_str(),
                trace::to_string(key.metric).c_str(), est.epoch_start_s,
                est.mean, est.stddev, est.samples);
  return buf;
}

/// Parses one complete line (checksum already stripped and verified).
/// Returns false on any malformation -- the caller treats that as a torn
/// tail, never as fatal.
bool parse_body(const std::string& body, std::uint64_t& seq,
                estimate_key& key, epoch_estimate& est) {
  std::istringstream ls(body);
  std::string tag, zone_s, net, metric_s;
  unsigned long long s = 0;
  if (!(ls >> tag >> s >> zone_s >> net >> metric_s) || tag != "W") {
    return false;
  }
  if (!(ls >> est.epoch_start_s >> est.mean >> est.stddev >> est.samples)) {
    return false;
  }
  try {
    key.zone = parse_zone(zone_s);
    key.metric = trace::metric_from_string(metric_s);
  } catch (const std::exception&) {
    return false;
  }
  key.network = net;
  seq = s;
  return true;
}

}  // namespace

void wal_write_header(std::ostream& os) { os << kWalHeader << "\n"; }

void wal_append_record(std::ostream& os, std::uint64_t seq,
                       const estimate_key& key, const epoch_estimate& est) {
  if (fault::fire(fault::site::wal_append) == fault::action::fail) {
    metrics().append_failures.inc();
    throw std::runtime_error("injected fault: WAL append refused");
  }
  const std::string body = render_body(seq, key, est);
  char crc[16];
  std::snprintf(crc, sizeof(crc), " C%08x\n", fnv1a32(body));
  os << body << crc;
  metrics().appends.inc();
}

std::uint64_t wal_replay(
    std::istream& is,
    const std::function<void(std::uint64_t, const estimate_key&,
                             const epoch_estimate&)>& apply) {
  // Slurp the stream: a WAL is bounded by the last checkpoint, and whole-
  // buffer scanning lets a missing final newline (the classic torn tail)
  // be distinguished from a complete final record.
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string all = buf.str();
  std::uint64_t last_seq = 0;
  bool torn = false;
  std::size_t pos = 0;
  bool saw_header = false;
  while (pos < all.size()) {
    const std::size_t nl = all.find('\n', pos);
    if (nl == std::string::npos) {
      torn = true;  // trailing bytes without a newline: the cut record
      break;
    }
    const std::string line = all.substr(pos, nl - pos);
    pos = nl + 1;
    if (!saw_header) {
      if (line != kWalHeader) {
        torn = true;  // even the header is damaged: nothing to replay
        break;
      }
      saw_header = true;
      continue;
    }
    if (line.empty()) continue;
    // Split off and verify the checksum; any mismatch (cut mid-record,
    // bit rot, a record the writer never finished) ends the valid prefix.
    const std::size_t cpos = line.rfind(" C");
    if (cpos == std::string::npos || line.size() - cpos != 10) {
      torn = true;
      break;
    }
    const std::string body = line.substr(0, cpos);
    const unsigned long expect = std::stoul(line.substr(cpos + 2), nullptr, 16);
    if (fnv1a32(body) != static_cast<std::uint32_t>(expect)) {
      torn = true;
      break;
    }
    std::uint64_t seq = 0;
    estimate_key key;
    epoch_estimate est;
    if (!parse_body(body, seq, key, est)) {
      torn = true;
      break;
    }
    apply(seq, key, est);
    last_seq = seq;
    metrics().replayed.inc();
  }
  if (torn) metrics().truncated.inc();
  return last_seq;
}

durable_log::durable_log(std::string dir)
    : dir_(std::move(dir)),
      snapshot_path_(dir_ + "/snapshot"),
      wal_path_(dir_ + "/wal") {}

std::uint64_t durable_log::recover(durable_state& state) {
  std::lock_guard lock(mu_);
  {
    std::ifstream snap(snapshot_path_);
    if (snap) load_state(snap, state);
  }
  std::ifstream wal(wal_path_);
  if (!wal) return 0;
  return wal_replay(wal, [&](std::uint64_t, const estimate_key& key,
                             const epoch_estimate& est) {
    state.restore_estimate(key, est);
  });
}

void durable_log::append(std::uint64_t seq, const estimate_key& key,
                         const epoch_estimate& est) {
  std::lock_guard lock(mu_);
  // Open lazily per append: the cost is dwarfed by the flush the
  // durability contract requires anyway, and it keeps checkpoint()'s WAL
  // reset trivially safe (no stream handle to invalidate).
  const bool fresh = [&] {
    std::ifstream probe(wal_path_);
    return !probe || probe.peek() == std::ifstream::traits_type::eof();
  }();
  std::ofstream os(wal_path_, std::ios::app);
  if (!os) throw std::runtime_error("cannot open WAL: " + wal_path_);
  if (fresh) wal_write_header(os);
  wal_append_record(os, seq, key, est);
  os.flush();
  if (!os) throw std::runtime_error("WAL append failed: " + wal_path_);
}

void durable_log::checkpoint(const durable_state& state) {
  std::lock_guard lock(mu_);
  const std::string tmp = snapshot_path_ + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) throw std::runtime_error("cannot open snapshot: " + tmp);
    if (fault::fire(fault::site::snapshot_torn) == fault::action::fail) {
      // Model the crash mid-checkpoint: leave a truncated temp file (a
      // header with no body) and abort before the rename, so recovery
      // still sees the previous snapshot + the intact WAL.
      os << "WISCAPE-CO";
      os.flush();
      metrics().snapshot_failures.inc();
      throw std::runtime_error("injected fault: snapshot checkpoint torn");
    }
    save_state(os, state);
    os.flush();
    if (!os) {
      metrics().snapshot_failures.inc();
      throw std::runtime_error("snapshot write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), snapshot_path_.c_str()) != 0) {
    metrics().snapshot_failures.inc();
    throw std::runtime_error("snapshot rename failed: " + snapshot_path_);
  }
  // The snapshot now covers everything; reset the WAL to just its header.
  std::ofstream wal(wal_path_, std::ios::trunc);
  if (wal) wal_write_header(wal);
  metrics().snapshots.inc();
}

}  // namespace wiscape::core

// Time-of-day profiles: WiScape's answer when the current epoch is empty.
//
// Zone estimates go stale between epochs, and some zones see no client for
// hours. Cellular load is strongly diurnal (the paper's stadium aside, most
// temporal structure is the daily cycle), so a per-zone hour-of-day profile
// is the natural fallback estimate -- and deviations from the profile are a
// sharper anomaly signal than deviations from a global mean.
#pragma once

#include <array>
#include <optional>

#include "stats/running_stats.h"
#include "stats/time_series.h"

namespace wiscape::core {

/// Hour-of-day profile of a metric (24 bins, local time == simulation time).
class diurnal_profile {
 public:
  /// Accumulates one observation.
  void add(double time_s, double value);

  /// Folds a whole series in.
  void add_series(const stats::time_series& series);

  /// Mean for the hour containing `time_s`; nullopt when that hour has
  /// fewer than `min_samples` observations.
  std::optional<double> expected(double time_s,
                                 std::size_t min_samples = 5) const;

  /// Blended estimate: the hour's mean when available, otherwise the
  /// all-hours mean; nullopt when the profile is empty.
  std::optional<double> expected_or_overall(double time_s) const;

  /// z-score of an observation against its hour (needs >= min_samples and a
  /// positive stddev in that hour); the anomaly signal.
  std::optional<double> zscore(double time_s, double value,
                               std::size_t min_samples = 5) const;

  /// Peak-hour mean divided by trough-hour mean (daily swing; 1 = flat).
  /// Only hours with >= min_samples participate; nullopt when fewer than two
  /// hours qualify.
  std::optional<double> peak_to_trough(std::size_t min_samples = 5) const;

  const stats::running_stats& hour(int h) const { return hours_.at(h); }
  std::size_t total_samples() const noexcept;

 private:
  static int hour_of(double time_s) noexcept;
  std::array<stats::running_stats, 24> hours_{};
};

}  // namespace wiscape::core

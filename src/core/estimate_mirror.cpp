#include "core/estimate_mirror.h"

#include "obs/names.h"
#include "obs/registry.h"

namespace wiscape::core {

namespace {

// splitmix64 finalizer -- same mix the zone table's directory uses, so the
// scatter quality is identical for identical key material.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

obs::counter& seqlock_retries() {
  static obs::counter& c = obs::registry::global().get_counter(
      obs::names::kEstimateViewSeqlockRetries);
  return c;
}

}  // namespace

estimate_mirror::~estimate_mirror() {
  delete dir_.load(std::memory_order_relaxed);
}

void estimate_mirror::grow(std::size_t need) {
  directory* old = dir_.load(std::memory_order_relaxed);
  std::size_t cap = old == nullptr ? 64 : (old->mask + 1);
  // Keep the directory under 1/2 load, same policy as the zone table.
  while (cap < need * 2) cap *= 2;
  auto next = std::make_unique<directory>();
  next->mask = cap - 1;
  next->entries = std::make_unique<dentry[]>(cap);
  if (old != nullptr) {
    for (std::size_t i = 0; i <= old->mask; ++i) {
      const std::uint64_t k = old->entries[i].key.load(std::memory_order_relaxed);
      if (k == 0) continue;
      slot* s = old->entries[i].s.load(std::memory_order_relaxed);
      std::size_t at = static_cast<std::size_t>(mix64(k)) & next->mask;
      while (next->entries[at].key.load(std::memory_order_relaxed) != 0) {
        at = (at + 1) & next->mask;
      }
      // Pre-publication stores: the new directory is private until the
      // release store of dir_ below makes it (and these writes) visible.
      next->entries[at].s.store(s, std::memory_order_relaxed);
      next->entries[at].key.store(k, std::memory_order_relaxed);
    }
  }
  directory* fresh = next.release();
  dir_.store(fresh, std::memory_order_release);
  // Readers may still be probing `old`; retire it instead of freeing.
  if (old != nullptr) retired_.emplace_back(old);
}

estimate_mirror::slot* estimate_mirror::find_or_insert(std::uint64_t skey) {
  directory* d = dir_.load(std::memory_order_relaxed);
  const std::size_t occupied = count_.load(std::memory_order_relaxed);
  if (d == nullptr || (occupied + 1) * 2 > d->mask + 1) {
    grow(occupied + 1);
    d = dir_.load(std::memory_order_relaxed);
  }
  std::size_t at = static_cast<std::size_t>(mix64(skey)) & d->mask;
  for (;;) {
    const std::uint64_t k = d->entries[at].key.load(std::memory_order_relaxed);
    if (k == skey) return d->entries[at].s.load(std::memory_order_relaxed);
    if (k == 0) break;
    at = (at + 1) & d->mask;
  }
  slots_.emplace_back();
  slot* s = &slots_.back();
  // Publish pointer before key: a reader acquiring the key is guaranteed to
  // see the pointer store that preceded it.
  d->entries[at].s.store(s, std::memory_order_relaxed);
  d->entries[at].key.store(skey, std::memory_order_release);
  count_.store(occupied + 1, std::memory_order_release);
  return s;
}

void estimate_mirror::publish(std::uint64_t skey, const epoch_estimate& e,
                              std::uint64_t epoch_index) {
  if (skey == 0) return;  // out-of-range sentinel: nothing to serve
  slot* s = find_or_insert(skey);
  // Seqlock writer protocol: mark the slot in flux (odd), fence, store the
  // payload, then release-publish the even sequence.
  const std::uint32_t seq = s->seq.load(std::memory_order_relaxed);
  s->seq.store(seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s->count.store(static_cast<std::uint64_t>(e.samples),
                 std::memory_order_relaxed);
  s->mean.store(e.mean, std::memory_order_relaxed);
  s->stddev.store(e.stddev, std::memory_order_relaxed);
  s->epoch_start_s.store(e.epoch_start_s, std::memory_order_relaxed);
  s->epoch_index.store(epoch_index, std::memory_order_relaxed);
  s->seq.store(seq + 2, std::memory_order_release);
}

bool estimate_mirror::read(std::uint64_t skey,
                           published_estimate& out) const noexcept {
  if (skey == 0) return false;
  const directory* d = dir_.load(std::memory_order_acquire);
  if (d == nullptr) return false;
  std::size_t at = static_cast<std::size_t>(mix64(skey)) & d->mask;
  const slot* s = nullptr;
  for (;;) {
    const std::uint64_t k = d->entries[at].key.load(std::memory_order_acquire);
    if (k == skey) {
      s = d->entries[at].s.load(std::memory_order_relaxed);
      break;
    }
    if (k == 0) return false;  // possibly racing an insert: report not-found
    at = (at + 1) & d->mask;
  }
  // Seqlock reader protocol: valid only when the sequence was even and
  // unchanged across the payload reads.
  for (;;) {
    const std::uint32_t s1 = s->seq.load(std::memory_order_acquire);
    if ((s1 & 1u) == 0u) {
      out.count = s->count.load(std::memory_order_relaxed);
      out.mean = s->mean.load(std::memory_order_relaxed);
      out.stddev = s->stddev.load(std::memory_order_relaxed);
      out.epoch_start_s = s->epoch_start_s.load(std::memory_order_relaxed);
      out.epoch_index = s->epoch_index.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s->seq.load(std::memory_order_relaxed) == s1) return true;
    }
    seqlock_retries().inc();
  }
}

}  // namespace wiscape::core

// The client-side user agent (Sec 3.4): checks in with the coordinator,
// executes whatever task it is handed via the probe engine, and reports the
// result back. One instance per (client device, network interface).
#pragma once

#include "core/coordinator.h"
#include "probe/engine.h"

namespace wiscape::core {

class client_agent {
 public:
  /// Borrows both; they must outlive the agent.
  /// `client_id` feeds the coordinator's per-client budget accounting
  /// (0 = anonymous).
  client_agent(coordinator& coord, probe::probe_engine& engine,
               std::size_t network_index, std::uint64_t client_id = 0)
      : coord_(&coord),
        engine_(&engine),
        network_index_(network_index),
        client_id_(client_id) {}

  /// One opportunistic cycle: check in from `fix`; if tasked, run the probe
  /// and report. Returns the record when a probe ran.
  std::optional<trace::measurement_record> step(
      const mobility::gps_fix& fix, std::size_t active_clients_in_zone = 4);

  std::size_t network_index() const noexcept { return network_index_; }
  std::uint64_t probes_executed() const noexcept { return executed_; }

 private:
  coordinator* coord_;
  probe::probe_engine* engine_;
  std::size_t network_index_;
  std::uint64_t client_id_;
  std::uint64_t executed_ = 0;
};

}  // namespace wiscape::core

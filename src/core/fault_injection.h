// Fault-injection seams for the scenario engine (ISSUE 6).
//
// Production code consults a process-wide hook at a small, named set of
// seams -- the report queue's producer edge, the sharded drain loop, the
// wire server's request dispatch, the persistence writer, the TCP
// front end's accept/read/write edges (src/net), and the replication
// stream's WAL/snapshot/pull edges (src/repl, ISSUE 10) -- so a scenario
// can make
// *real* code paths fail (a full queue, a stalled consumer, a dying
// transport) instead of mocking them. With no hook
// installed (the default, and the only state outside scenario runs) every
// seam costs one relaxed atomic load and a predicted-not-taken branch;
// behaviour is bit-for-bit the un-instrumented code.
//
// The hook decides per invocation what happens at a seam:
//   * proceed -- the seam executes normally (the hook saw the call).
//   * fail    -- the seam takes its natural error path: push() returns
//                false (record dropped + counted), push_batch() refuses the
//                whole batch (all-or-nothing, so wire accounting stays
//                exact), handle() answers an ERR reply, save throws.
//   * stall   -- the seam sleeps briefly before proceeding (slow-consumer /
//                scheduling-jitter stress). Timing-only: never changes what
//                is computed, only when.
//
// Determinism contract: decisions that change *which* records survive
// (queue_push, server_handle, persist_save) are only meaningful when the
// guarded seam is driven from one thread -- the scenario engine's driver
// thread -- where invocation order is reproducible. drain_stall fires on
// worker threads and is therefore restricted to timing-only effects.
// scenario::injector implements the hook with a seeded schedule keyed by
// (site, invocation index), so the same seed replays the same faults.
//
// Thread safety: install() publishes the hook pointer with release
// semantics; seams read it acquire. The hook must outlive its installation
// window; installers uninstall (install(nullptr)) before destroying it and
// while the guarded pipelines are quiescent.
#pragma once

#include <atomic>

namespace wiscape::core::fault {

/// The named seams production code guards. Append-only: scenario schedules
/// and tick logs refer to these by name (see site_name).
enum class site {
  queue_push,    ///< report_queue::push / try_push / push_batch (producer edge)
  drain_stall,   ///< sharded_coordinator drain worker, before applying a batch
  server_handle, ///< proto::coordinator_server::handle, before dispatch
  persist_save,  ///< core::save_coordinator_state, before writing
  accept_fail,   ///< net::tcp_server accept edge: fail closes the new socket
  read_stall,    ///< net session read edge (worker thread: timing-only stall
                 ///< in scenarios, like drain_stall; fail closes the session)
  write_full,    ///< net session write flush: fail = socket unwritable this
                 ///< round (backpressure on the writer); stall sleeps briefly
  frame_truncate,///< net::line_client binary send edge (driver thread): fail
                 ///< sends only a prefix of the v3 frame then throws, so the
                 ///< server sees a cut frame + EOF; stall sleeps briefly
  wal_append,    ///< core::durable_log WAL append edge: fail throws before
                 ///< the record is written (a full disk / dying volume), so
                 ///< the tail of the log stays exactly the last fsync'd
                 ///< record; stall sleeps briefly
  replica_lag,   ///< repl::follower pull edge (driver thread): fail skips
                 ///< this replication round entirely, so the follower falls
                 ///< one pull interval further behind; stall sleeps briefly
  snapshot_torn, ///< core::durable_log snapshot checkpoint: fail writes a
                 ///< truncated temp file and throws before the rename, so
                 ///< the previous snapshot survives intact (crash mid-write)
};
inline constexpr int site_count = 11;

/// Stable lower_snake_case name of a site (tick logs, schedules).
const char* site_name(site s) noexcept;

/// What a hook tells the seam to do for one invocation.
enum class action {
  proceed,  ///< run normally
  fail,     ///< take the seam's natural error path
  stall,    ///< sleep briefly (timing-only), then proceed
};

/// Interface a fault source implements. on() is called from whatever thread
/// hits the seam (drain workers included) and must be thread-safe, noexcept
/// and fast -- it sits on hot paths whenever installed.
class hook {
 public:
  virtual ~hook() = default;
  virtual action on(site s) noexcept = 0;
};

namespace detail {
/// The process-wide hook slot. Internal: use install()/fire().
std::atomic<hook*>& slot() noexcept;
}  // namespace detail

/// Installs `h` as the process-wide hook (nullptr = disable). Returns the
/// previously installed hook so scopes can nest/restore.
hook* install(hook* h) noexcept;

/// True when any hook is installed (cheap pre-check for seams that would
/// otherwise build arguments).
inline bool armed() noexcept {
  return detail::slot().load(std::memory_order_relaxed) != nullptr;
}

/// Consults the hook at a seam. The no-hook fast path is one relaxed load.
inline action fire(site s) noexcept {
  hook* h = detail::slot().load(std::memory_order_acquire);
  return h == nullptr ? action::proceed : h->on(s);
}

}  // namespace wiscape::core::fault

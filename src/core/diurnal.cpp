#include "core/diurnal.h"

#include <cmath>

namespace wiscape::core {

int diurnal_profile::hour_of(double time_s) noexcept {
  double t = std::fmod(time_s, 86400.0);
  if (t < 0.0) t += 86400.0;
  const int h = static_cast<int>(t / 3600.0);
  return h < 24 ? h : 23;
}

void diurnal_profile::add(double time_s, double value) {
  hours_[static_cast<std::size_t>(hour_of(time_s))].add(value);
}

void diurnal_profile::add_series(const stats::time_series& series) {
  for (const auto& s : series.samples()) add(s.time_s, s.value);
}

std::optional<double> diurnal_profile::expected(
    double time_s, std::size_t min_samples) const {
  const auto& h = hours_[static_cast<std::size_t>(hour_of(time_s))];
  if (h.count() < min_samples) return std::nullopt;
  return h.mean();
}

std::optional<double> diurnal_profile::expected_or_overall(
    double time_s) const {
  if (const auto hourly = expected(time_s)) return hourly;
  stats::running_stats all;
  for (const auto& h : hours_) all.merge(h);
  if (all.empty()) return std::nullopt;
  return all.mean();
}

std::optional<double> diurnal_profile::zscore(double time_s, double value,
                                              std::size_t min_samples) const {
  const auto& h = hours_[static_cast<std::size_t>(hour_of(time_s))];
  if (h.count() < min_samples || h.stddev() <= 0.0) return std::nullopt;
  return (value - h.mean()) / h.stddev();
}

std::optional<double> diurnal_profile::peak_to_trough(
    std::size_t min_samples) const {
  double peak = -1.0, trough = -1.0;
  int qualified = 0;
  for (const auto& h : hours_) {
    if (h.count() < min_samples) continue;
    ++qualified;
    const double m = h.mean();
    if (peak < 0.0 || m > peak) peak = m;
    if (trough < 0.0 || m < trough) trough = m;
  }
  if (qualified < 2 || trough <= 0.0) return std::nullopt;
  return peak / trough;
}

std::size_t diurnal_profile::total_samples() const noexcept {
  std::size_t n = 0;
  for (const auto& h : hours_) n += h.count();
  return n;
}

}  // namespace wiscape::core

#include "core/overhead.h"

#include <stdexcept>

namespace wiscape::core {

probe_cost cost_of(const trace::measurement_record& rec,
                   std::size_t tcp_transfer_bytes, const cost_model& model) {
  probe_cost c;
  switch (rec.kind) {
    case trace::probe_kind::tcp_download: {
      c.bytes_down = tcp_transfer_bytes + model.tcp_overhead_bytes;
      // ~one 40-byte ack per two 1400-byte segments.
      c.bytes_up = tcp_transfer_bytes / 70 + model.tcp_overhead_bytes / 4;
      if (rec.success && rec.throughput_bps > 0.0) {
        c.airtime_s =
            static_cast<double>(tcp_transfer_bytes) * 8.0 / rec.throughput_bps;
      }
      break;
    }
    case trace::probe_kind::udp_burst: {
      // Sent count is not recorded; the received share implies it via loss.
      const double delivered_fraction = 1.0 - rec.loss_rate;
      const double sent =
          delivered_fraction > 0.0 ? 100.0 : 100.0;  // nominal burst size
      c.bytes_down = static_cast<std::size_t>(sent) * model.udp_probe_bytes;
      c.bytes_up = 200;  // probe request + report
      if (rec.success && rec.throughput_bps > 0.0) {
        c.airtime_s = static_cast<double>(c.bytes_down) * 8.0 *
                      delivered_fraction / rec.throughput_bps;
      }
      break;
    }
    case trace::probe_kind::ping: {
      c.bytes_up = static_cast<std::size_t>(rec.ping_sent) * model.ping_bytes;
      c.bytes_down =
          static_cast<std::size_t>(rec.ping_sent - rec.ping_failures) *
          model.ping_bytes;
      c.airtime_s = rec.ping_sent * 0.02;  // trivially small
      break;
    }
    case trace::probe_kind::udp_uplink: {
      const double delivered_fraction = 1.0 - rec.loss_rate;
      c.bytes_up = 100 * model.udp_probe_bytes;
      c.bytes_down = 200;
      if (rec.success && rec.throughput_bps > 0.0) {
        c.airtime_s = static_cast<double>(c.bytes_up) * 8.0 *
                      delivered_fraction / rec.throughput_bps;
      }
      break;
    }
  }
  c.energy_j = c.airtime_s * model.active_power_w +
               model.tail_time_s * model.tail_power_w;
  return c;
}

overhead_summary summarize_overhead(const trace::dataset& ds,
                                    std::size_t tcp_transfer_bytes,
                                    std::size_t clients, double days,
                                    const cost_model& model) {
  if (clients == 0 || !(days > 0.0)) {
    throw std::invalid_argument("summarize_overhead: clients/days must be > 0");
  }
  overhead_summary s;
  for (const auto& rec : ds.records()) {
    const probe_cost c = cost_of(rec, tcp_transfer_bytes, model);
    ++s.probes;
    s.total_mbytes +=
        static_cast<double>(c.bytes_down + c.bytes_up) / 1e6;
    s.total_energy_kj += c.energy_j / 1e3;
    s.total_airtime_s += c.airtime_s;
  }
  const double client_days = static_cast<double>(clients) * days;
  s.mbytes_per_client_day = s.total_mbytes / client_days;
  s.energy_j_per_client_day = s.total_energy_kj * 1e3 / client_days;
  s.airtime_s_per_client_day = s.total_airtime_s / client_days;
  return s;
}

double continuous_monitoring_mbytes_per_day(double rate_bps,
                                            double active_hours) {
  return rate_bps / 8.0 * active_hours * 3600.0 / 1e6;
}

}  // namespace wiscape::core

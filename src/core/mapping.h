// Coverage-map products (Fig 1's deliverable).
//
// Operators consume WiScape as *maps*: per-zone estimates interpolated onto
// a raster. This module builds a metric surface from zone estimates with
// inverse-distance weighting over zone centers, and renders it as an ASCII
// heat map for terminals/logs (the library has no plotting dependency; the
// raster doubles as an export format for real renderers).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "geo/zone_grid.h"
#include "trace/dataset.h"

namespace wiscape::core {

/// One interpolation source: a zone's estimate at its center.
struct map_sample {
  geo::xy pos;
  double value = 0.0;
  std::size_t samples = 0;  ///< records behind the estimate (for weighting)
};

/// A rasterized metric surface over a rectangular area.
struct metric_raster {
  double west_m = 0.0, south_m = 0.0;  ///< projected lower-left corner
  double cell_m = 0.0;                 ///< raster cell size
  std::size_t cols = 0, rows = 0;
  /// Row-major values; NaN marks cells with no nearby data.
  std::vector<double> values;

  double& at(std::size_t col, std::size_t row);
  double at(std::size_t col, std::size_t row) const;
};

struct mapping_config {
  double cell_m = 400.0;       ///< raster resolution
  double idw_power = 2.0;      ///< inverse-distance weighting exponent
  double max_range_m = 1200.0; ///< beyond this from all sources: no data
  std::size_t min_zone_samples = 20;
};

/// Zone-center samples of `metric` for `network` over the grid.
std::vector<map_sample> zone_samples(const trace::dataset& ds,
                                     const geo::zone_grid& grid,
                                     trace::metric metric,
                                     std::string_view network,
                                     std::size_t min_zone_samples);

/// IDW-interpolates `sources` onto a raster spanning their bounding box
/// (padded by one cell). Throws std::invalid_argument when `sources` is
/// empty or the config is degenerate.
metric_raster interpolate(const std::vector<map_sample>& sources,
                          const mapping_config& cfg = {});

/// Renders the raster as an ASCII heat map: ' .:-=+*#%@' from the value
/// range's low to high end; blanks for no-data cells. One output line per
/// raster row, north at the top.
std::string render_ascii(const metric_raster& raster);

/// Convenience: dataset -> rendered map in one call.
std::string ascii_map(const trace::dataset& ds, const geo::zone_grid& grid,
                      trace::metric metric, std::string_view network,
                      const mapping_config& cfg = {});

}  // namespace wiscape::core

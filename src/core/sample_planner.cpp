#include "core/sample_planner.h"

#include <cmath>
#include <stdexcept>

#include "stats/histogram.h"
#include "stats/sampling.h"
#include "stats/summary.h"

namespace wiscape::core {

sample_planner::sample_planner(planner_config cfg) : cfg_(cfg) {
  if (cfg_.iterations < 1 || cfg_.step < 1 || cfg_.max_samples < cfg_.step) {
    throw std::invalid_argument("sample_planner: bad config");
  }
}

double sample_planner::mean_nkld_at(std::span<const double> population,
                                    std::size_t n,
                                    stats::rng_stream& rng) const {
  if (n == 0 || n > population.size()) {
    throw std::invalid_argument("mean_nkld_at: n out of range");
  }
  double total = 0.0;
  for (int it = 0; it < cfg_.iterations; ++it) {
    const auto subset = stats::sample_without_replacement(population, n, rng);
    total += stats::nkld_of_samples(subset, population, cfg_.histogram_bins);
  }
  return total / static_cast<double>(cfg_.iterations);
}

std::vector<convergence_point> sample_planner::convergence_curve(
    std::span<const double> population, stats::rng_stream& rng) const {
  std::vector<convergence_point> out;
  const std::size_t hi = std::min(cfg_.max_samples, population.size());
  for (std::size_t n = cfg_.step; n <= hi; n += cfg_.step) {
    out.push_back({n, mean_nkld_at(population, n, rng)});
  }
  return out;
}

std::size_t sample_planner::samples_needed(std::span<const double> population,
                                           stats::rng_stream& rng) const {
  const auto curve = convergence_curve(population, rng);
  if (curve.empty()) {
    throw std::invalid_argument("samples_needed: population smaller than step");
  }
  for (const auto& p : curve) {
    if (p.mean_nkld <= cfg_.nkld_threshold) return p.samples;
  }
  return curve.back().samples;
}

std::size_t sample_planner::packets_for_accuracy(
    std::span<const double> population, stats::rng_stream& rng) const {
  if (population.empty()) {
    throw std::invalid_argument("packets_for_accuracy: empty population");
  }
  const double truth = stats::mean(population);
  if (truth == 0.0) return cfg_.step;
  const double max_err = 1.0 - cfg_.target_accuracy;
  const std::size_t hi = std::min(cfg_.max_samples, population.size());
  std::size_t last = cfg_.step;
  for (std::size_t n = cfg_.step; n <= hi; n += cfg_.step) {
    last = n;
    double err_sum = 0.0;
    for (int it = 0; it < cfg_.iterations; ++it) {
      const auto subset =
          stats::sample_without_replacement(population, n, rng);
      err_sum += std::abs(stats::mean(subset) - truth) / std::abs(truth);
    }
    if (err_sum / cfg_.iterations <= max_err) return n;
  }
  return last;
}

}  // namespace wiscape::core

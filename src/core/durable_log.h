// Crash-consistent WAL/snapshot persistence pair (ISSUE 10).
//
// core::persist's one-shot snapshots lose everything since the last save
// when the process dies; the replication tentpole needs recovery that is
// O(epochs-since-snapshot), not O(lost-work). The pair:
//
//  * Snapshot -- the full durable_state rendered by core::persist
//    (save_state), written to `<dir>/snapshot.tmp` and atomically renamed
//    to `<dir>/snapshot`, so a crash mid-checkpoint always leaves the
//    previous snapshot intact (the snapshot_torn fault site models exactly
//    that crash).
//  * WAL -- one line per frozen epoch appended (and flushed) as rollovers
//    happen: `W <seq> <zone> <network> <metric> <epoch_start> <mean>
//    <stddev> <n> C<fnv1a32>`, doubles at %.17g so replay is bit-exact.
//    The trailing checksum covers the whole body, so a torn tail -- a cut
//    at any byte, mid-record or mid-checksum -- is detected and recovery
//    stops at the last complete record instead of crashing or replaying
//    garbage (counted in core.persist.wal_truncated).
//
// Recovery = load snapshot (if any) + replay WAL records after it. A
// checkpoint truncates the WAL only after the renamed snapshot is on disk,
// so every epoch is always covered by at least one of the two files.
//
// Only *frozen* epochs ride the WAL (they are the immutable replication
// unit); open-epoch Welford accumulators are carried by snapshots alone,
// exactly like the replication stream itself -- a follower rebuilds open
// epochs from client-assisted replay, not from the log.
//
// The stream-level primitives (wal_append_record / wal_replay) are exposed
// for tests and for anything that ships WAL bytes over a transport; the
// durable_log class manages the on-disk pair and is thread-safe (appends
// come from sharded drain workers via the leader's epoch tap).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>

#include "core/durable_state.h"

namespace wiscape::core {

/// Writes the WAL header line ("WISCAPE-WAL v1").
void wal_write_header(std::ostream& os);

/// Appends one checksummed epoch record. Honours the `wal_append` fault
/// site: an injected fault throws std::runtime_error before anything is
/// written (counted in core.persist.wal_append_failures), so the log tail
/// stays exactly the previous record -- a full-disk model.
void wal_append_record(std::ostream& os, std::uint64_t seq,
                       const estimate_key& key, const epoch_estimate& est);

/// Replays a WAL stream: `apply(seq, key, est)` per complete, checksum-
/// valid record, in file order. Recovery is tolerant of torn tails -- a
/// truncated or corrupt record (or a cut mid-line) stops replay at the
/// last good record, counts core.persist.wal_truncated once, and returns
/// normally; it never throws on damage and never applies a damaged
/// record. Returns the highest sequence number applied (0 = none).
std::uint64_t wal_replay(
    std::istream& is,
    const std::function<void(std::uint64_t, const estimate_key&,
                             const epoch_estimate&)>& apply);

/// The on-disk pair: `<dir>/snapshot` + `<dir>/wal`. `dir` must exist.
class durable_log {
 public:
  explicit durable_log(std::string dir);

  /// Loads the snapshot (if present) into `state`, then replays WAL
  /// records through state.restore_estimate(). Returns the highest WAL
  /// sequence applied (0 = none). Call on a freshly constructed
  /// coordinator, before any ingest.
  std::uint64_t recover(durable_state& state);

  /// Appends one frozen epoch to the WAL and flushes it to the OS. Safe
  /// from any thread (the leader's epoch tap calls this from drain
  /// workers). Propagates the wal_append fault's throw.
  void append(std::uint64_t seq, const estimate_key& key,
              const epoch_estimate& est);

  /// Checkpoints `state`: snapshot.tmp -> rename -> WAL reset. Quiesce
  /// producers first (the state walk is the same one save_state does). On
  /// failure -- including an injected snapshot_torn fault, which leaves a
  /// truncated temp file behind -- throws without touching the previous
  /// snapshot or the WAL.
  void checkpoint(const durable_state& state);

  const std::string& snapshot_path() const noexcept { return snapshot_path_; }
  const std::string& wal_path() const noexcept { return wal_path_; }

 private:
  std::string dir_;
  std::string snapshot_path_;
  std::string wal_path_;
  std::mutex mu_;  // serialises append vs checkpoint on the wal file
};

}  // namespace wiscape::core

#include "core/mapping.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/summary.h"

namespace wiscape::core {

double& metric_raster::at(std::size_t col, std::size_t row) {
  return values[row * cols + col];
}

double metric_raster::at(std::size_t col, std::size_t row) const {
  return values[row * cols + col];
}

std::vector<map_sample> zone_samples(const trace::dataset& ds,
                                     const geo::zone_grid& grid,
                                     trace::metric metric,
                                     std::string_view network,
                                     std::size_t min_zone_samples) {
  const auto zones =
      ds.zone_metric_values(grid, metric, network, min_zone_samples);
  std::vector<map_sample> out;
  out.reserve(zones.size());
  for (const auto& [zone, values] : zones) {
    out.push_back(
        {grid.center_xy(zone), stats::mean(values), values.size()});
  }
  return out;
}

metric_raster interpolate(const std::vector<map_sample>& sources,
                          const mapping_config& cfg) {
  if (sources.empty()) {
    throw std::invalid_argument("interpolate: no sources");
  }
  if (!(cfg.cell_m > 0.0) || !(cfg.max_range_m > 0.0)) {
    throw std::invalid_argument("interpolate: bad config");
  }

  double west = sources[0].pos.x_m, east = west;
  double south = sources[0].pos.y_m, north = south;
  for (const auto& s : sources) {
    west = std::min(west, s.pos.x_m);
    east = std::max(east, s.pos.x_m);
    south = std::min(south, s.pos.y_m);
    north = std::max(north, s.pos.y_m);
  }

  metric_raster r;
  r.cell_m = cfg.cell_m;
  r.west_m = west - cfg.cell_m;
  r.south_m = south - cfg.cell_m;
  r.cols = static_cast<std::size_t>((east - r.west_m) / cfg.cell_m) + 2;
  r.rows = static_cast<std::size_t>((north - r.south_m) / cfg.cell_m) + 2;
  r.values.assign(r.cols * r.rows, std::numeric_limits<double>::quiet_NaN());

  for (std::size_t row = 0; row < r.rows; ++row) {
    for (std::size_t col = 0; col < r.cols; ++col) {
      const geo::xy p{r.west_m + (static_cast<double>(col) + 0.5) * cfg.cell_m,
                      r.south_m + (static_cast<double>(row) + 0.5) * cfg.cell_m};
      double weight_sum = 0.0;
      double value_sum = 0.0;
      bool in_range = false;
      for (const auto& s : sources) {
        const double d = geo::distance_m(p, s.pos);
        if (d > cfg.max_range_m) continue;
        in_range = true;
        if (d < 1.0) {
          // On top of a source: take it outright.
          weight_sum = 1.0;
          value_sum = s.value;
          break;
        }
        // Sample-count-weighted IDW: better-observed zones pull harder.
        const double w = static_cast<double>(s.samples) /
                         std::pow(d, cfg.idw_power);
        weight_sum += w;
        value_sum += w * s.value;
      }
      if (in_range && weight_sum > 0.0) {
        r.at(col, row) = value_sum / weight_sum;
      }
    }
  }
  return r;
}

std::string render_ascii(const metric_raster& raster) {
  static constexpr char ramp[] = " .:-=+*#%@";
  constexpr int levels = 9;  // indices 1..9 of ramp; 0 is no-data blank

  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : raster.values) {
    if (std::isnan(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  out.reserve((raster.cols + 1) * raster.rows);
  // North (max row) at the top.
  for (std::size_t row = raster.rows; row-- > 0;) {
    for (std::size_t col = 0; col < raster.cols; ++col) {
      const double v = raster.at(col, row);
      if (std::isnan(v)) {
        out.push_back(' ');
      } else if (hi <= lo) {
        out.push_back(ramp[5]);
      } else {
        const int idx = 1 + static_cast<int>((v - lo) / (hi - lo) * (levels - 1));
        out.push_back(ramp[std::clamp(idx, 1, levels)]);
      }
    }
    out.push_back('\n');
  }
  return out;
}

std::string ascii_map(const trace::dataset& ds, const geo::zone_grid& grid,
                      trace::metric metric, std::string_view network,
                      const mapping_config& cfg) {
  const auto sources =
      zone_samples(ds, grid, metric, network, cfg.min_zone_samples);
  if (sources.empty()) return "(no zones with enough samples)\n";
  return render_ascii(interpolate(sources, cfg));
}

}  // namespace wiscape::core

#include "core/normalize.h"

#include <algorithm>
#include <unordered_map>

#include "stats/running_stats.h"
#include "stats/summary.h"

namespace wiscape::core {

category_scale estimate_category_scale(const trace::dataset& ds,
                                       const geo::zone_grid& grid,
                                       trace::metric metric,
                                       std::string_view from_device,
                                       std::string_view to_device,
                                       std::size_t min_samples) {
  const trace::probe_kind kind = trace::kind_for(metric);
  struct pair_stats {
    stats::running_stats from, to;
  };
  std::unordered_map<geo::zone_id, pair_stats, geo::zone_id_hash> zones;
  for (const auto& r : ds.records()) {
    if (!r.success || r.kind != kind) continue;
    auto& z = zones[grid.zone_of(r.pos)];
    if (r.device == from_device) {
      z.from.add(trace::value_of(r, metric));
    } else if (r.device == to_device) {
      z.to.add(trace::value_of(r, metric));
    }
  }

  std::vector<double> ratios;
  for (const auto& [_, z] : zones) {
    if (z.from.count() < min_samples || z.to.count() < min_samples) continue;
    if (z.from.mean() == 0.0) continue;
    ratios.push_back(z.to.mean() / z.from.mean());
  }

  category_scale out;
  out.zones_used = ratios.size();
  if (ratios.empty()) return out;
  out.scale = stats::percentile(ratios, 50.0);
  out.ratio_spread = stats::relative_stddev(ratios);
  return out;
}

trace::dataset apply_category_scale(const trace::dataset& ds,
                                    trace::metric metric,
                                    std::string_view device, double scale,
                                    std::string_view as_device) {
  const trace::probe_kind kind = trace::kind_for(metric);
  trace::dataset out;
  for (auto r : ds.records()) {
    if (r.success && r.kind == kind && r.device == device) {
      switch (metric) {
        case trace::metric::tcp_throughput_bps:
        case trace::metric::udp_throughput_bps:
        case trace::metric::uplink_throughput_bps:
          r.throughput_bps *= scale;
          break;
        case trace::metric::loss_rate:
          r.loss_rate *= scale;
          break;
        case trace::metric::jitter_s:
          r.jitter_s *= scale;
          break;
        case trace::metric::rtt_s:
          r.rtt_s *= scale;
          break;
      }
      r.device = std::string(as_device);
    }
    out.add(std::move(r));
  }
  return out;
}

}  // namespace wiscape::core

// Sharded, thread-parallel coordinator ingestion (ROADMAP north star:
// "serving heavy traffic from millions of users").
//
// WiScape's server aggregates independent per-(zone, network, metric)
// streams (Sec 3.4), which makes ingestion embarrassingly shardable by
// zone: every CHECKIN and REPORT touches exactly one zone, so zones are
// mapped to N shards by zone_id hash and each shard owns a full
// coordinator (zone_table + sample_planner + epoch state) behind its own
// mutex. Check-ins are answered synchronously on the caller's thread
// (clients wait for their task); reports flow through one bounded
// report_queue per shard into a worker-thread pool, and each worker drains
// its shard's queue in batches so one lock acquisition is amortised over
// many reports.
//
// Determinism: a report's effect depends only on its zone's prior samples,
// and each shard has exactly one drain worker, so per-zone arrival order is
// preserved and the published estimates/alerts are bit-for-bit what the
// sequential coordinator produces for the same per-zone report order --
// regardless of shard count (tests/sharded_coordinator_test.cpp holds
// N = 1, 2, 4, 8 to this). With `num_shards = 1, synchronous = true` the
// single shard *is* a sequential coordinator with the same seed, so task
// probabilities and budget accounting reproduce the sequential path
// exactly. With several shards, per-client budgets are tracked by the shard
// of the zone the client checks in from; a client roaming across shards is
// capped per shard, not globally (centralised budgets would serialise the
// check-in path -- an accepted trade documented in DESIGN.md).
//
// Thread safety: every public member is safe to call from any thread;
// checkin()/report() are the concurrent hot paths, the read-side
// aggregators take each shard's lock in turn (flush() first for a
// consistent view).
//
// Observability: the pipeline feeds the `core.sharded.*` metrics plus the
// per-shard `core.sharded.shard<i>.{routed,drained}` family (src/obs/
// names.h; reference table in docs/RUNBOOK.md). To keep report() free of
// registry work, the routed counters are published as deltas of the
// internal enqueue counter at drain and flush boundaries -- mid-run
// snapshots can lag by up to one drain batch, but after flush() they
// account for every report the pipeline accepted.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "core/coordinator.h"
#include "core/durable_state.h"
#include "core/network_interner.h"
#include "core/report_queue.h"

namespace wiscape::core {

struct sharded_config {
  coordinator_config coordinator{};  ///< applied to every shard
  std::size_t num_shards = 4;
  /// true: reports are applied inline on the caller's thread (no queues, no
  /// workers). With num_shards = 1 this reproduces core::coordinator
  /// exactly. false: reports are enqueued and drained by one worker thread
  /// per shard.
  bool synchronous = false;
  std::size_t queue_capacity = 4096;  ///< per shard
  std::size_t drain_batch = 64;       ///< max reports applied per lock hold
};

/// Read-only per-shard ingestion counters, for benches and tools.
struct shard_stats {
  std::uint64_t reports_ingested = 0;  ///< applied to the shard's tables
  std::uint64_t tasks_issued = 0;
  std::uint64_t drain_batches = 0;     ///< lock-amortised drain rounds
  double drain_latency_s = 0.0;        ///< total time spent applying batches
  std::size_t queue_depth = 0;         ///< reports enqueued, not yet applied
};

class sharded_coordinator : public durable_state {
 public:
  /// Shard 0 seeds its rng with `seed` itself (so num_shards = 1 matches a
  /// sequential coordinator(seed) draw-for-draw); shard i > 0 uses an
  /// independent stream forked from (seed, i).
  sharded_coordinator(geo::zone_grid grid, std::vector<std::string> networks,
                      sharded_config cfg, std::uint64_t seed);
  ~sharded_coordinator();

  sharded_coordinator(const sharded_coordinator&) = delete;
  sharded_coordinator& operator=(const sharded_coordinator&) = delete;

  const geo::zone_grid& grid() const noexcept { return grid_; }
  const sharded_config& config() const noexcept { return cfg_; }
  std::size_t num_shards() const noexcept { return shards_.size(); }

  /// Which shard owns a zone / position (zone_id hash mod num_shards).
  std::size_t shard_of(const geo::zone_id& zone) const noexcept;
  std::size_t shard_of(const geo::lat_lon& pos) const noexcept;

  /// Client check-in, answered synchronously under the owning shard's lock.
  /// Same contract as coordinator::checkin.
  std::optional<measurement_task> checkin(const geo::lat_lon& pos,
                                          double time_s,
                                          std::size_t network_index,
                                          std::size_t active_clients_in_zone,
                                          std::uint64_t client_id = 0);

  /// Ingests a completed measurement. Synchronous mode applies it inline;
  /// otherwise it is enqueued for the owning shard's worker (blocking while
  /// that shard's queue is full -- backpressure). Returns false only when
  /// the pipeline has been stopped.
  bool report(const trace::measurement_record& rec);

  /// Batched ingestion: routes every record to its owning shard, then makes
  /// one enqueue (one queue-lock acquisition, one counter delta) per shard
  /// touched instead of one per record -- the wire-facing amortisation the
  /// REPORTB command rides on. Per-producer FIFO order is preserved within
  /// each shard, so determinism guarantees are unchanged. Returns the
  /// number of records accepted: recs.size() normally, fewer (possibly 0)
  /// only when the pipeline has been stopped.
  std::size_t report_batch(std::span<const trace::measurement_record> recs);

  /// Blocks until every report enqueued before the call has been applied.
  /// No-op in synchronous mode. Call before reading tables for a consistent
  /// snapshot while producers are quiescent.
  void flush();

  /// Closes the queues, drains what remains and joins the workers. Further
  /// reports are dropped (report() returns false). Idempotent; the
  /// destructor calls it.
  void stop();

  /// Re-estimates epoch durations on every shard (under each shard's lock).
  void recompute_epochs();

  /// Refines a zone's sample target on its owning shard. Same contract as
  /// coordinator::refine_sample_target.
  std::size_t refine_sample_target(const geo::zone_id& zone,
                                   std::string_view network,
                                   trace::metric metric);

  zone_status status_of(const geo::zone_id& zone) const;

  /// Total MB charged against a client today, summed across shards (each
  /// shard accounts the check-ins it answered).
  double client_spend_mb(std::uint64_t client_id, double time_s) const;

  /// Interned id of an operator from the constructor's network list, or
  /// trace::no_network_id (== network_interner::npos) for anything else.
  /// Backed by a frozen interner that is never mutated after construction,
  /// so it is safe to call concurrently without a lock -- the wire boundary
  /// uses it to pre-resolve measurement_record::network_id once per record.
  /// Ids agree with every shard's table for these networks (all interners
  /// are seeded from the same list in the same order).
  std::uint16_t network_id_of(std::string_view network) const noexcept {
    return wire_ids_.try_id(network);
  }

  /// The frozen wire-boundary interner itself (read-only).
  const network_interner& wire_interner() const noexcept { return wire_ids_; }

  // ---- serving layer (lock-free; consumed by core::estimate_view) --------

  /// Shard `shard`'s published-estimate mirror. Reads are lock-free and
  /// never contend with that shard's drain worker.
  const estimate_mirror& published_of(std::size_t shard) const noexcept;

  /// The alert ring shared by every shard: one total order of alert
  /// sequence numbers across the whole coordinator.
  const alert_ring& alert_sink() const noexcept { return ring_; }

  // ---- persistence surface (core::durable_state) --------------------------

  /// Restores a frozen estimate into the owning shard (under its lock).
  void restore_estimate(const estimate_key& key,
                        const epoch_estimate& e) override;
  /// Restores an open-epoch accumulator into the owning shard.
  void restore_open(const estimate_key& key,
                    const open_epoch_state& st) override;
  /// Open-epoch accumulator of a stream, from its owning shard.
  std::optional<open_epoch_state> open_state(
      const estimate_key& key) const override;
  /// The shared alert ring's high-water sequence number.
  std::uint64_t alert_seq() const override { return ring_.pushed(); }
  /// Resumes the shared alert ring's sequence numbering after a restart
  /// (alert_ring::resume_from semantics: pre-restart sequences account as
  /// dropped to lagging cursors, never silently vanish). Call before any
  /// report is ingested.
  void resume_alert_seq(std::uint64_t last_seq) override {
    ring_.resume_from(last_seq);
  }

  // ---- replication surface (src/repl, ISSUE 10) ---------------------------

  /// Attaches one epoch-rollover tap to every shard's table. Rollovers fire
  /// it from drain-worker threads under the owning shard's lock, so the tap
  /// must be thread-safe (repl::epoch_log is). Install before ingesting;
  /// pass nullptr only while the pipeline is quiescent.
  void set_epoch_tap(epoch_tap* tap);
  /// Folds a replicated frozen estimate into the owning shard (under its
  /// lock): a follower applying the leader's epoch stream, or two
  /// coordinators merging feeds from disjoint client populations. Returns
  /// true when an existing (zone, network, epoch) entry was merged, false
  /// when the estimate was appended fresh (the fast-forward path).
  bool apply_epoch(const estimate_key& key, const epoch_estimate& e);

  // ---- read-side aggregation (flush() first for a consistent view) -------

  /// Latest frozen estimate / history for a key, from its owning shard.
  std::optional<epoch_estimate> latest(const estimate_key& key) const;
  std::vector<epoch_estimate> history(const estimate_key& key) const override;

  /// All keys across shards (unspecified order).
  std::vector<estimate_key> keys() const override;

  /// All change alerts across shards, sorted by (epoch_start_s, key) so two
  /// runs that raised the same alerts compare equal regardless of shard
  /// interleaving.
  std::vector<change_alert> alerts() const;

  // ---- counters ----------------------------------------------------------

  std::uint64_t reports_received() const noexcept {
    return reports_received_.load(std::memory_order_relaxed);
  }
  std::uint64_t reports_ingested() const noexcept;
  std::uint64_t tasks_issued() const noexcept {
    return tasks_issued_.load(std::memory_order_relaxed);
  }
  /// Reports enqueued but not yet applied, summed over shards.
  std::size_t queue_depth() const;
  shard_stats stats_of(std::size_t shard) const;

  /// How full the ingest queues are, as the *worst* shard's depth /
  /// capacity in [0, 1]. The max (not the mean) is the backpressure signal:
  /// one saturated shard stalls every producer that routes to it, so a
  /// transport shedding on this value sheds before any producer blocks.
  /// 0.0 in synchronous mode (no queues). Lock-free; safe from any thread.
  double ingest_saturation() const noexcept;

 private:
  struct shard;

  shard& owner_of(const geo::zone_id& zone) noexcept;
  /// Feeds one shard's slice of a batch (apply inline when synchronous,
  /// else one push_batch). Returns records accepted.
  std::size_t ingest_group(shard& sh,
                           std::span<const trace::measurement_record> recs);
  void drain_loop(shard& sh);
  /// Applies a batch to the shard's coordinator under its lock.
  void apply_batch(shard& sh,
                   const std::vector<trace::measurement_record>& batch);

  geo::zone_grid grid_;
  sharded_config cfg_;
  // Frozen copy of the constructor's operator-id assignment, readable from
  // any thread without a lock (see network_id_of).
  network_interner wire_ids_;
  // Shared alert ring every shard's coordinator publishes into (alerts are
  // rollover-rare, so the ring's mutex never pressures drain workers).
  alert_ring ring_;
  std::vector<std::unique_ptr<shard>> shards_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> reports_received_{0};
  std::atomic<std::uint64_t> tasks_issued_{0};
  std::atomic<bool> stopped_{false};
};

}  // namespace wiscape::core

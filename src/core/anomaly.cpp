#include "core/anomaly.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "stats/summary.h"

namespace wiscape::core {

namespace {

/// Longest run of consecutive integers in a sorted unique set.
int longest_consecutive_run(const std::set<int>& days) {
  int best = 0;
  int run = 0;
  int prev = std::numeric_limits<int>::min();
  for (int d : days) {
    run = (d == prev + 1) ? run + 1 : 1;
    best = std::max(best, run);
    prev = d;
  }
  return best;
}

}  // namespace

failed_ping_report analyze_failed_pings(const trace::dataset& ds,
                                        const geo::zone_grid& grid,
                                        std::string_view network,
                                        const failed_ping_config& cfg) {
  // Per zone: TCP throughput samples and days with >= 1 failed ping.
  std::unordered_map<geo::zone_id, std::vector<double>, geo::zone_id_hash> tcp;
  std::unordered_map<geo::zone_id, std::set<int>, geo::zone_id_hash> fail_days;

  for (const auto& r : ds.records()) {
    if (!network.empty() && r.network != network) continue;
    const geo::zone_id z = grid.zone_of(r.pos);
    if (r.kind == trace::probe_kind::tcp_download && r.success) {
      tcp[z].push_back(r.throughput_bps);
    } else if (r.kind == trace::probe_kind::ping && r.ping_failures > 0) {
      fail_days[z].insert(static_cast<int>(std::floor(r.time_s / 86400.0)));
    }
  }

  failed_ping_report rep;
  std::size_t high_var_total = 0;
  std::size_t high_var_flagged = 0;
  for (const auto& [zone, samples] : tcp) {
    if (samples.size() < cfg.min_tcp_samples) continue;
    const double rel = stats::relative_stddev(samples);
    ++rep.zones_total;
    rep.all_rel_stddev.push_back(rel);

    bool flagged = false;
    const auto it = fail_days.find(zone);
    if (it != fail_days.end() &&
        longest_consecutive_run(it->second) >= cfg.min_consecutive_days) {
      flagged = true;
      ++rep.zones_flagged;
      rep.flagged_rel_stddev.push_back(rel);
    }
    if (rel > cfg.high_variability) {
      ++high_var_total;
      if (flagged) ++high_var_flagged;
    }
  }
  rep.high_variability_caught =
      high_var_total > 0
          ? static_cast<double>(high_var_flagged) / static_cast<double>(high_var_total)
          : 0.0;
  return rep;
}

std::vector<surge> detect_surges(const stats::time_series& series,
                                 double bin_s, double factor_threshold,
                                 double min_duration_s) {
  std::vector<surge> out;
  if (series.empty() || !(bin_s > 0.0)) return out;

  // Bin means keyed by bin index so we keep wall-clock positions.
  std::map<std::int64_t, stats::running_stats> bins;
  for (const auto& s : series.samples()) {
    bins[static_cast<std::int64_t>(std::floor(s.time_s / bin_s))].add(s.value);
  }
  std::vector<double> means;
  means.reserve(bins.size());
  for (const auto& [_, rs] : bins) means.push_back(rs.mean());
  const double baseline = stats::percentile(means, 50.0);
  if (baseline <= 0.0) return out;

  std::optional<surge> open;
  std::int64_t prev_idx = 0;
  for (const auto& [idx, rs] : bins) {
    const bool elevated = rs.mean() > factor_threshold * baseline;
    const bool contiguous = open && idx == prev_idx + 1;
    if (elevated && open && contiguous) {
      open->end_s = static_cast<double>(idx + 1) * bin_s;
      open->peak = std::max(open->peak, rs.mean());
    } else if (elevated) {
      if (open) {
        // Close the previous (non-contiguous) run first.
        if (open->end_s - open->start_s >= min_duration_s) out.push_back(*open);
      }
      open = surge{static_cast<double>(idx) * bin_s,
                   static_cast<double>(idx + 1) * bin_s, baseline, rs.mean(),
                   0.0};
    } else if (open) {
      if (open->end_s - open->start_s >= min_duration_s) out.push_back(*open);
      open.reset();
    }
    prev_idx = idx;
  }
  if (open && open->end_s - open->start_s >= min_duration_s) {
    out.push_back(*open);
  }
  for (auto& s : out) s.factor = s.peak / s.baseline;
  return out;
}

}  // namespace wiscape::core

#include "core/persist.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace wiscape::core {

namespace {

geo::zone_id parse_zone(const std::string& s) {
  const auto colon = s.find(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("bad zone id '" + s + "'");
  }
  try {
    return {std::stoi(s.substr(0, colon)), std::stoi(s.substr(colon + 1))};
  } catch (const std::exception&) {
    throw std::invalid_argument("bad zone id '" + s + "'");
  }
}

}  // namespace

void save_zone_table(std::ostream& os, const zone_table& table) {
  os << "WISCAPE-ZONETABLE v1\n";
  auto keys = table.keys();
  // Deterministic file order: by zone, then network, then metric.
  std::sort(keys.begin(), keys.end(),
            [](const estimate_key& a, const estimate_key& b) {
              if (a.zone != b.zone) return a.zone < b.zone;
              if (a.network != b.network) return a.network < b.network;
              return static_cast<int>(a.metric) < static_cast<int>(b.metric);
            });
  char buf[256];
  for (const auto& key : keys) {
    // Non-copying view: the table is not mutated while we stream it out.
    for (const auto& est : table.history_view(key)) {
      std::snprintf(buf, sizeof(buf), "EST %s %s %s %.3f %.6f %.6f %zu\n",
                    geo::to_string(key.zone).c_str(), key.network.c_str(),
                    trace::to_string(key.metric).c_str(), est.epoch_start_s,
                    est.mean, est.stddev, est.samples);
      os << buf;
    }
  }
}

void save_zone_table_file(const std::string& path, const zone_table& table) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  save_zone_table(os, table);
}

zone_table load_zone_table(std::istream& is, double change_sigma_factor) {
  std::string line;
  if (!std::getline(is, line) || line != "WISCAPE-ZONETABLE v1") {
    throw std::invalid_argument("not a zone-table file (bad header)");
  }
  zone_table table(change_sigma_factor);
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag, zone_s, net, metric_s;
    epoch_estimate est;
    if (!(ls >> tag >> zone_s >> net >> metric_s >> est.epoch_start_s >>
          est.mean >> est.stddev >> est.samples) ||
        tag != "EST") {
      throw std::invalid_argument("malformed zone-table line: '" + line + "'");
    }
    table.restore({parse_zone(zone_s), net, trace::metric_from_string(metric_s)},
                  est);
  }
  return table;
}

zone_table load_zone_table_file(const std::string& path,
                                double change_sigma_factor) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  return load_zone_table(is, change_sigma_factor);
}

}  // namespace wiscape::core

#include "core/persist.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/fault_injection.h"
#include "core/sharded_coordinator.h"

namespace wiscape::core {

namespace {

geo::zone_id parse_zone(const std::string& s) {
  const auto colon = s.find(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("bad zone id '" + s + "'");
  }
  try {
    return {std::stoi(s.substr(0, colon)), std::stoi(s.substr(colon + 1))};
  } catch (const std::exception&) {
    throw std::invalid_argument("bad zone id '" + s + "'");
  }
}

void sort_keys(std::vector<estimate_key>& keys) {
  // Deterministic file order: by zone, then network, then metric.
  std::sort(keys.begin(), keys.end(),
            [](const estimate_key& a, const estimate_key& b) {
              if (a.zone != b.zone) return a.zone < b.zone;
              if (a.network != b.network) return a.network < b.network;
              return static_cast<int>(a.metric) < static_cast<int>(b.metric);
            });
}

void write_est(std::ostream& os, const estimate_key& key,
               const epoch_estimate& est) {
  char buf[320];
  // %.17g round-trips IEEE doubles exactly, so load(save(t)) is bit-equal.
  std::snprintf(buf, sizeof(buf), "EST %s %s %s %.17g %.17g %.17g %zu\n",
                geo::to_string(key.zone).c_str(), key.network.c_str(),
                trace::to_string(key.metric).c_str(), est.epoch_start_s,
                est.mean, est.stddev, est.samples);
  os << buf;
}

void write_open(std::ostream& os, const estimate_key& key,
                const open_epoch_state& st) {
  char buf[320];
  std::snprintf(buf, sizeof(buf), "OPEN %s %s %s %.17g %llu %.17g %.17g\n",
                geo::to_string(key.zone).c_str(), key.network.c_str(),
                trace::to_string(key.metric).c_str(), st.open_start_s,
                static_cast<unsigned long long>(st.n), st.mean, st.m2);
  os << buf;
}

/// Parses the shared EST/OPEN body shared by both formats. Returns false if
/// the line is neither (caller decides whether that's fatal).
template <typename RestoreEst, typename RestoreOpen>
bool parse_body_line(const std::string& line, RestoreEst&& restore_est,
                     RestoreOpen&& restore_open) {
  std::istringstream ls(line);
  std::string tag, zone_s, net, metric_s;
  if (!(ls >> tag >> zone_s >> net >> metric_s)) return false;
  if (tag == "EST") {
    epoch_estimate est;
    if (!(ls >> est.epoch_start_s >> est.mean >> est.stddev >> est.samples)) {
      throw std::invalid_argument("malformed zone-table line: '" + line + "'");
    }
    restore_est(
        estimate_key{parse_zone(zone_s), net,
                     trace::metric_from_string(metric_s)},
        est);
    return true;
  }
  if (tag == "OPEN") {
    open_epoch_state st;
    unsigned long long n = 0;
    if (!(ls >> st.open_start_s >> n >> st.mean >> st.m2)) {
      throw std::invalid_argument("malformed open-epoch line: '" + line + "'");
    }
    st.n = n;
    restore_open(
        estimate_key{parse_zone(zone_s), net,
                     trace::metric_from_string(metric_s)},
        st);
    return true;
  }
  return false;
}

}  // namespace

void save_zone_table(std::ostream& os, const zone_table& table) {
  os << "WISCAPE-ZONETABLE v2\n";
  auto keys = table.keys();
  sort_keys(keys);
  for (const auto& key : keys) {
    // Non-copying view: the table is not mutated while we stream it out.
    for (const auto& est : table.history_view(key)) {
      write_est(os, key, est);
    }
    if (const auto open = table.open_state(key)) {
      write_open(os, key, *open);
    }
  }
}

void save_zone_table_file(const std::string& path, const zone_table& table) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  save_zone_table(os, table);
}

zone_table load_zone_table(std::istream& is, double change_sigma_factor) {
  std::string line;
  if (!std::getline(is, line) || (line != "WISCAPE-ZONETABLE v1" &&
                                  line != "WISCAPE-ZONETABLE v2")) {
    throw std::invalid_argument("not a zone-table file (bad header)");
  }
  zone_table table(change_sigma_factor);
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (!parse_body_line(
            line,
            [&](const estimate_key& k, const epoch_estimate& e) {
              table.restore(k, e);
            },
            [&](const estimate_key& k, const open_epoch_state& s) {
              table.restore_open(k, s);
            })) {
      throw std::invalid_argument("malformed zone-table line: '" + line + "'");
    }
  }
  return table;
}

zone_table load_zone_table_file(const std::string& path,
                                double change_sigma_factor) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  return load_zone_table(is, change_sigma_factor);
}

void save_state(std::ostream& os, const durable_state& state) {
  if (fault::fire(fault::site::persist_save) == fault::action::fail) {
    throw std::runtime_error("injected fault: coordinator snapshot refused");
  }
  os << "WISCAPE-COORD v2\n";
  auto keys = state.keys();
  sort_keys(keys);
  for (const auto& key : keys) {
    for (const auto& est : state.history(key)) {
      write_est(os, key, est);
    }
    if (const auto open = state.open_state(key)) {
      write_open(os, key, *open);
    }
  }
  os << "ALERTSEQ " << state.alert_seq() << "\n";
}

void load_state(std::istream& is, durable_state& state) {
  std::string line;
  if (!std::getline(is, line) || line != "WISCAPE-COORD v2") {
    throw std::invalid_argument("not a coordinator-state file (bad header)");
  }
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (parse_body_line(
            line,
            [&](const estimate_key& k, const epoch_estimate& e) {
              state.restore_estimate(k, e);
            },
            [&](const estimate_key& k, const open_epoch_state& s) {
              state.restore_open(k, s);
            })) {
      continue;
    }
    std::istringstream ls(line);
    std::string tag;
    std::uint64_t seq = 0;
    if ((ls >> tag >> seq) && tag == "ALERTSEQ") {
      if (seq > 0) state.resume_alert_seq(seq);
      continue;
    }
    throw std::invalid_argument("malformed coordinator-state line: '" + line +
                                "'");
  }
}

void save_coordinator_state(std::ostream& os,
                            const sharded_coordinator& coord) {
  save_state(os, coord);
}

void load_coordinator_state(std::istream& is, sharded_coordinator& coord) {
  load_state(is, coord);
}

}  // namespace wiscape::core

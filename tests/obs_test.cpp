#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/registry.h"
#include "obs/snapshot_writer.h"
#include "obs/span.h"

namespace wiscape::obs {
namespace {

TEST(ObsRegistry, ConcurrentIncrementsSumExactly) {
  registry reg;
  counter& c = reg.get_counter("test.hits");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsRegistry, ConcurrentHistogramRecordsSumExactly) {
  registry reg;
  histogram& h = reg.get_histogram("test.latency_s");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.record(1e-3);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  // All observations land in the <= 1e-3 bucket (index 3) and nowhere else.
  EXPECT_EQ(h.bucket(3), h.count());
  EXPECT_NEAR(h.sum_s(), kThreads * kPerThread * 1e-3, 1e-3);
}

TEST(ObsRegistry, HistogramBucketEdges) {
  registry reg;
  histogram& h = reg.get_histogram("test.edges");
  // Buckets hold v <= edge (first edge that is >= the value); the last
  // bucket is the +inf overflow.
  h.record(0.5e-6);  // below first edge        -> bucket 0 (le_1e-06)
  h.record(1e-6);    // exactly on an edge      -> bucket 0 (inclusive)
  h.record(2e-6);    // between 1e-6 and 1e-5   -> bucket 1
  h.record(0.5);     // between 0.1 and 1.0     -> bucket 6
  h.record(100.0);   // beyond the last edge    -> overflow bucket 8
  h.record(-1.0);    // negative clamps to zero -> bucket 0
  EXPECT_EQ(h.bucket(0), 3u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(6), 1u);
  EXPECT_EQ(h.bucket(histogram::num_buckets - 1), 1u);
  EXPECT_EQ(h.count(), 6u);
}

TEST(ObsRegistry, SnapshotIsDeterministicAndSorted) {
  const auto build = [] {
    registry reg;
    reg.get_counter("z.last").inc(7);
    reg.get_gauge("a.first").set(-3);
    histogram& h = reg.get_histogram("m.lat_s");
    h.record(1e-4);
    h.record(1e-4);
    h.record(5.0);
    return reg.snapshot();
  };
  const auto s1 = build();
  const auto s2 = build();
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].name, s2[i].name);
    EXPECT_EQ(s1[i].value, s2[i].value);
  }
  // Sorted by name, gauge first.
  EXPECT_EQ(s1.front().name, "a.first");
  EXPECT_EQ(s1.front().value, -3.0);
  EXPECT_EQ(s1.back().name, "z.last");
  EXPECT_EQ(s1.back().value, 7.0);
  // Histogram expansion: cumulative le_* buckets + count + sum.
  double le_1e4 = -1, le_inf = -1, count = -1, sum = -1;
  for (const auto& s : s1) {
    if (s.name == "m.lat_s.le_0.0001") le_1e4 = s.value;
    if (s.name == "m.lat_s.le_inf") le_inf = s.value;
    if (s.name == "m.lat_s.count") count = s.value;
    if (s.name == "m.lat_s.sum_s") sum = s.value;
  }
  EXPECT_EQ(le_1e4, 2.0);   // both 1e-4 observations
  EXPECT_EQ(le_inf, 3.0);   // cumulative: everything
  EXPECT_EQ(count, 3.0);
  EXPECT_NEAR(sum, 5.0002, 1e-6);
}

TEST(ObsRegistry, NameCollisionAcrossKindsThrows) {
  registry reg;
  reg.get_counter("same.name");
  EXPECT_THROW(reg.get_gauge("same.name"), std::invalid_argument);
  EXPECT_THROW(reg.get_histogram("same.name"), std::invalid_argument);
  // Same kind returns the same instrument.
  counter& a = reg.get_counter("same.name");
  counter& b = reg.get_counter("same.name");
  EXPECT_EQ(&a, &b);
}

TEST(ObsRegistry, GaugeTracksLevelAndMax) {
  registry reg;
  gauge& g = reg.get_gauge("test.depth");
  g.set(5);
  g.add(3);
  EXPECT_EQ(g.value(), 8);
  gauge& hw = reg.get_gauge("test.high_water");
  hw.record_max(4);
  hw.record_max(9);
  hw.record_max(2);  // lower: no effect
  EXPECT_EQ(hw.value(), 9);
}

TEST(ObsRegistry, DisabledIncrementsAreDropped) {
  registry reg;
  counter& c = reg.get_counter("test.off");
  histogram& h = reg.get_histogram("test.off_hist");
  set_enabled(false);
  c.inc(10);
  h.record(0.5);
  {
    span s(h);  // span constructed while disabled records nothing
  }
  set_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.inc(2);
  EXPECT_EQ(c.value(), 2u);
}

TEST(ObsRegistry, FormatValuePrintsIntegersWithoutPoint) {
  EXPECT_EQ(format_value({"n", 42.0, true}), "42");
  EXPECT_EQ(format_value({"n", -3.0, true}), "-3");
  EXPECT_EQ(format_value({"n", 0.25, false}), "0.25");
}

TEST(ObsSpan, RecordsElapsedIntoHistogram) {
  registry reg;
  histogram& h = reg.get_histogram("test.span_s");
  {
    span s(h);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum_s(), 0.002);
  EXPECT_LT(h.sum_s(), 10.0);
}

TEST(ObsSnapshotWriter, WritesParseableJsonLines) {
  registry reg;
  reg.get_counter("w.events").inc(3);
  const std::string path =
      ::testing::TempDir() + "obs_snapshot_writer_test.jsonl";
  std::remove(path.c_str());
  {
    snapshot_writer writer(path, std::chrono::milliseconds(10), reg);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }  // destructor stops + writes the final snapshot
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.rfind("{\"seq\":", 0), 0u) << line;
    EXPECT_NE(line.find("\"metrics\":{"), std::string::npos) << line;
    EXPECT_NE(line.find("\"w.events\":3"), std::string::npos) << line;
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_GE(lines, 1u);  // at least the final snapshot
  std::remove(path.c_str());
}

TEST(ObsSnapshotWriter, OneShotSnapshotMatchesRegistry) {
  registry reg;
  reg.get_counter("one.count").inc(5);
  reg.get_gauge("one.level").set(-2);
  std::ostringstream os;
  write_snapshot_json(os, reg, 7, 1.25);
  EXPECT_EQ(os.str(),
            "{\"seq\":7,\"uptime_s\":1.250,\"metrics\":"
            "{\"one.count\":5,\"one.level\":-2}}\n");
}

TEST(ObsRegistry, SnapshotFlagsMonotoneSamples) {
  registry reg;
  reg.get_counter("m.count").inc(3);
  reg.get_gauge("m.level").set(4);
  reg.get_histogram("m.lat_s").record(0.5);
  for (const metric_sample& s : reg.snapshot()) {
    if (s.name == "m.level") {
      // Gauges move both ways; never monotone.
      EXPECT_FALSE(s.monotone) << s.name;
    } else {
      // Counters and every histogram-derived sample (cumulative buckets,
      // count, sum) only grow.
      EXPECT_TRUE(s.monotone) << s.name;
    }
  }
}

TEST(ObsRegistry, NoMonotoneSampleDecreasesBetweenSnapshots) {
  // Regression for the scenario engine's counter-monotonicity invariant:
  // under concurrent traffic, consecutive snapshots never show a monotone
  // sample decreasing (or disappearing).
  registry reg;
  counter& c = reg.get_counter("mono.count");
  histogram& h = reg.get_histogram("mono.lat_s");
  gauge& g = reg.get_gauge("mono.level");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      c.inc();
      h.record(1e-5 * static_cast<double>(i % 2000));
      g.set(static_cast<std::int64_t>(i % 17) - 8);
      ++i;
    }
  });
  std::vector<metric_sample> prev = reg.snapshot();
  for (int round = 0; round < 200; ++round) {
    std::vector<metric_sample> cur = reg.snapshot();
    std::size_t pi = 0;
    for (const metric_sample& s : cur) {
      while (pi < prev.size() && prev[pi].name < s.name) ++pi;
      if (pi == prev.size()) break;
      if (prev[pi].name != s.name || !prev[pi].monotone) continue;
      EXPECT_GE(s.value, prev[pi].value) << s.name << " round " << round;
    }
    prev = std::move(cur);
  }
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace wiscape::obs

// Scenario engine tests (ISSUE 6): determinism of the tick log, every
// invariant checker red on a deliberately broken input, a smoke run of the
// full named catalogue, the crash-recovery regression (restart mid-storm
// serves bit-equal ESTB), deliberate sabotage caught with tick+seed, and
// the injector's deterministic schedule semantics.
//
// Scenarios share the process-global obs:: registry and fault hook, so
// every test here runs scenarios strictly sequentially -- which is also the
// engine's documented contract.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/alert_ring.h"
#include "core/persist.h"
#include "core/sharded_coordinator.h"
#include "geo/projection.h"
#include "geo/zone_grid.h"
#include "scenario/engine.h"
#include "scenario/injector.h"
#include "scenario/invariants.h"
#include "scenario/scenarios.h"

namespace {

using namespace wiscape;

// ---- determinism ----------------------------------------------------------

TEST(Scenario, SameSeedProducesByteIdenticalTickLog) {
  const scenario::scenario_config cfg = scenario::make_scenario("flash_crowd");
  const scenario::scenario_result a = scenario::run_scenario(cfg, 42);
  const scenario::scenario_result b = scenario::run_scenario(cfg, 42);
  ASSERT_TRUE(a.passed) << a.violations.size() << " violations, first: "
                        << scenario::to_string(a.violations.front());
  EXPECT_EQ(a.tick_log, b.tick_log);
  EXPECT_EQ(a.final_estb, b.final_estb);
}

TEST(Scenario, DifferentSeedDiverges) {
  const scenario::scenario_config cfg = scenario::make_scenario("baseline");
  const scenario::scenario_result a = scenario::run_scenario(cfg, 1);
  const scenario::scenario_result b = scenario::run_scenario(cfg, 2);
  EXPECT_NE(a.tick_log, b.tick_log);
}

TEST(Scenario, FaultInjectedRunIsDeterministicToo) {
  const scenario::scenario_config cfg = scenario::make_scenario("fault_storm");
  const scenario::scenario_result a = scenario::run_scenario(cfg, 9);
  const scenario::scenario_result b = scenario::run_scenario(cfg, 9);
  ASSERT_TRUE(a.passed);
  EXPECT_EQ(a.tick_log, b.tick_log);
}

// ---- the full catalogue stays green ---------------------------------------

TEST(Scenario, EveryNamedScenarioPasses) {
  for (const std::string& name : scenario::scenario_names()) {
    const scenario::scenario_result res =
        scenario::run_scenario(scenario::make_scenario(name), 1234);
    EXPECT_TRUE(res.passed) << name << ": "
                            << (res.violations.empty()
                                    ? "?"
                                    : scenario::to_string(res.violations.front()));
    EXPECT_FALSE(res.tick_log.empty()) << name;
  }
}

TEST(Scenario, UnknownNameThrows) {
  EXPECT_THROW(scenario::make_scenario("no_such_scenario"),
               std::invalid_argument);
}

// ---- crash-recovery regression --------------------------------------------
// An interrupted run (kill + persist + restore at tick 20) must end in the
// same published state as the identical run without the restart: the final
// sorted ESTB dump compares byte-for-byte.

TEST(Scenario, RestartMidStormServesBitEqualEstimates) {
  const scenario::scenario_config interrupted =
      scenario::make_scenario("restart_mid_storm");
  scenario::scenario_config uninterrupted = interrupted;
  uninterrupted.stress.restart_tick.reset();

  const scenario::scenario_result a =
      scenario::run_scenario(interrupted, 2024);
  const scenario::scenario_result b =
      scenario::run_scenario(uninterrupted, 2024);
  ASSERT_TRUE(a.passed) << scenario::to_string(a.violations.front());
  ASSERT_TRUE(b.passed);
  EXPECT_FALSE(a.final_estb.empty());
  EXPECT_EQ(a.final_estb, b.final_estb);
}

// ---- leader-failover regression -------------------------------------------
// A replicated run that loses its leader kill -9 style at tick 20 (no
// flush, no snapshot) must fail over to the follower and still end in the
// same published state as the identical run with no replication at all:
// epoch-stream replication plus client-assisted replay rebuilds the dead
// leader's state bit-for-bit.

TEST(Scenario, LeaderKillFailsOverToBitEqualEstimates) {
  const scenario::scenario_config interrupted =
      scenario::make_scenario("leader_kill");
  scenario::scenario_config uninterrupted = interrupted;
  uninterrupted.stress.replicate = false;
  uninterrupted.stress.kill_leader_tick.reset();
  uninterrupted.stress.faults.clear();

  const scenario::scenario_result a =
      scenario::run_scenario(interrupted, 2024);
  const scenario::scenario_result b =
      scenario::run_scenario(uninterrupted, 2024);
  ASSERT_TRUE(a.passed) << scenario::to_string(a.violations.front());
  ASSERT_TRUE(b.passed);
  EXPECT_FALSE(a.final_estb.empty());
  EXPECT_EQ(a.final_estb, b.final_estb);
}

TEST(Scenario, LeaderKillTickLogIsDeterministicAndRecordsPromotion) {
  const scenario::scenario_config cfg = scenario::make_scenario("leader_kill");
  const scenario::scenario_result a = scenario::run_scenario(cfg, 7);
  const scenario::scenario_result b = scenario::run_scenario(cfg, 7);
  ASSERT_TRUE(a.passed) << scenario::to_string(a.violations.front());
  EXPECT_EQ(a.tick_log, b.tick_log);
  // The repl= field flips its promoted flag at the kill tick.
  EXPECT_NE(a.tick_log.find(" repl="), std::string::npos);
  EXPECT_NE(a.tick_log.find("/1\n"), std::string::npos);
}

TEST(Scenario, ReplicateRefusesRestartCombination) {
  scenario::scenario_config cfg = scenario::make_scenario("leader_kill");
  cfg.stress.restart_tick = 10;
  EXPECT_THROW(scenario::run_scenario(cfg, 1), std::invalid_argument);
}

// ---- a deliberately broken run is caught, with tick and seed --------------

TEST(Scenario, SabotagedAccountingIsCaughtWithTickAndSeed) {
  scenario::scenario_config cfg = scenario::make_scenario("baseline");
  cfg.ticks = 12;
  cfg.stress.sabotage_tick = 9;
  const scenario::scenario_result res = scenario::run_scenario(cfg, 77);
  ASSERT_FALSE(res.passed);
  ASSERT_FALSE(res.violations.empty());
  const scenario::violation& v = res.violations.front();
  EXPECT_EQ(v.invariant, "report_accounting");
  EXPECT_EQ(v.tick, 9u);
  EXPECT_EQ(v.seed, 77u);
  const std::string msg = scenario::to_string(v);
  EXPECT_NE(msg.find("tick=9"), std::string::npos);
  EXPECT_NE(msg.find("seed=77"), std::string::npos);
}

// ---- invariant checkers red on broken inputs ------------------------------

TEST(Invariants, ReportAccountingCatchesVanishedRecord) {
  scenario::tick_accounting a;
  a.submitted = 10;
  a.acked = 9;  // one record vanished at the wire
  a.accepted_delta = 9;
  ASSERT_TRUE(scenario::check_report_accounting(a).has_value());
}

TEST(Invariants, ReportAccountingCatchesMissingPipelineCounter) {
  scenario::tick_accounting a;
  a.submitted = 10;
  a.acked = 10;
  a.accepted_delta = 8;  // two acked records hit no counter
  ASSERT_TRUE(scenario::check_report_accounting(a).has_value());
}

TEST(Invariants, ReportAccountingCatchesApplyError) {
  scenario::tick_accounting a;
  a.submitted = 4;
  a.acked = 4;
  a.accepted_delta = 4;
  a.apply_errors_delta = 1;
  ASSERT_TRUE(scenario::check_report_accounting(a).has_value());
}

TEST(Invariants, ReportAccountingHoldsWithPartialShardFailure) {
  // A REPORTB that partially applied before a shard's push failed: the
  // frame erred at the wire, but its records account through accepted +
  // dropped -- that is the identity, not a violation.
  scenario::tick_accounting a;
  a.submitted = 32;
  a.erred = 32;
  a.accepted_delta = 20;
  a.dropped_delta = 12;
  EXPECT_FALSE(scenario::check_report_accounting(a).has_value());
}

TEST(Invariants, ReportAccountingIgnoresRefusedRecords) {
  // A whole frame refused before dispatch never reaches the pipeline.
  scenario::tick_accounting a;
  a.submitted = 32;
  a.erred = 32;
  a.refused = 32;
  EXPECT_FALSE(scenario::check_report_accounting(a).has_value());
}

TEST(Invariants, AlertAccountingCatchesLeakedAlert) {
  scenario::alert_ledger l;
  l.served_total = 5;
  l.dropped_total = 1;
  l.cursor = 7;  // one push unaccounted
  l.pushed = 10;
  ASSERT_TRUE(scenario::check_alert_accounting(l).has_value());
}

TEST(Invariants, AlertAccountingCatchesCursorBeyondPushed) {
  scenario::alert_ledger l;
  l.served_total = 11;
  l.cursor = 11;
  l.pushed = 10;
  ASSERT_TRUE(scenario::check_alert_accounting(l).has_value());
}

TEST(Invariants, AlertAccountingCatchesUndrainedTeardown) {
  scenario::alert_ledger l;
  l.served_total = 8;
  l.cursor = 8;
  l.pushed = 10;
  l.fully_drained = true;
  ASSERT_TRUE(scenario::check_alert_accounting(l).has_value());
  l.fully_drained = false;
  EXPECT_FALSE(scenario::check_alert_accounting(l).has_value());
}

TEST(Invariants, StalenessCatchesStalledRollover) {
  scenario::staleness_probe p;
  p.latest_epoch_start_s = 0.0;
  p.last_sample_s = 2000.0;
  p.epoch_s = 300.0;
  p.slack_s = 60.0;
  ASSERT_TRUE(scenario::check_staleness(p).has_value());
  p.latest_epoch_start_s = 1500.0;
  EXPECT_FALSE(scenario::check_staleness(p).has_value());
}

TEST(Invariants, MonotoneCatchesDecreaseAndDisappearance) {
  using obs::metric_sample;
  const std::vector<metric_sample> prev = {
      {"a.count", 5.0, true, true},
      {"b.gauge", 9.0, true, false},
  };
  // Decrease of a monotone sample.
  std::vector<metric_sample> cur = {
      {"a.count", 4.0, true, true},
      {"b.gauge", 1.0, true, false},
  };
  ASSERT_TRUE(scenario::check_counter_monotone(prev, cur).has_value());
  // Disappearance of a monotone sample.
  cur = {{"b.gauge", 1.0, true, false}};
  ASSERT_TRUE(scenario::check_counter_monotone(prev, cur).has_value());
  // A shrinking gauge and a brand-new counter are both fine.
  cur = {{"a.count", 5.0, true, true},
         {"b.gauge", 0.0, true, false},
         {"c.count", 1.0, true, true}};
  EXPECT_FALSE(scenario::check_counter_monotone(prev, cur).has_value());
}

// ---- injector semantics ----------------------------------------------------

TEST(Injector, AfterAndCountWindowTheSchedule) {
  scenario::injector inj(1);
  inj.add_rule({core::fault::site::queue_push, /*after=*/3, /*count=*/2, 1.0,
                core::fault::action::fail});
  int failed = 0;
  for (int i = 0; i < 10; ++i) {
    if (inj.on(core::fault::site::queue_push) == core::fault::action::fail) {
      ++failed;
      // Fires exactly on the 4th and 5th invocations.
      EXPECT_TRUE(i == 3 || i == 4) << i;
    }
  }
  EXPECT_EQ(failed, 2);
  EXPECT_EQ(inj.seen(core::fault::site::queue_push), 10u);
  EXPECT_EQ(inj.fired(core::fault::site::queue_push), 2u);
  // Other sites are untouched.
  EXPECT_EQ(inj.on(core::fault::site::server_handle),
            core::fault::action::proceed);
}

TEST(Injector, ProbabilisticScheduleIsAFunctionOfSeedAndOrdinal) {
  auto schedule = [](std::uint64_t seed) {
    scenario::injector inj(seed);
    inj.add_rule({core::fault::site::server_handle, 0,
                  std::numeric_limits<std::uint64_t>::max(), 0.3,
                  core::fault::action::fail});
    std::string bits;
    for (int i = 0; i < 200; ++i) {
      bits += inj.on(core::fault::site::server_handle) ==
                      core::fault::action::fail
                  ? '1'
                  : '0';
    }
    return bits;
  };
  const std::string a = schedule(5);
  EXPECT_EQ(a, schedule(5));      // same seed: same schedule
  EXPECT_NE(a, schedule(6));      // different seed: different schedule
  EXPECT_NE(a.find('1'), std::string::npos);  // p=0.3 over 200: some fire
  EXPECT_NE(a.find('0'), std::string::npos);
}

TEST(Injector, RuleCapacityIsEnforced) {
  scenario::injector inj(1);
  for (int i = 0; i < 16; ++i) {
    inj.add_rule({core::fault::site::queue_push, 0, 1, 1.0,
                  core::fault::action::fail});
  }
  EXPECT_THROW(inj.add_rule({core::fault::site::queue_push, 0, 1, 1.0,
                             core::fault::action::fail}),
               std::length_error);
}

TEST(Injector, ArmScopeRestoresPreviousHook) {
  scenario::injector outer(1);
  outer.add_rule({core::fault::site::queue_push, 0,
                  std::numeric_limits<std::uint64_t>::max(), 1.0,
                  core::fault::action::fail});
  scenario::arm_scope armed(outer);
  EXPECT_EQ(core::fault::fire(core::fault::site::queue_push),
            core::fault::action::fail);
  {
    scenario::injector inner(2);  // no rules: everything proceeds
    scenario::arm_scope nested(inner);
    EXPECT_EQ(core::fault::fire(core::fault::site::queue_push),
              core::fault::action::proceed);
  }
  EXPECT_EQ(core::fault::fire(core::fault::site::queue_push),
            core::fault::action::fail);
}

// ---- persist_save fault refuses the snapshot -------------------------------

TEST(Injector, PersistSaveFaultRefusesSnapshot) {
  geo::projection proj(geo::lat_lon{43.0, -89.4});
  geo::zone_grid grid(proj, 250.0);
  core::sharded_coordinator coord(grid, {"NetB"}, {}, 1);

  scenario::injector inj(1);
  inj.add_rule({core::fault::site::persist_save, 0, 1, 1.0,
                core::fault::action::fail});
  scenario::arm_scope armed(inj);

  std::ostringstream first;
  EXPECT_THROW(core::save_coordinator_state(first, coord),
               std::runtime_error);
  EXPECT_TRUE(first.str().empty());  // refused before writing anything
  // The rule's budget is spent: the retry succeeds.
  std::ostringstream second;
  core::save_coordinator_state(second, coord);
  EXPECT_FALSE(second.str().empty());
}

// ---- alert_ring resume ------------------------------------------------------

TEST(AlertRing, ResumeFromContinuesSequenceNumbers) {
  core::alert_ring ring(8);
  ring.resume_from(41);
  EXPECT_EQ(ring.pushed(), 41u);
  ring.push({});
  const auto drain = ring.drain_since(0, 16);
  ASSERT_EQ(drain.alerts.size(), 1u);
  EXPECT_EQ(drain.alerts.front().seq, 42u);
  // Everything before the resume point is reported dropped, not lost.
  EXPECT_EQ(drain.dropped, 41u);
  EXPECT_EQ(drain.next_seq, 42u);
}

TEST(AlertRing, ResumeFromRequiresFreshRing) {
  core::alert_ring ring(8);
  ring.push({});
  EXPECT_THROW(ring.resume_from(10), std::logic_error);
}

}  // namespace

#include <gtest/gtest.h>

#include <sstream>

#include "cellnet/presets.h"
#include "geo/zone_grid.h"
#include "test_util.h"
#include "trace/csv.h"
#include "trace/dataset.h"
#include "trace/record.h"

namespace wiscape::trace {
namespace {

const geo::lat_lon here = cellnet::anchors::madison;

TEST(Record, KindStringsRoundTrip) {
  for (probe_kind k : {probe_kind::tcp_download, probe_kind::udp_burst,
                       probe_kind::ping, probe_kind::udp_uplink}) {
    EXPECT_EQ(probe_kind_from_string(to_string(k)), k);
  }
  EXPECT_THROW(probe_kind_from_string("warp"), std::invalid_argument);
}

TEST(Record, KindForMapsMetricsToProbes) {
  EXPECT_EQ(kind_for(metric::tcp_throughput_bps), probe_kind::tcp_download);
  EXPECT_EQ(kind_for(metric::udp_throughput_bps), probe_kind::udp_burst);
  EXPECT_EQ(kind_for(metric::loss_rate), probe_kind::udp_burst);
  EXPECT_EQ(kind_for(metric::jitter_s), probe_kind::udp_burst);
  EXPECT_EQ(kind_for(metric::rtt_s), probe_kind::ping);
}

TEST(Record, ValueOfChecksKind) {
  measurement_record r;
  r.kind = probe_kind::udp_burst;
  r.throughput_bps = 1e6;
  r.jitter_s = 0.003;
  EXPECT_DOUBLE_EQ(value_of(r, metric::udp_throughput_bps), 1e6);
  EXPECT_DOUBLE_EQ(value_of(r, metric::jitter_s), 0.003);
  EXPECT_DOUBLE_EQ(value_of(r, metric::tcp_throughput_bps), 0.0);  // mismatch
}

TEST(Dataset, SelectFiltersNetworkKindSuccess) {
  dataset ds;
  ds.add(testing::make_record(0.0, "NetB", here, probe_kind::tcp_download, 1e6));
  ds.add(testing::make_record(1.0, "NetC", here, probe_kind::tcp_download, 2e6));
  ds.add(testing::make_record(2.0, "NetB", here, probe_kind::udp_burst, 3e6));
  auto failed =
      testing::make_record(3.0, "NetB", here, probe_kind::tcp_download, 4e6);
  failed.success = false;
  ds.add(failed);

  EXPECT_EQ(ds.select("NetB", probe_kind::tcp_download).size(), 1u);
  EXPECT_EQ(ds.select("", probe_kind::tcp_download).size(), 2u);
}

TEST(Dataset, BetweenIsHalfOpen) {
  dataset ds;
  for (int i = 0; i < 5; ++i) {
    ds.add(testing::make_record(i, "NetB", here, probe_kind::ping, 0.1));
  }
  EXPECT_EQ(ds.between(1.0, 4.0).size(), 3u);
}

TEST(Dataset, MetricValuesAndSeries) {
  dataset ds;
  ds.add(testing::make_record(0.0, "NetB", here, probe_kind::tcp_download, 1e6));
  ds.add(testing::make_record(5.0, "NetB", here, probe_kind::tcp_download, 2e6));
  ds.add(testing::make_record(9.0, "NetC", here, probe_kind::tcp_download, 9e6));
  const auto values = ds.metric_values(metric::tcp_throughput_bps, "NetB");
  EXPECT_EQ(values, (std::vector<double>{1e6, 2e6}));
  const auto series = ds.metric_series(metric::tcp_throughput_bps);
  EXPECT_EQ(series.size(), 3u);
}

TEST(Dataset, GroupByZoneSeparatesDistantRecords) {
  const geo::zone_grid grid(geo::projection(here), 250.0);
  dataset ds;
  ds.add(testing::make_record(0.0, "NetB", here, probe_kind::tcp_download, 1e6));
  ds.add(testing::make_record(1.0, "NetB", geo::destination(here, 90.0, 5000.0),
                              probe_kind::tcp_download, 2e6));
  const auto groups = ds.group_by_zone(grid);
  EXPECT_EQ(groups.size(), 2u);
}

TEST(Dataset, ZoneMetricValuesHonoursMinSamples) {
  const geo::zone_grid grid(geo::projection(here), 250.0);
  dataset ds;
  for (int i = 0; i < 5; ++i) {
    ds.add(
        testing::make_record(i, "NetB", here, probe_kind::tcp_download, 1e6));
  }
  ds.add(testing::make_record(9.0, "NetB", geo::destination(here, 0.0, 9000.0),
                              probe_kind::tcp_download, 2e6));
  EXPECT_EQ(ds.zone_metric_values(grid, metric::tcp_throughput_bps, "NetB", 3)
                .size(),
            1u);
  EXPECT_EQ(ds.zone_metric_values(grid, metric::tcp_throughput_bps, "NetB", 1)
                .size(),
            2u);
}

TEST(Dataset, AppendConcatenates) {
  dataset a, b;
  a.add(testing::make_record(0.0, "NetB", here, probe_kind::ping, 0.1));
  b.add(testing::make_record(1.0, "NetB", here, probe_kind::ping, 0.2));
  a.append(b);
  EXPECT_EQ(a.size(), 2u);
}

TEST(Csv, RecordRoundTrip) {
  measurement_record r;
  r.time_s = 1234.567;
  r.network = "NetA";
  r.pos = here;
  r.speed_mps = 13.42;
  r.kind = probe_kind::udp_burst;
  r.success = true;
  r.throughput_bps = 987654.3;
  r.loss_rate = 0.0123;
  r.jitter_s = 0.0034;
  r.rtt_s = 0.121;
  r.ping_sent = 0;
  r.ping_failures = 0;

  const auto back = from_csv(to_csv(r));
  EXPECT_NEAR(back.time_s, r.time_s, 1e-3);
  EXPECT_EQ(back.network, r.network);
  EXPECT_NEAR(back.pos.lat_deg, r.pos.lat_deg, 1e-6);
  EXPECT_EQ(back.kind, r.kind);
  EXPECT_EQ(back.success, r.success);
  EXPECT_NEAR(back.throughput_bps, r.throughput_bps, 0.1);
  EXPECT_NEAR(back.loss_rate, r.loss_rate, 1e-6);
  EXPECT_NEAR(back.jitter_s, r.jitter_s, 1e-6);
}

TEST(Csv, DatasetStreamRoundTrip) {
  dataset ds;
  for (int i = 0; i < 20; ++i) {
    ds.add(testing::make_record(i * 10.0, i % 2 ? "NetB" : "NetC", here,
                                probe_kind::tcp_download, 1e6 + i));
  }
  std::stringstream ss;
  write_csv(ss, ds);
  const dataset back = read_csv(ss);
  ASSERT_EQ(back.size(), ds.size());
  EXPECT_EQ(back.records()[7].network, ds.records()[7].network);
  EXPECT_NEAR(back.records()[7].throughput_bps,
              ds.records()[7].throughput_bps, 0.1);
}

TEST(Csv, RejectsMalformedInput) {
  EXPECT_THROW(from_csv("too,few,fields"), std::invalid_argument);
  EXPECT_THROW(from_csv("a,b,c,d,e,f,g,h,i,j,k,l,m,n,o,p,q"), std::invalid_argument);
  std::stringstream empty;
  EXPECT_THROW(read_csv(empty), std::invalid_argument);
  std::stringstream bad_header("not,the,header\n");
  EXPECT_THROW(read_csv(bad_header), std::invalid_argument);
}

TEST(Csv, FileRoundTripAndMissingFile) {
  dataset ds;
  ds.add(testing::make_record(1.0, "NetB", here, probe_kind::ping, 0.11));
  const std::string path = ::testing::TempDir() + "/wiscape_csv_test.csv";
  write_csv_file(path, ds);
  const dataset back = read_csv_file(path);
  EXPECT_EQ(back.size(), 1u);
  EXPECT_THROW(read_csv_file("/nonexistent/dir/file.csv"), std::runtime_error);
}

TEST(Csv, SkipsBlankLines) {
  std::stringstream ss(csv_header() + "\n\n" +
                       to_csv(testing::make_record(1.0, "NetB", here,
                                                   probe_kind::ping, 0.1)) +
                       "\n\n");
  EXPECT_EQ(read_csv(ss).size(), 1u);
}

}  // namespace
}  // namespace wiscape::trace

// Serving-layer promises (ISSUE 5):
//  * estimate_view serves, bit-for-bit, the estimates the zone table froze
//    -- over a sequential coordinator and over the sharded pipeline;
//  * the sharded read path is snapshot-consistent under a concurrent query
//    storm: every returned triple equals some prefix-consistent sequential
//    state of its stream (no torn values), keyed by epoch_index;
//  * alert draining is monotone by sequence number and never loses an alert
//    silently, even when ring wraparound evicts alerts under a lagging
//    cursor (served + dropped accounts for everything pushed);
//  * estimate_knowledge reproduces the decisions of the frozen direct-read
//    path, so apps moved onto the facade keep their behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "apps/estimate_knowledge.h"
#include "core/alert_ring.h"
#include "core/coordinator.h"
#include "core/estimate_mirror.h"
#include "core/estimate_view.h"
#include "core/sharded_coordinator.h"
#include "test_util.h"

namespace wiscape::core {
namespace {

geo::projection test_proj() {
  return geo::projection(cellnet::anchors::madison);
}

// Same seeded synthetic fleet idiom the sharded equivalence tests use: a
// 5x5 zone neighbourhood, two networks, all probe kinds, a mid-stream mean
// shift so rollovers raise change alerts.
std::vector<trace::measurement_record> synthetic_stream(std::uint64_t seed,
                                                        std::size_t count) {
  stats::rng_stream rng(seed);
  const geo::projection proj = test_proj();
  std::vector<trace::measurement_record> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double t = 1000.0 + static_cast<double>(i) * 2.0;
    const double cell = 443.0;
    const geo::xy pos_xy{cell * static_cast<double>(rng.uniform_int(-2, 2)),
                         cell * static_cast<double>(rng.uniform_int(-2, 2))};
    const char* net = rng.chance(0.5) ? "NetB" : "NetC";
    const auto kind = static_cast<trace::probe_kind>(rng.uniform_int(0, 3));
    const double base = kind == trace::probe_kind::ping ? 0.12 : 1.5e6;
    const double level = i < count / 2 ? base : base * 3.0;
    const double value = level * (1.0 + 0.05 * rng.normal());
    auto rec = testing::make_record(t, net, proj.to_lat_lon(pos_xy), kind,
                                    std::abs(value));
    rec.client_id = 1 + (i % 7);
    out.push_back(rec);
  }
  return out;
}

coordinator_config small_epoch_config() {
  coordinator_config cfg;
  cfg.epochs.default_epoch_s = 120.0;
  cfg.default_samples_per_epoch = 10;
  return cfg;
}

change_alert nth_alert(int n) {
  change_alert a;
  a.key = estimate_key{geo::zone_id{n, -n}, "NetB",
                       trace::metric::tcp_throughput_bps};
  a.epoch_start_s = 100.0 * n;
  a.previous_mean = 1.0 * n;
  a.new_mean = 2.0 * n;
  a.previous_stddev = 0.5 * n;
  return a;
}

TEST(AlertRing, SequencesStartAtOneAndDrainInOrder) {
  alert_ring ring(8);
  EXPECT_EQ(ring.pushed(), 0u);
  const auto empty = ring.drain_since(0);
  EXPECT_TRUE(empty.alerts.empty());
  EXPECT_EQ(empty.next_seq, 0u);
  EXPECT_EQ(empty.dropped, 0u);

  for (int i = 1; i <= 5; ++i) ring.push(nth_alert(i));
  EXPECT_EQ(ring.pushed(), 5u);

  const auto all = ring.drain_since(0);
  ASSERT_EQ(all.alerts.size(), 5u);
  EXPECT_EQ(all.dropped, 0u);
  EXPECT_EQ(all.next_seq, 5u);
  for (std::size_t i = 0; i < all.alerts.size(); ++i) {
    EXPECT_EQ(all.alerts[i].seq, i + 1);
    EXPECT_EQ(all.alerts[i].alert.new_mean, 2.0 * static_cast<double>(i + 1));
  }

  // Cursor semantics: draining from the returned cursor yields nothing new.
  const auto again = ring.drain_since(all.next_seq);
  EXPECT_TRUE(again.alerts.empty());
  EXPECT_EQ(again.next_seq, 5u);
}

TEST(AlertRing, MaxTruncationKeepsCursorResumable) {
  alert_ring ring(16);
  for (int i = 1; i <= 7; ++i) ring.push(nth_alert(i));

  std::uint64_t cursor = 0;
  std::vector<std::uint64_t> seen;
  for (int round = 0; round < 10 && cursor < 7; ++round) {
    const auto d = ring.drain_since(cursor, /*max=*/2);
    EXPECT_LE(d.alerts.size(), 2u);
    EXPECT_EQ(d.dropped, 0u);
    for (const auto& a : d.alerts) seen.push_back(a.seq);
    cursor = d.next_seq;
  }
  ASSERT_EQ(seen.size(), 7u);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i + 1);
}

TEST(AlertRing, WraparoundAccountsDroppedExactly) {
  alert_ring ring(4);
  for (int i = 1; i <= 10; ++i) ring.push(nth_alert(i));
  EXPECT_EQ(ring.pushed(), 10u);

  // A reader whose cursor predates the ring only gets the surviving tail,
  // but learns exactly how many it lost.
  const auto d = ring.drain_since(0);
  ASSERT_EQ(d.alerts.size(), 4u);
  EXPECT_EQ(d.dropped, 6u);
  EXPECT_EQ(d.alerts.front().seq, 7u);
  EXPECT_EQ(d.alerts.back().seq, 10u);
  EXPECT_EQ(d.alerts.size() + d.dropped, ring.pushed());

  // A reader only slightly behind loses only what was really evicted.
  const auto d2 = ring.drain_since(5);
  ASSERT_EQ(d2.alerts.size(), 4u);
  EXPECT_EQ(d2.dropped, 1u);  // seq 6 evicted; 7..10 survive
}

TEST(EstimateMirror, PublishReadRoundTripAndGrowth) {
  estimate_mirror mirror;
  epoch_estimate e;
  e.epoch_start_s = 42.0;
  e.mean = 3.14;
  e.stddev = 0.7;
  e.samples = 9;

  // Unknown / invalid keys answer not-found, never garbage.
  published_estimate out;
  EXPECT_FALSE(mirror.read(0x8000000000000001ull, out));
  EXPECT_FALSE(mirror.read(0, out));
  mirror.publish(0, e, 0);  // invalid key: ignored, not stored
  EXPECT_EQ(mirror.size(), 0u);

  // Enough streams to force several directory growths.
  const std::size_t streams = 300;
  for (std::size_t i = 0; i < streams; ++i) {
    const std::uint64_t key = (1ull << 63) | (i + 1);
    epoch_estimate ei = e;
    ei.mean = static_cast<double>(i);
    ei.samples = i + 1;
    mirror.publish(key, ei, /*epoch_index=*/i % 5);
  }
  EXPECT_EQ(mirror.size(), streams);
  for (std::size_t i = 0; i < streams; ++i) {
    const std::uint64_t key = (1ull << 63) | (i + 1);
    ASSERT_TRUE(mirror.read(key, out)) << i;
    EXPECT_EQ(out.mean, static_cast<double>(i));
    EXPECT_EQ(out.count, i + 1);
    EXPECT_EQ(out.epoch_index, i % 5);
    EXPECT_EQ(out.epoch_start_s, 42.0);
    EXPECT_EQ(out.stddev, 0.7);
  }

  // Republish overwrites in place (same stream, next epoch).
  epoch_estimate e2 = e;
  e2.mean = 99.0;
  mirror.publish((1ull << 63) | 1, e2, 7);
  ASSERT_TRUE(mirror.read((1ull << 63) | 1, out));
  EXPECT_EQ(out.mean, 99.0);
  EXPECT_EQ(out.epoch_index, 7u);
  EXPECT_EQ(mirror.size(), streams);
}

TEST(EstimateView, ServesExactlyWhatTheTableFroze) {
  const geo::zone_grid grid(test_proj(), 250.0);
  const std::vector<std::string> nets{"NetB", "NetC"};
  coordinator coord(grid, nets, small_epoch_config(), /*seed=*/42);
  const estimate_view view(coord);

  // Nothing published yet: every lookup is a miss.
  EXPECT_FALSE(view.lookup(geo::zone_id{0, 0}, "NetB",
                           trace::metric::tcp_throughput_bps));

  for (const auto& rec : synthetic_stream(/*seed=*/9, /*count=*/4000)) {
    coord.report(rec);
  }

  const auto keys = coord.keys();
  ASSERT_FALSE(keys.empty());
  std::size_t published = 0;
  for (const auto& key : keys) {
    const auto want = coord.table_for_test().latest(key);
    const auto got = view.lookup(key.zone, key.network, key.metric);
    ASSERT_EQ(want.has_value(), got.has_value()) << key.network;
    if (!want) continue;
    ++published;
    // Bit-for-bit: the mirror republishes the exact frozen doubles.
    EXPECT_EQ(got->mean, want->mean);
    EXPECT_EQ(got->stddev, want->stddev);
    EXPECT_EQ(got->epoch_start_s, want->epoch_start_s);
    EXPECT_EQ(got->count, static_cast<std::uint64_t>(want->samples));
    const auto hist = coord.table_for_test().history(key);
    EXPECT_EQ(got->epoch_index, hist.size() - 1);
    // Serving context: confidence is the paper's ~100-sample ratio,
    // staleness prices the caller's clock.
    EXPECT_EQ(got->confidence,
              std::min(1.0, static_cast<double>(want->samples) / 100.0));
    EXPECT_EQ(got->staleness_s, -1.0);  // no clock passed
    const auto timed =
        view.lookup(key.zone, key.network, key.metric,
                    want->epoch_start_s + 30.0);
    ASSERT_TRUE(timed.has_value());
    EXPECT_EQ(timed->staleness_s, 30.0);
  }
  EXPECT_GT(published, 0u);

  // Unknown names and out-of-range zones answer not-found, never throw.
  EXPECT_FALSE(view.lookup(keys.front().zone, "NoSuchNet",
                           keys.front().metric));
  EXPECT_FALSE(view.lookup(geo::zone_id{1 << 24, 0}, "NetB",
                           trace::metric::tcp_throughput_bps));
}

TEST(EstimateView, SequentialAlertsMatchTableOrderWithSequences) {
  const geo::zone_grid grid(test_proj(), 250.0);
  const std::vector<std::string> nets{"NetB", "NetC"};
  coordinator_config cfg = small_epoch_config();
  cfg.alert_ring_capacity = 1 << 14;  // keep everything for the comparison
  coordinator coord(grid, nets, cfg, /*seed=*/42);
  const estimate_view view(coord);

  for (const auto& rec : synthetic_stream(/*seed=*/21, /*count=*/4000)) {
    coord.report(rec);
  }
  const auto& table_alerts = coord.alerts();
  ASSERT_FALSE(table_alerts.empty());

  const auto drained = view.alerts_since(0, table_alerts.size() + 10);
  ASSERT_EQ(drained.alerts.size(), table_alerts.size());
  EXPECT_EQ(drained.dropped, 0u);
  for (std::size_t i = 0; i < table_alerts.size(); ++i) {
    EXPECT_EQ(drained.alerts[i].seq, i + 1);
    EXPECT_EQ(drained.alerts[i].alert.key, table_alerts[i].key);
    EXPECT_EQ(drained.alerts[i].alert.new_mean, table_alerts[i].new_mean);
    EXPECT_EQ(drained.alerts[i].alert.previous_mean,
              table_alerts[i].previous_mean);
  }
}

// The concurrent property (ISSUE 5 acceptance): a randomized QUERY storm
// against a 4-shard ingest must only ever observe prefix-consistent
// sequential states -- every (count, mean, stddev, epoch_start) returned
// matches the sequential reference at the returned epoch_index, bit for
// bit. A torn read (fields from two different epochs) cannot satisfy that.
TEST(EstimateView, ShardedQueryStormIsPrefixConsistent) {
  const auto stream = synthetic_stream(/*seed=*/133, /*count=*/12000);
  const geo::zone_grid grid(test_proj(), 250.0);
  const std::vector<std::string> nets{"NetB", "NetC"};
  const coordinator_config ccfg = small_epoch_config();

  // Sequential reference: per stream, the exact frozen history. Per-stream
  // history depends only on that stream's samples in order, and shard
  // routing preserves per-zone order, so it is interleaving-independent.
  coordinator seq(grid, nets, ccfg, /*seed=*/42);
  for (const auto& rec : stream) seq.report(rec);
  struct ref_stream {
    geo::zone_id zone;
    std::uint16_t network_id;
    trace::metric metric;
    std::vector<epoch_estimate> history;
  };
  std::vector<ref_stream> refs;
  for (const auto& key : seq.keys()) {
    refs.push_back({key.zone, seq.network_id_of(key.network), key.metric,
                    seq.table_for_test().history(key)});
  }
  ASSERT_FALSE(refs.empty());

  sharded_config scfg;
  scfg.coordinator = ccfg;
  scfg.num_shards = 4;
  scfg.synchronous = false;
  sharded_coordinator sharded(grid, nets, scfg, /*seed=*/42);
  const estimate_view view(sharded);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> violations{0};
  const auto consistent = [&](const ref_stream& r,
                              const served_estimate& got) {
    if (got.epoch_index >= r.history.size()) return false;
    const auto& want = r.history[got.epoch_index];
    return got.mean == want.mean && got.stddev == want.stddev &&
           got.epoch_start_s == want.epoch_start_s &&
           got.count == static_cast<std::uint64_t>(want.samples);
  };

  std::vector<std::thread> readers;
  for (int tid = 0; tid < 4; ++tid) {
    readers.emplace_back([&, tid] {
      stats::rng_stream rng(900 + tid);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto& r = refs[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(refs.size()) - 1))];
        const auto got = view.lookup(r.zone, r.network_id, r.metric);
        if (!got) continue;  // not yet published: a valid prefix state
        hits.fetch_add(1, std::memory_order_relaxed);
        if (!consistent(r, *got)) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (const auto& rec : stream) ASSERT_TRUE(sharded.report(rec));
  sharded.flush();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(hits.load(), 0u) << "storm never observed a published estimate";

  // After the flush the view serves exactly the final sequential state.
  for (const auto& r : refs) {
    const auto got = view.lookup(r.zone, r.network_id, r.metric);
    if (r.history.empty()) {
      EXPECT_FALSE(got.has_value());
      continue;
    }
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->epoch_index, r.history.size() - 1);
    EXPECT_TRUE(consistent(r, *got));
  }
}

TEST(EstimateView, ShardedAlertDrainIsMonotoneAndAccountsLosses) {
  const auto stream = synthetic_stream(/*seed=*/55, /*count=*/12000);
  const geo::zone_grid grid(test_proj(), 250.0);
  const std::vector<std::string> nets{"NetB", "NetC"};

  sharded_config scfg;
  scfg.coordinator = small_epoch_config();
  // A deliberately tiny ring so the storm forces wraparound while the
  // drainer lags: losses must be visible, not silent.
  scfg.coordinator.alert_ring_capacity = 8;
  scfg.num_shards = 4;
  scfg.synchronous = false;
  sharded_coordinator sharded(grid, nets, scfg, /*seed=*/42);
  const estimate_view view(sharded);

  std::atomic<bool> stop{false};
  std::uint64_t served = 0, dropped = 0, last_seq = 0;
  bool monotone = true;
  std::thread drainer([&] {
    std::uint64_t cursor = 0;
    while (true) {
      const bool final_round = stop.load(std::memory_order_relaxed);
      const auto d = view.alerts_since(cursor, /*max=*/3);
      for (const auto& a : d.alerts) {
        if (a.seq <= last_seq) monotone = false;
        last_seq = a.seq;
      }
      served += d.alerts.size();
      dropped += d.dropped;
      cursor = d.next_seq;
      if (final_round && d.alerts.empty()) break;
      std::this_thread::yield();
    }
  });

  for (const auto& rec : stream) ASSERT_TRUE(sharded.report(rec));
  sharded.flush();
  stop.store(true, std::memory_order_relaxed);
  drainer.join();

  const std::uint64_t pushed = sharded.alert_sink().pushed();
  ASSERT_GT(pushed, 8u) << "stream too tame to wrap the ring";
  EXPECT_TRUE(monotone) << "alert sequences went backwards across drains";
  // No-loss accounting: everything pushed was either served or reported
  // dropped -- the cursor protocol never loses an alert silently.
  EXPECT_EQ(served + dropped, pushed);
  EXPECT_EQ(last_seq, pushed);
}

// Equivalence freeze (ISSUE 5 acceptance): multihoming decisions through
// estimate_knowledge must reproduce, bit for bit, the decisions computed by
// the old direct zone_table read path. The reference below *is* that path,
// kept verbatim against table_for_test().
TEST(EstimateKnowledge, MatchesFrozenDirectReadDecisions) {
  const geo::zone_grid grid(test_proj(), 250.0);
  const std::vector<std::string> nets{"NetB", "NetC"};
  coordinator coord(grid, nets, small_epoch_config(), /*seed=*/42);
  // A dense TCP-only stream over a 3x3 zone block, so the decision grid
  // below sees all three regimes: zone estimates above the min-samples
  // gate, thin estimates falling back, and unmeasured zones.
  {
    stats::rng_stream rng(71);
    const geo::projection proj = test_proj();
    for (std::size_t i = 0; i < 6000; ++i) {
      const double cell = 443.0;
      const geo::xy pos_xy{cell * static_cast<double>(rng.uniform_int(-1, 1)),
                           cell * static_cast<double>(rng.uniform_int(-1, 1))};
      const char* net = rng.chance(0.5) ? "NetB" : "NetC";
      const double value =
          (net[3] == 'B' ? 1.5e6 : 2.5e6) * (1.0 + 0.2 * rng.normal());
      coord.report(testing::make_record(
          1000.0 + static_cast<double>(i), net, proj.to_lat_lon(pos_xy),
          trace::probe_kind::tcp_download, std::abs(value)));
    }
  }

  const std::size_t min_samples = 3;
  const core::estimate_view view(coord);
  const apps::estimate_knowledge knowledge(view, grid, nets, min_samples);

  // --- frozen reference: the pre-facade direct-read logic ---------------
  const auto& table = coord.table_for_test();
  std::vector<double> ref_global(nets.size(), 0.0);
  {
    std::vector<double> wsum(nets.size(), 0.0), w(nets.size(), 0.0);
    for (const auto& key : table.keys()) {
      if (key.metric != trace::metric::tcp_throughput_bps) continue;
      for (std::size_t n = 0; n < nets.size(); ++n) {
        if (key.network != nets[n]) continue;
        if (const auto est = table.latest(key); est && est->samples > 0) {
          wsum[n] += est->mean * static_cast<double>(est->samples);
          w[n] += static_cast<double>(est->samples);
        }
        break;
      }
    }
    for (std::size_t n = 0; n < nets.size(); ++n) {
      ref_global[n] = w[n] > 0.0 ? wsum[n] / w[n] : 0.0;
    }
  }
  const auto ref_expected = [&](std::size_t n, const geo::lat_lon& pos) {
    const auto est = table.latest(
        estimate_key{grid.zone_of(pos), nets[n],
                     trace::metric::tcp_throughput_bps});
    if (est && est->samples >= min_samples && est->mean > 0.0) {
      return est->mean;
    }
    return ref_global[n];
  };
  const auto ref_best = [&](const geo::lat_lon& pos) {
    std::size_t best = 0;
    double best_bps = ref_expected(0, pos);
    for (std::size_t n = 1; n < nets.size(); ++n) {
      const double bps = ref_expected(n, pos);
      if (bps > best_bps) {
        best_bps = bps;
        best = n;
      }
    }
    return best;
  };
  // ----------------------------------------------------------------------

  for (std::size_t n = 0; n < nets.size(); ++n) {
    EXPECT_EQ(knowledge.global_mean_bps(n), ref_global[n]) << nets[n];
  }

  const geo::projection proj = test_proj();
  std::size_t zone_hits = 0;
  for (double x = -1200.0; x <= 1200.0; x += 221.0) {
    for (double y = -1200.0; y <= 1200.0; y += 221.0) {
      const geo::lat_lon pos = proj.to_lat_lon({x, y});
      for (std::size_t n = 0; n < nets.size(); ++n) {
        const double want = ref_expected(n, pos);
        EXPECT_EQ(knowledge.expected_bps(n, pos), want) << x << "," << y;
        if (want != ref_global[n]) ++zone_hits;
      }
      EXPECT_EQ(knowledge.best_network(pos), ref_best(pos)) << x << "," << y;
    }
  }
  EXPECT_GT(zone_hits, 0u)
      << "grid never hit a published zone estimate; test is vacuous";
}

}  // namespace
}  // namespace wiscape::core

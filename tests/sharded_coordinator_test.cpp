// The sharded ingestion pipeline's two load-bearing promises (ISSUE 1):
//  * equivalence -- for any seeded report stream, the sharded coordinator
//    (any shard count, threaded drain) publishes bit-for-bit the estimates
//    and change alerts of the sequential coordinator;
//  * no lost reports -- a multi-threaded producer storm is fully ingested,
//    accounted by the server/pipeline counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <tuple>
#include <vector>

#include "core/coordinator.h"
#include "core/sharded_coordinator.h"
#include "proto/server.h"
#include "test_util.h"

namespace wiscape::core {
namespace {

geo::projection test_proj() {
  return geo::projection(cellnet::anchors::madison);
}

// A seeded synthetic fleet stream: reports scattered over a 5x5 zone
// neighbourhood, two networks, all probe kinds, with a mid-stream mean shift
// so epoch rollovers raise change alerts.
std::vector<trace::measurement_record> synthetic_stream(std::uint64_t seed,
                                                        std::size_t count) {
  stats::rng_stream rng(seed);
  const geo::projection proj = test_proj();
  std::vector<trace::measurement_record> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double t = 1000.0 + static_cast<double>(i) * 2.0;
    const double cell = 443.0;  // ~zone side for r=250m, keeps zones distinct
    const geo::xy pos_xy{cell * static_cast<double>(rng.uniform_int(-2, 2)),
                         cell * static_cast<double>(rng.uniform_int(-2, 2))};
    const char* net = rng.chance(0.5) ? "NetB" : "NetC";
    const auto kind = static_cast<trace::probe_kind>(rng.uniform_int(0, 3));
    const double base =
        kind == trace::probe_kind::ping ? 0.12 : 1.5e6;
    // Step change halfway through the stream: the second half's epochs land
    // far from the first half's, guaranteeing >2-sigma alerts.
    const double level = i < count / 2 ? base : base * 3.0;
    const double value = level * (1.0 + 0.05 * rng.normal());
    auto rec = testing::make_record(t, net, proj.to_lat_lon(pos_xy), kind,
                                    std::abs(value));
    rec.client_id = 1 + (i % 7);
    // Occasional failures exercise the success-filter path too.
    rec.success = !rng.chance(0.05);
    out.push_back(rec);
  }
  return out;
}

// Normalizes alert order the same way sharded_coordinator::alerts() does, so
// sequential output can be compared shard-interleaving-free.
std::vector<change_alert> normalized(std::vector<change_alert> alerts) {
  const auto order = [](const change_alert& a) {
    return std::make_tuple(a.epoch_start_s, a.key.zone.ix, a.key.zone.iy,
                           a.key.network, static_cast<int>(a.key.metric),
                           a.new_mean);
  };
  std::sort(alerts.begin(), alerts.end(),
            [&](const change_alert& a, const change_alert& b) {
              return order(a) < order(b);
            });
  return alerts;
}

coordinator_config small_epoch_config() {
  coordinator_config cfg;
  cfg.epochs.default_epoch_s = 120.0;  // many rollovers in a short stream
  cfg.default_samples_per_epoch = 10;
  return cfg;
}

bool same_key(const estimate_key& a, const estimate_key& b) {
  return a == b;
}

TEST(ShardedCoordinator, HostileRecordsDoNotKillDrainWorkers) {
  // Regression (review of ISSUE 4): a report with absurd coordinates (zone
  // outside the store's packed +/-2^23 cell range) used to throw inside a
  // drain worker, and an exception unwinding a worker thread terminates the
  // whole process. Hostile records must be rejected at apply time while the
  // pipeline keeps draining everything else.
  const geo::zone_grid grid(test_proj(), 250.0);
  const std::vector<std::string> nets{"NetB", "NetC"};
  sharded_config cfg;
  cfg.coordinator = small_epoch_config();
  cfg.num_shards = 4;
  cfg.synchronous = false;
  cfg.queue_capacity = 256;
  cfg.drain_batch = 32;
  sharded_coordinator sc(grid, nets, cfg, /*seed=*/42);

  const auto good = synthetic_stream(/*seed=*/5, /*count=*/600);
  std::uint64_t sent = 0;
  for (std::size_t i = 0; i < good.size(); ++i) {
    ASSERT_TRUE(sc.report(good[i]));
    ++sent;
    if (i % 10 == 0) {
      auto bad = good[i];
      bad.pos = geo::lat_lon{4e8, -4e8};  // far outside the packed range
      ASSERT_TRUE(sc.report(bad));  // queued, then rejected at apply
      ++sent;
    }
  }
  sc.flush();  // only returns if every drain worker survived
  EXPECT_EQ(sc.reports_ingested(), sent);
  EXPECT_EQ(sc.queue_depth(), 0u);
  // The sane part of the stream actually landed.
  EXPECT_FALSE(sc.keys().empty());
}

TEST(ShardedCoordinator, MatchesSequentialForAnyShardCount) {
  const auto stream = synthetic_stream(/*seed=*/77, /*count=*/6000);
  const geo::zone_grid grid(test_proj(), 250.0);
  const std::vector<std::string> nets{"NetB", "NetC"};
  const coordinator_config ccfg = small_epoch_config();

  coordinator seq(grid, nets, ccfg, /*seed=*/42);
  for (const auto& rec : stream) seq.report(rec);
  auto seq_keys = seq.table_for_test().keys();
  ASSERT_FALSE(seq_keys.empty());
  const auto seq_alerts = normalized(seq.alerts());
  ASSERT_FALSE(seq_alerts.empty()) << "stream should raise change alerts";

  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("num_shards=" + std::to_string(shards));
    sharded_config cfg;
    cfg.coordinator = ccfg;
    cfg.num_shards = shards;
    cfg.synchronous = false;
    cfg.queue_capacity = 256;
    cfg.drain_batch = 32;
    sharded_coordinator sc(grid, nets, cfg, /*seed=*/42);
    for (const auto& rec : stream) ASSERT_TRUE(sc.report(rec));
    sc.flush();
    EXPECT_EQ(sc.reports_received(), stream.size());
    EXPECT_EQ(sc.reports_ingested(), stream.size());
    EXPECT_EQ(sc.queue_depth(), 0u);

    // Identical key sets...
    auto keys = sc.keys();
    EXPECT_EQ(keys.size(), seq_keys.size());
    for (const auto& key : seq_keys) {
      EXPECT_TRUE(std::any_of(keys.begin(), keys.end(), [&](const auto& k) {
        return same_key(k, key);
      })) << "missing key zone=" << geo::to_string(key.zone)
          << " net=" << key.network;
    }
    // ...identical published estimate histories, bit for bit...
    for (const auto& key : seq_keys) {
      const auto want = seq.table_for_test().history(key);
      const auto got = sc.history(key);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].epoch_start_s, want[i].epoch_start_s);
        EXPECT_EQ(got[i].mean, want[i].mean);
        EXPECT_EQ(got[i].stddev, want[i].stddev);
        EXPECT_EQ(got[i].samples, want[i].samples);
      }
      const auto want_latest = seq.table_for_test().latest(key);
      const auto got_latest = sc.latest(key);
      ASSERT_EQ(got_latest.has_value(), want_latest.has_value());
      if (want_latest) {
        EXPECT_EQ(got_latest->mean, want_latest->mean);
      }
    }
    // ...and identical change alerts (order-normalized).
    const auto alerts = sc.alerts();
    ASSERT_EQ(alerts.size(), seq_alerts.size());
    for (std::size_t i = 0; i < alerts.size(); ++i) {
      EXPECT_TRUE(same_key(alerts[i].key, seq_alerts[i].key));
      EXPECT_EQ(alerts[i].epoch_start_s, seq_alerts[i].epoch_start_s);
      EXPECT_EQ(alerts[i].previous_mean, seq_alerts[i].previous_mean);
      EXPECT_EQ(alerts[i].new_mean, seq_alerts[i].new_mean);
      EXPECT_EQ(alerts[i].previous_stddev, seq_alerts[i].previous_stddev);
    }
  }
}

TEST(ShardedCoordinator, SynchronousSingleShardReproducesSequentialExactly) {
  // num_shards = 1, synchronous = true must be the sequential coordinator:
  // same task decisions (same rng draws), same budget accounting, same
  // estimates.
  const geo::zone_grid grid(test_proj(), 250.0);
  const std::vector<std::string> nets{"NetB", "NetC"};
  coordinator_config ccfg = small_epoch_config();
  ccfg.client_daily_budget_mb = 2.0;

  coordinator seq(grid, nets, ccfg, /*seed=*/9);
  sharded_config cfg;
  cfg.coordinator = ccfg;
  cfg.num_shards = 1;
  cfg.synchronous = true;
  sharded_coordinator sc(grid, nets, cfg, /*seed=*/9);

  stats::rng_stream rng(123);
  const geo::projection proj = test_proj();
  std::uint64_t tasks = 0;
  for (int i = 0; i < 2000; ++i) {
    const double t = 500.0 + i * 3.0;
    const geo::lat_lon pos = proj.to_lat_lon(
        {300.0 * static_cast<double>(rng.uniform_int(-1, 1)),
         300.0 * static_cast<double>(rng.uniform_int(-1, 1))});
    const std::size_t net = static_cast<std::size_t>(rng.uniform_int(0, 1));
    const std::uint64_t client = 1 + static_cast<std::uint64_t>(i % 3);
    const auto a = seq.checkin(pos, t, net, 4, client);
    const auto b = sc.checkin(pos, t, net, 4, client);
    ASSERT_EQ(a.has_value(), b.has_value()) << "checkin " << i;
    if (a) {
      EXPECT_EQ(a->kind, b->kind);
      EXPECT_EQ(a->network_index, b->network_index);
      ++tasks;
      auto rec = testing::make_record(t, nets[net], pos, a->kind, 1e6);
      rec.client_id = client;
      seq.report(rec);
      ASSERT_TRUE(sc.report(rec));
    }
  }
  ASSERT_GT(tasks, 0u);
  EXPECT_EQ(sc.tasks_issued(), tasks);
  for (std::uint64_t client : {1ull, 2ull, 3ull}) {
    EXPECT_EQ(sc.client_spend_mb(client, 6000.0),
              seq.client_spend_mb(client, 6000.0));
  }
  for (const auto& key : seq.table_for_test().keys()) {
    const auto want = seq.table_for_test().history(key);
    const auto got = sc.history(key);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].mean, want[i].mean);
      EXPECT_EQ(got[i].samples, want[i].samples);
    }
  }
  EXPECT_EQ(normalized(seq.alerts()).size(), sc.alerts().size());
}

TEST(ShardedCoordinator, EpochAndTargetManagementWorkPerShard) {
  const geo::zone_grid grid(test_proj(), 250.0);
  const std::vector<std::string> nets{"NetB"};
  sharded_config cfg;
  cfg.coordinator = small_epoch_config();
  cfg.num_shards = 4;
  sharded_coordinator sc(grid, nets, cfg, 3);

  const auto stream = synthetic_stream(5, 2000);
  for (const auto& rec : stream) {
    auto r = rec;
    r.network = "NetB";
    ASSERT_TRUE(sc.report(r));
  }
  sc.flush();
  sc.recompute_epochs();  // must not deadlock or race with drain workers

  const geo::zone_id zone = grid.zone_of(test_proj().to_lat_lon({0.0, 0.0}));
  const auto status = sc.status_of(zone);
  EXPECT_GT(status.epoch_duration_s, 0.0);
  const std::size_t target =
      sc.refine_sample_target(zone, "NetB", trace::metric::rtt_s);
  EXPECT_GT(target, 0u);

  std::uint64_t per_shard_total = 0;
  for (std::size_t s = 0; s < sc.num_shards(); ++s) {
    per_shard_total += sc.stats_of(s).reports_ingested;
  }
  EXPECT_EQ(per_shard_total, stream.size());
}

TEST(ShardedCoordinatorStress, EightProducersLoseNoReports) {
  // 8 producer threads x 10k reports each through the concurrent server;
  // the counters must account for every line (run under TSan by
  // tools/run_tsan.sh).
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 10'000;

  const geo::zone_grid grid(test_proj(), 250.0);
  const std::vector<std::string> nets{"NetB", "NetC"};
  sharded_config cfg;
  cfg.coordinator = small_epoch_config();
  cfg.num_shards = 4;
  cfg.queue_capacity = 512;  // small: exercises producer backpressure
  cfg.drain_batch = 64;
  sharded_coordinator sc(grid, nets, cfg, 17);
  proto::coordinator_server server(sc);
  ASSERT_TRUE(server.concurrent());

  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (std::size_t p = 0; p < kThreads; ++p) {
    producers.emplace_back([&, p] {
      stats::rng_stream rng(1000 + p);
      const geo::projection proj = test_proj();
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const double t = 1000.0 + static_cast<double>(i);
        const geo::xy xy{443.0 * static_cast<double>(rng.uniform_int(-2, 2)),
                         443.0 * static_cast<double>(rng.uniform_int(-2, 2))};
        auto rec = testing::make_record(
            t, p % 2 == 0 ? "NetB" : "NetC", proj.to_lat_lon(xy),
            trace::probe_kind::ping, 0.1 + 0.01 * rng.uniform());
        rec.client_id = 100 + p;
        proto::measurement_report rep;
        rep.client_id = rec.client_id;
        rep.record = rec;
        const std::string reply = server.handle(proto::encode(rep));
        ASSERT_EQ(reply, "ACK");
      }
    });
  }
  for (auto& th : producers) th.join();
  sc.flush();

  const std::uint64_t expected = kThreads * kPerThread;
  EXPECT_EQ(server.reports_received(), expected);
  EXPECT_EQ(server.errors(), 0u);
  EXPECT_EQ(sc.reports_received(), expected);
  EXPECT_EQ(sc.reports_ingested(), expected);
  EXPECT_EQ(sc.queue_depth(), 0u);

  // Every shard that owns zones did real, batched work.
  std::uint64_t ingested = 0, batches = 0;
  for (std::size_t s = 0; s < sc.num_shards(); ++s) {
    const auto stats = sc.stats_of(s);
    ingested += stats.reports_ingested;
    batches += stats.drain_batches;
    EXPECT_EQ(stats.queue_depth, 0u);
  }
  EXPECT_EQ(ingested, expected);
  EXPECT_GT(batches, 0u);
  EXPECT_LT(batches, expected);  // drains were lock-amortised over batches

  sc.stop();
  EXPECT_FALSE(sc.report(trace::measurement_record{}));
}

}  // namespace
}  // namespace wiscape::core

#include <gtest/gtest.h>

#include <cmath>

#include "core/mapping.h"
#include "test_util.h"

namespace wiscape::core {
namespace {

const geo::lat_lon here = cellnet::anchors::madison;

TEST(Mapping, ZoneSamplesAggregatePerZone) {
  const geo::zone_grid grid(geo::projection(here), 250.0);
  trace::dataset ds;
  for (int i = 0; i < 30; ++i) {
    ds.add(testing::make_record(i, "NetB", here,
                                trace::probe_kind::tcp_download, 1e6));
    ds.add(testing::make_record(i, "NetB",
                                geo::destination(here, 90.0, 3000.0),
                                trace::probe_kind::tcp_download, 2e6));
  }
  const auto samples = zone_samples(ds, grid,
                                    trace::metric::tcp_throughput_bps,
                                    "NetB", 20);
  ASSERT_EQ(samples.size(), 2u);
  for (const auto& s : samples) {
    EXPECT_EQ(s.samples, 30u);
    EXPECT_TRUE(std::abs(s.value - 1e6) < 1.0 ||
                std::abs(s.value - 2e6) < 1.0);
  }
}

TEST(Mapping, InterpolateExactAtSources) {
  std::vector<map_sample> sources{
      {{0.0, 0.0}, 10.0, 50},
      {{2000.0, 0.0}, 20.0, 50},
  };
  mapping_config cfg;
  cfg.cell_m = 200.0;
  const auto raster = interpolate(sources, cfg);
  // The cells containing the sources carry the source values.
  const auto col0 = static_cast<std::size_t>((0.0 - raster.west_m) /
                                             raster.cell_m);
  const auto row0 = static_cast<std::size_t>((0.0 - raster.south_m) /
                                             raster.cell_m);
  EXPECT_NEAR(raster.at(col0, row0), 10.0, 2.5);
}

TEST(Mapping, InterpolateBlendsBetweenSources) {
  std::vector<map_sample> sources{
      {{0.0, 0.0}, 10.0, 50},
      {{1000.0, 0.0}, 20.0, 50},
  };
  mapping_config cfg;
  cfg.cell_m = 100.0;
  cfg.max_range_m = 2000.0;
  const auto raster = interpolate(sources, cfg);
  const auto mid_col = static_cast<std::size_t>((500.0 - raster.west_m) /
                                                raster.cell_m);
  const auto mid_row = static_cast<std::size_t>((0.0 - raster.south_m) /
                                                raster.cell_m);
  const double mid = raster.at(mid_col, mid_row);
  EXPECT_GT(mid, 12.0);
  EXPECT_LT(mid, 18.0);
}

TEST(Mapping, FarCellsAreNoData) {
  std::vector<map_sample> sources{
      {{0.0, 0.0}, 10.0, 50},
      {{8000.0, 0.0}, 20.0, 50},
  };
  mapping_config cfg;
  cfg.cell_m = 500.0;
  cfg.max_range_m = 1000.0;
  const auto raster = interpolate(sources, cfg);
  const auto mid_col = static_cast<std::size_t>((4000.0 - raster.west_m) /
                                                raster.cell_m);
  const auto mid_row = static_cast<std::size_t>((0.0 - raster.south_m) /
                                                raster.cell_m);
  EXPECT_TRUE(std::isnan(raster.at(mid_col, mid_row)));
}

TEST(Mapping, HeavierZonesPullHarder) {
  // Same distances, very different sample counts: the estimate leans to the
  // well-observed source.
  std::vector<map_sample> sources{
      {{0.0, 0.0}, 10.0, 200},
      {{1000.0, 0.0}, 20.0, 10},
  };
  mapping_config cfg;
  cfg.cell_m = 100.0;
  cfg.max_range_m = 2000.0;
  const auto raster = interpolate(sources, cfg);
  const auto mid_col = static_cast<std::size_t>((500.0 - raster.west_m) /
                                                raster.cell_m);
  const auto mid_row = static_cast<std::size_t>((0.0 - raster.south_m) /
                                                raster.cell_m);
  EXPECT_LT(raster.at(mid_col, mid_row), 12.0);
}

TEST(Mapping, Validation) {
  EXPECT_THROW(interpolate({}, {}), std::invalid_argument);
  std::vector<map_sample> one{{{0.0, 0.0}, 1.0, 5}};
  mapping_config bad;
  bad.cell_m = 0.0;
  EXPECT_THROW(interpolate(one, bad), std::invalid_argument);
}

TEST(Mapping, AsciiRenderShapesAndRamp) {
  std::vector<map_sample> sources{
      {{0.0, 0.0}, 10.0, 50},
      {{2000.0, 2000.0}, 100.0, 50},
  };
  mapping_config cfg;
  cfg.cell_m = 500.0;
  cfg.max_range_m = 1500.0;
  const auto raster = interpolate(sources, cfg);
  const auto text = render_ascii(raster);
  // rows lines, each cols+1 characters (incl newline).
  EXPECT_EQ(text.size(), (raster.cols + 1) * raster.rows);
  // Contains both low and high ramp characters.
  EXPECT_NE(text.find('.'), std::string::npos);
  EXPECT_NE(text.find('@'), std::string::npos);
}

TEST(Mapping, EndToEndAsciiMap) {
  const geo::zone_grid grid(geo::projection(here), 250.0);
  trace::dataset ds;
  for (int z = 0; z < 4; ++z) {
    const auto pos = geo::destination(here, 90.0, z * 800.0);
    for (int i = 0; i < 25; ++i) {
      ds.add(testing::make_record(i, "NetB", pos,
                                  trace::probe_kind::tcp_download,
                                  (z + 1) * 5e5));
    }
  }
  const auto map = ascii_map(ds, grid, trace::metric::tcp_throughput_bps,
                             "NetB");
  EXPECT_GT(map.size(), 20u);
  EXPECT_NE(map.find('@'), std::string::npos);
}

}  // namespace
}  // namespace wiscape::core

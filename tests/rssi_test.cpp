// RSSI reproduction of the paper's Sec 5 finding: signal strength is
// recorded with every probe but carries almost no information about
// application-level TCP throughput over time at a location, which is why
// WiScape discards it as an estimated metric.
#include <gtest/gtest.h>

#include "probe/engine.h"
#include "stats/summary.h"
#include "test_util.h"
#include "trace/csv.h"

namespace wiscape::probe {
namespace {

TEST(Rssi, StampedOnEveryProbeKind) {
  const auto dep = testing::tiny_deployment();
  probe_engine eng(dep, 3);
  const mobility::gps_fix fix{dep.proj().to_lat_lon({150.0, -150.0}), 0.0,
                              12.0 * 3600};
  for (const auto& rec :
       {eng.tcp_probe(0, fix), eng.udp_probe(0, fix), eng.ping_probe(0, fix)}) {
    EXPECT_GT(rec.rssi_dbm, -120.0);
    EXPECT_LT(rec.rssi_dbm, -30.0);
  }
}

TEST(Rssi, TracksSlowFieldReceivedPower) {
  const auto dep = testing::tiny_deployment();
  probe_engine eng(dep, 3);
  const geo::xy p{150.0, -150.0};
  const auto lc = dep.network(0).conditions_at(p, 12.0 * 3600);
  const mobility::gps_fix fix{dep.proj().to_lat_lon(p), 0.0, 12.0 * 3600};
  stats::running_stats rs;
  for (int i = 0; i < 50; ++i) {
    mobility::gps_fix f = fix;
    f.time_s += i * 60.0;
    rs.add(eng.ping_probe(0, f).rssi_dbm);
  }
  // Mean RSSI ~ slow-field rx power; per-probe readings jitter by a few dB.
  EXPECT_NEAR(rs.mean(), lc.rx_dbm, 2.0);
  EXPECT_GT(rs.stddev(), 0.3);
  EXPECT_LT(rs.stddev(), 6.0);
}

TEST(Rssi, UncorrelatedWithTcpThroughputOverTime) {
  // Paper Sec 5: "we did not find any correlation (0.03) between the
  // expected application level TCP throughput and RSSI". At a fixed
  // location, throughput moves with load while RSSI only wiggles with
  // fading -- so the temporal correlation must be near zero.
  const auto dep = testing::tiny_deployment();
  probe_engine eng(dep, 3);
  const mobility::gps_fix base{dep.proj().to_lat_lon({150.0, -150.0}), 0.0, 0.0};
  tcp_probe_params params;
  params.bytes = 100'000;
  std::vector<double> rssi, tput;
  for (int i = 0; i < 400; ++i) {
    mobility::gps_fix f = base;
    f.time_s = 6.0 * 3600 + i * 300.0;
    const auto rec = eng.tcp_probe(0, f, params);
    if (!rec.success) continue;
    rssi.push_back(rec.rssi_dbm);
    tput.push_back(rec.throughput_bps);
  }
  ASSERT_GT(rssi.size(), 250u);
  EXPECT_LT(std::abs(stats::pearson_correlation(rssi, tput)), 0.15);
}

TEST(Rssi, SurvivesCsvRoundTrip) {
  trace::measurement_record rec = testing::make_record(
      1.0, "NetB", cellnet::anchors::madison, trace::probe_kind::ping, 0.1);
  rec.rssi_dbm = -87.4;
  const auto back = trace::from_csv(trace::to_csv(rec));
  EXPECT_NEAR(back.rssi_dbm, -87.4, 0.05);
}

TEST(Rssi, UnknownByDefault) {
  trace::measurement_record rec;
  EXPECT_DOUBLE_EQ(rec.rssi_dbm, -999.0);
}

}  // namespace
}  // namespace wiscape::probe

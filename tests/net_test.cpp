// The TCP front end: byte_ring mechanics, the socket-free session state
// machine (framing, HELLO gating, shed policy, bounded buffers), and the
// epoll server end-to-end over real loopback sockets (round trips, idle
// timeout mid-frame, drain-on-disconnect, concurrent sessions).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/coordinator.h"
#include "core/sharded_coordinator.h"
#include "net/byte_ring.h"
#include "net/client.h"
#include "net/server.h"
#include "net/session.h"
#include "obs/names.h"
#include "obs/registry.h"
#include "proto/messages.h"
#include "proto/server.h"
#include "proto/wire_v3.h"
#include "repl/replica.h"
#include "test_util.h"

namespace wiscape::net {
namespace {

const geo::lat_lon here = cellnet::anchors::madison;

// A sequential coordinator + line handler: sessions only need handle().
struct handler_fixture {
  cellnet::deployment dep = testing::tiny_deployment();
  geo::zone_grid grid{dep.proj(), 250.0};
  core::coordinator coord{grid, dep.names(), core::coordinator_config{}, 5};
  proto::coordinator_server server{coord};
};

std::string report_frame(std::size_t n, double t0 = 100.0) {
  std::vector<trace::measurement_record> recs;
  for (std::size_t i = 0; i < n; ++i) {
    recs.push_back(testing::make_record(t0 + static_cast<double>(i), "NetB",
                                        here, trace::probe_kind::udp_burst,
                                        1.0e6));
    recs.back().client_id = 7;
  }
  return proto::encode_report_batch(recs);
}

std::string ring_text(byte_ring& r) {
  return std::string(r.linearize());
}

std::uint64_t counter_value(const char* name) {
  return static_cast<std::uint64_t>(
      obs::registry::global().get_counter(name).value());
}

// ---- byte_ring ----------------------------------------------------------

TEST(ByteRing, AppendConsumeWrapsAndFinds) {
  byte_ring r(64);
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.append("hello\n"));
  EXPECT_EQ(r.find('\n'), 5u);
  r.consume(6);
  // Push the head far enough that the next append wraps the storage.
  for (int round = 0; round < 20; ++round) {
    EXPECT_TRUE(r.append("0123456789"));
    ASSERT_EQ(ring_text(r).back(), '9');
    r.consume(10);
  }
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.append("wrapped-line\n"));
  EXPECT_EQ(ring_text(r), "wrapped-line\n");
  EXPECT_EQ(r.find('\n'), 12u);
}

TEST(ByteRing, CapBoundsSizeNotStorage) {
  byte_ring r(100);  // not a power of two: storage rounds up, cap does not
  EXPECT_EQ(r.max_bytes(), 100u);
  std::string fill(100, 'x');
  EXPECT_TRUE(r.append(fill));
  EXPECT_TRUE(r.full());
  EXPECT_EQ(r.headroom(), 0u);
  EXPECT_FALSE(r.append("y"));  // over cap refuses, ring unchanged
  EXPECT_EQ(r.size(), 100u);
  r.consume(40);
  EXPECT_EQ(r.headroom(), 40u);
  EXPECT_TRUE(r.append(std::string(40, 'z')));
  EXPECT_FALSE(r.append("y"));
}

TEST(ByteRing, WriteSpansCommitRoundTrip) {
  byte_ring r(256);
  auto spans = r.write_spans(10);
  std::size_t got = 0;
  for (auto s : spans) {
    for (char& c : s) {
      if (got >= 10) break;
      c = static_cast<char>('a' + got++);
    }
  }
  r.commit(10);
  EXPECT_EQ(ring_text(r), "abcdefghij");
}

// ---- session framing ----------------------------------------------------

TEST(NetSession, PartialFrameAcrossReads) {
  handler_fixture fx;
  session_limits lim;
  lim.require_hello = false;
  session s(lim, fx.server);

  const std::string frame = report_frame(3) + "\n";
  // Split inside the second payload line: the header and first line alone
  // must not dispatch anything.
  const std::size_t first_nl = frame.find('\n');
  const std::size_t cut = frame.find('\n', first_nl + 1) + 3;
  ASSERT_LT(cut, frame.size());

  pump_stats stats;
  ASSERT_TRUE(s.in().append(std::string_view(frame).substr(0, cut)));
  EXPECT_TRUE(s.pump({}, stats));
  EXPECT_EQ(stats.dispatched, 0u);
  EXPECT_TRUE(s.out().empty());
  EXPECT_TRUE(s.mid_frame());

  ASSERT_TRUE(s.in().append(std::string_view(frame).substr(cut)));
  EXPECT_TRUE(s.pump({}, stats));
  EXPECT_EQ(stats.dispatched, 1u);
  EXPECT_FALSE(s.mid_frame());
  EXPECT_EQ(ring_text(s.out()).substr(0, 4), "ACK ");
  EXPECT_EQ(fx.server.reports_received(), 3u);
}

TEST(NetSession, CrlfLinesAndFramesDispatch) {
  handler_fixture fx;
  session_limits lim;
  lim.require_hello = false;
  session s(lim, fx.server);

  pump_stats stats;
  ASSERT_TRUE(s.in().append("STATS\r\n"));
  EXPECT_TRUE(s.pump({}, stats));
  EXPECT_EQ(stats.dispatched, 1u);
  EXPECT_EQ(ring_text(s.out()).substr(0, 6), "STATS ");
  s.out().consume(s.out().size());

  // A whole CRLF-terminated frame takes the scratch-rebuild cold path.
  std::string frame = report_frame(2) + "\n";
  std::string crlf;
  for (char c : frame) {
    if (c == '\n') crlf += "\r\n";
    else crlf += c;
  }
  ASSERT_TRUE(s.in().append(crlf));
  EXPECT_TRUE(s.pump({}, stats));
  EXPECT_EQ(stats.dispatched, 2u);
  EXPECT_EQ(ring_text(s.out()).substr(0, 4), "ACK ");
}

TEST(NetSession, OversizedLineDisconnects) {
  handler_fixture fx;
  session_limits lim;
  lim.require_hello = false;
  lim.read_buffer_bytes = 256;
  session s(lim, fx.server);

  ASSERT_TRUE(s.in().append(std::string(256, 'x')));  // no newline, ring full
  pump_stats stats;
  EXPECT_FALSE(s.pump({}, stats));
  EXPECT_EQ(s.reason(), close_reason::oversize);
  EXPECT_EQ(ring_text(s.out()).substr(0, 9), "ERR parse");
}

TEST(NetSession, HostileFrameHeaderDisconnects) {
  handler_fixture fx;
  session_limits lim;
  lim.require_hello = false;
  session s(lim, fx.server);

  ASSERT_TRUE(s.in().append("REPORTB 99999999999\n"));
  pump_stats stats;
  EXPECT_FALSE(s.pump({}, stats));
  EXPECT_EQ(s.reason(), close_reason::bad_frame);
  EXPECT_EQ(ring_text(s.out()).substr(0, 9), "ERR parse");
}

TEST(NetSession, HelloBeforeAnythingEnforced) {
  handler_fixture fx;
  session_limits lim;  // require_hello defaults to true
  session s(lim, fx.server);

  pump_stats stats;
  ASSERT_TRUE(s.in().append("STATS\n"));
  EXPECT_FALSE(s.pump({}, stats));
  EXPECT_EQ(s.reason(), close_reason::hello_violation);
  EXPECT_EQ(stats.dispatched, 0u);
  EXPECT_EQ(ring_text(s.out()).substr(0, 11), "ERR version");

  // A fresh session that negotiates first sails through.
  session ok(lim, fx.server);
  ASSERT_TRUE(ok.in().append(proto::encode(proto::hello_request{}) + "\n"));
  EXPECT_TRUE(ok.pump({}, stats));
  EXPECT_TRUE(ok.saw_hello());
  ok.out().consume(ok.out().size());
  ASSERT_TRUE(ok.in().append("STATS\n"));
  EXPECT_TRUE(ok.pump({}, stats));
  EXPECT_EQ(ring_text(ok.out()).substr(0, 6), "STATS ");
}

TEST(NetSession, SlowReaderDisconnects) {
  handler_fixture fx;
  session_limits lim;
  lim.require_hello = false;
  lim.write_buffer_bytes = 64;  // a STATS dump cannot fit
  session s(lim, fx.server);

  ASSERT_TRUE(s.in().append("STATS\n"));
  pump_stats stats;
  EXPECT_FALSE(s.pump({}, stats));
  EXPECT_EQ(s.reason(), close_reason::slow_reader);
}

// ---- shed policy --------------------------------------------------------

TEST(NetSession, ClassifyRequestClasses) {
  EXPECT_EQ(classify("QUERY"), request_class::query);
  EXPECT_EQ(classify("QUERYB"), request_class::query);
  EXPECT_EQ(classify("ALERTS"), request_class::query);
  EXPECT_EQ(classify("REPORT"), request_class::report);
  EXPECT_EQ(classify("REPORTB"), request_class::report);
  EXPECT_EQ(classify("HELLO"), request_class::control);
  EXPECT_EQ(classify("CHECKIN"), request_class::control);
  EXPECT_EQ(classify("STATS"), request_class::control);
  EXPECT_EQ(classify("NONSENSE"), request_class::control);
}

TEST(NetSession, ShedPolicyAccounting) {
  handler_fixture fx;
  session_limits lim;
  lim.require_hello = false;
  session s(lim, fx.server);

  shed_state shed;
  shed.policy = shed_policy::queries_first;
  shed.saturation = 0.8;  // past start, below hard

  pump_stats stats;
  // Query-class sheds without dispatching; report-class still lands.
  ASSERT_TRUE(s.in().append("QUERY lat=43.07 lon=-89.4 net=NetB "
                            "metric=tcp_throughput t=1\n"));
  ASSERT_TRUE(s.in().append(report_frame(2) + "\n"));
  EXPECT_TRUE(s.pump(shed, stats));
  EXPECT_EQ(stats.shed_queries, 1u);
  EXPECT_EQ(stats.shed_reports, 0u);
  EXPECT_EQ(stats.dispatched, 1u);
  EXPECT_EQ(fx.server.reports_received(), 2u);
  EXPECT_NE(ring_text(s.out()).find("ERR overload"), std::string::npos);

  // reports_first inverts which class is protected.
  session s2(lim, fx.server);
  shed.policy = shed_policy::reports_first;
  pump_stats stats2;
  ASSERT_TRUE(s2.in().append(report_frame(2) + "\n"));
  ASSERT_TRUE(s2.in().append("QUERY lat=43.07 lon=-89.4 net=NetB "
                             "metric=tcp_throughput t=1\n"));
  EXPECT_TRUE(s2.pump(shed, stats2));
  EXPECT_EQ(stats2.shed_reports, 1u);  // one REPORTB frame, one decision
  EXPECT_EQ(stats2.shed_queries, 0u);
  EXPECT_EQ(stats2.dispatched, 1u);

  // Past the hard threshold both classes shed; control still serves.
  session s3(lim, fx.server);
  shed.saturation = 0.99;
  pump_stats stats3;
  ASSERT_TRUE(s3.in().append("QUERY lat=43.07 lon=-89.4 net=NetB "
                             "metric=tcp_throughput t=1\n"));
  ASSERT_TRUE(s3.in().append(report_frame(1) + "\n"));
  ASSERT_TRUE(s3.in().append("STATS\n"));
  EXPECT_TRUE(s3.pump(shed, stats3));
  EXPECT_EQ(stats3.shed_queries, 1u);
  EXPECT_EQ(stats3.shed_reports, 1u);
  EXPECT_EQ(stats3.dispatched, 1u);  // the STATS
}

// ---- real sockets -------------------------------------------------------

int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);
  return fd;
}

void send_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

/// True when the peer closes the connection within `wait_s` seconds.
bool eof_within(int fd, double wait_s) {
  const timeval tv{static_cast<time_t>(wait_s),
                   static_cast<suseconds_t>((wait_s - static_cast<time_t>(
                                                          wait_s)) *
                                            1e6)};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  char buf[256];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n == 0) return true;  // orderly close
    if (n < 0) {
      // A close with bytes still queued on the receive side arrives as RST.
      return errno == ECONNRESET;
    }
  }
}

TEST(TcpServer, RoundTripMatchesInProcessHandler) {
  handler_fixture fx;
  server_config cfg;
  cfg.event_loops = 1;  // sequential handler
  tcp_server srv(fx.server, cfg);
  srv.start();

  line_client client;
  client.connect("127.0.0.1", srv.port());
  const auto hello = client.hello();
  EXPECT_EQ(hello.version, proto::wire_version);

  const std::string frame = report_frame(4);
  const std::string wire_ack = client.request(frame);
  EXPECT_EQ(proto::message_type(wire_ack), "ACK");

  // The same requests through handle() answer byte-identically.
  for (const std::string& req :
       {std::string("QUERY lat=43.07 lon=-89.4 net=NetB "
                    "metric=udp_throughput t=200"),
        std::string("ALERTS since=0 max=4")}) {
    EXPECT_EQ(client.request(req), fx.server.handle(req)) << req;
  }
  client.close();
  srv.stop();
  EXPECT_EQ(srv.active_sessions(), 0u);
}

TEST(TcpServer, MultipleLoopsRequireConcurrentHandler) {
  handler_fixture fx;  // sequential core::coordinator
  server_config cfg;
  cfg.event_loops = 2;
  EXPECT_THROW(tcp_server(fx.server, cfg), std::invalid_argument);
}

TEST(TcpServer, IdleTimeoutCutsSessionMidFrame) {
  handler_fixture fx;
  server_config cfg;
  cfg.event_loops = 1;
  cfg.limits.require_hello = false;
  cfg.idle_timeout_s = 0.3;
  tcp_server srv(fx.server, cfg);
  srv.start();

  const std::uint64_t timeouts0 = counter_value(obs::names::kNetIdleTimeouts);
  const int fd = raw_connect(srv.port());
  // A frame header plus one of its five payload lines, then silence: the
  // sweep must cut the session even though a request is in flight.
  send_all(fd, "REPORTB 5\nR client=7 ");
  EXPECT_TRUE(eof_within(fd, 5.0));
  ::close(fd);
  EXPECT_GE(counter_value(obs::names::kNetIdleTimeouts), timeouts0 + 1);
  srv.stop();
}

TEST(TcpServer, DrainOnDisconnectStillDispatches) {
  handler_fixture fx;
  server_config cfg;
  cfg.event_loops = 1;
  cfg.limits.require_hello = false;
  tcp_server srv(fx.server, cfg);
  srv.start();

  const int fd = raw_connect(srv.port());
  send_all(fd, report_frame(3) + "\n");
  ::close(fd);  // gone before the reply -- the records must still land

  for (int spin = 0; spin < 200 && fx.server.reports_received() < 3; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(fx.server.reports_received(), 3u);
  srv.stop();
}

TEST(TcpServer, OversizedRequestDisconnectsAndCounts) {
  handler_fixture fx;
  server_config cfg;
  cfg.event_loops = 1;
  cfg.limits.require_hello = false;
  cfg.limits.read_buffer_bytes = 512;
  tcp_server srv(fx.server, cfg);
  srv.start();

  const std::uint64_t oversize0 =
      counter_value(obs::names::kNetOversizeDisconnects);
  const int fd = raw_connect(srv.port());
  send_all(fd, std::string(2048, 'x'));  // no newline ever
  EXPECT_TRUE(eof_within(fd, 5.0));
  ::close(fd);
  EXPECT_GE(counter_value(obs::names::kNetOversizeDisconnects), oversize0 + 1);
  srv.stop();
}

TEST(TcpServer, HelloViolationCountsAndCloses) {
  handler_fixture fx;
  server_config cfg;
  cfg.event_loops = 1;  // require_hello stays on
  tcp_server srv(fx.server, cfg);
  srv.start();

  const std::uint64_t violations0 =
      counter_value(obs::names::kNetHelloViolations);
  line_client client;
  client.connect("127.0.0.1", srv.port());
  const std::string reply = client.request("STATS");
  EXPECT_EQ(reply.substr(0, 11), "ERR version");
  EXPECT_THROW((void)client.request("STATS"), std::runtime_error);  // closed
  EXPECT_GE(counter_value(obs::names::kNetHelloViolations), violations0 + 1);
  srv.stop();
}

TEST(TcpServer, ShedsQueriesUnderSaturation) {
  handler_fixture fx;
  server_config cfg;
  cfg.event_loops = 1;
  cfg.limits.require_hello = false;
  cfg.ingest_saturation = [] { return 0.9; };
  cfg.saturation_refresh_every = 1;
  tcp_server srv(fx.server, cfg);
  srv.start();

  const std::uint64_t shed0 = counter_value(obs::names::kNetShedQueries);
  line_client client;
  client.connect("127.0.0.1", srv.port());
  EXPECT_EQ(client.request("ALERTS since=0 max=4").substr(0, 12),
            "ERR overload");
  // Report-class still lands under queries_first.
  EXPECT_EQ(proto::message_type(client.request(report_frame(2))), "ACK");
  EXPECT_GE(counter_value(obs::names::kNetShedQueries), shed0 + 1);
  client.close();
  srv.stop();
}

std::string report_line(double t) {
  proto::measurement_report rep;
  rep.client_id = 7;
  rep.record = testing::make_record(t, "NetB", here,
                                    trace::probe_kind::udp_burst, 1.0e6);
  return proto::encode(rep);
}

TEST(NetSession, HandleIntoMatchesHandleOnGoldenCorpus) {
  handler_fixture fx;
  // One reused buffer across the corpus, like a session's arena: every
  // reply must still match handle() byte for byte. STATS and CHECKIN are
  // excluded -- their replies move between two calls by design (counters
  // tick, the task rotation advances).
  std::vector<proto::query_request> qs(2);
  qs[0].pos = here;
  qs[0].network = "NetB";
  qs[0].metric = trace::metric::udp_throughput_bps;
  qs[0].time_s = 200.0;
  qs[1].pos = here;
  qs[1].network = "NetB";
  qs[1].metric = trace::metric::loss_rate;
  qs[1].time_s = 200.0;
  const std::vector<std::string> corpus = {
      "HELLO ver=2",
      report_line(100.0),
      report_frame(3),
      "QUERY lat=43.07 lon=-89.4 net=NetB metric=udp_throughput t=200",
      proto::encode_query_batch(qs),
      "ALERTS since=0 max=4",
      "BOGUS command",
      "QUERY lat=not-a-number",
      "REPORT client=1 csv=notcsv",
      std::string("NOISE ") + std::string(300, 'x'),
  };
  proto::reply_buffer out;
  for (const auto& req : corpus) {
    out.clear();
    fx.server.handle_into(req, out);
    EXPECT_EQ(out.view(), fx.server.handle(req)) << req;
  }
}

TEST(NetSession, ConsecutiveReportsCoalesceIntoOneBatch) {
  handler_fixture fx;
  session_limits lim;
  lim.require_hello = false;
  session s(lim, fx.server);

  std::string burst;
  for (int i = 0; i < 5; ++i) burst += report_line(100.0 + i) + "\n";
  pump_stats stats;
  ASSERT_TRUE(s.in().append(burst));
  EXPECT_TRUE(s.pump({}, stats));
  EXPECT_EQ(stats.dispatched, 5u);
  EXPECT_EQ(stats.grouped_reports, 5u);
  EXPECT_EQ(s.take_queued_replies(), 5u);
  EXPECT_EQ(ring_text(s.out()), "ACK\nACK\nACK\nACK\nACK\n");
  EXPECT_EQ(fx.server.reports_received(), 5u);
}

TEST(NetSession, ReportGroupPreservesPerLineErrors) {
  handler_fixture fx;
  session_limits lim;
  lim.require_hello = false;
  session s(lim, fx.server);

  const std::string bad = "REPORT client=1 csv=notcsv";
  const std::string burst = report_line(100.0) + "\n" + bad + "\n" +
                            report_line(101.0) + "\n";
  pump_stats stats;
  ASSERT_TRUE(s.in().append(burst));
  EXPECT_TRUE(s.pump({}, stats));
  EXPECT_EQ(stats.grouped_reports, 3u);
  // The middle reply is exactly what per-line dispatch answers.
  handler_fixture other;
  const std::string expect =
      "ACK\n" + other.server.handle(bad) + "\nACK\n";
  EXPECT_EQ(ring_text(s.out()), expect);
  EXPECT_EQ(fx.server.reports_received(), 2u);
}

TEST(NetSession, ReportRunBrokenByOtherRequestClasses) {
  handler_fixture fx;
  session_limits lim;
  lim.require_hello = false;
  session s(lim, fx.server);

  // REPORT REPORT QUERY REPORT: only the leading run of two groups.
  const std::string query =
      "QUERY lat=43.07 lon=-89.4 net=NetB metric=udp_throughput t=200";
  const std::string burst = report_line(100.0) + "\n" + report_line(101.0) +
                            "\n" + query + "\n" + report_line(102.0) + "\n";
  pump_stats stats;
  ASSERT_TRUE(s.in().append(burst));
  EXPECT_TRUE(s.pump({}, stats));
  EXPECT_EQ(stats.dispatched, 4u);
  EXPECT_EQ(stats.grouped_reports, 2u);
  EXPECT_EQ(fx.server.reports_received(), 3u);
}

TEST(NetSession, CoalesceDisabledDispatchesPerLine) {
  handler_fixture fx;
  session_limits lim;
  lim.require_hello = false;
  lim.coalesce_reports = false;
  session s(lim, fx.server);

  const std::string burst = report_line(100.0) + "\n" + report_line(101.0) +
                            "\n" + report_line(102.0) + "\n";
  pump_stats stats;
  ASSERT_TRUE(s.in().append(burst));
  EXPECT_TRUE(s.pump({}, stats));
  EXPECT_EQ(stats.dispatched, 3u);
  EXPECT_EQ(stats.grouped_reports, 0u);
  EXPECT_EQ(ring_text(s.out()), "ACK\nACK\nACK\n");
  EXPECT_EQ(fx.server.reports_received(), 3u);
}

TEST(TcpServer, PipelinedRequestsCoalesceWritev) {
  handler_fixture fx;
  server_config cfg;
  cfg.event_loops = 1;
  cfg.limits.require_hello = false;
  tcp_server srv(fx.server, cfg);
  srv.start();

  line_client client;
  client.connect("127.0.0.1", srv.port());
  // Warm the connection so accept-time effects don't blur the delta.
  ASSERT_EQ(proto::message_type(client.request(report_line(50.0))), "ACK");

  constexpr std::size_t kBurst = 64;
  std::string block;
  for (std::size_t i = 0; i < kBurst; ++i) {
    block += report_line(100.0 + static_cast<double>(i)) + "\n";
  }
  const std::uint64_t writev0 = counter_value(obs::names::kNetWritevCalls);
  const std::size_t reply_bytes = client.pipeline(block, kBurst);
  EXPECT_EQ(reply_bytes, kBurst * 4);  // "ACK\n" each
  const std::uint64_t writev_delta =
      counter_value(obs::names::kNetWritevCalls) - writev0;
  // The whole burst usually lands in one wake; loopback scheduling can
  // split it, but per-reply writes would need one call per reply.
  EXPECT_LT(writev_delta, kBurst / 2);
  EXPECT_EQ(fx.server.reports_received(), kBurst + 1);
  client.close();
  srv.stop();
}

TEST(TcpServer, ConcurrentPipelinedSessionsCoalesce) {
  // Two event loops over a sharded (concurrent) handler while client
  // threads pipeline REPORT bursts through 64 sessions at once: the
  // per-wake writev coalescing must stay correct -- every reply
  // delivered, every record ingested -- with both loops flushing
  // concurrently. This is the TSan target for the batched reply path.
  cellnet::deployment dep = testing::tiny_deployment();
  geo::zone_grid grid{dep.proj(), 250.0};
  core::sharded_config scfg;
  scfg.num_shards = 2;
  core::sharded_coordinator coord(grid, dep.names(), scfg, 5);
  proto::coordinator_server server(coord);

  server_config cfg;
  cfg.event_loops = 2;
  cfg.limits.require_hello = false;
  tcp_server srv(server, cfg);
  srv.start();

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kSessionsPerThread = 16;  // 64 sessions total
  constexpr std::size_t kBurst = 32;
  const std::uint64_t writev0 = counter_value(obs::names::kNetWritevCalls);
  std::atomic<std::size_t> reply_bytes{0};
  std::vector<std::thread> threads;
  for (std::size_t tix = 0; tix < kThreads; ++tix) {
    threads.emplace_back([&, tix] {
      for (std::size_t sess = 0; sess < kSessionsPerThread; ++sess) {
        line_client c;
        c.connect("127.0.0.1", srv.port());
        std::string block;
        for (std::size_t i = 0; i < kBurst; ++i) {
          block += report_line(1000.0 +
                               static_cast<double>((tix * kSessionsPerThread +
                                                    sess) *
                                                       kBurst +
                                                   i)) +
                   "\n";
        }
        reply_bytes += c.pipeline(block, kBurst);
        c.close();
      }
    });
  }
  for (auto& t : threads) t.join();

  constexpr std::size_t kReplies = kThreads * kSessionsPerThread * kBurst;
  EXPECT_EQ(reply_bytes.load(), kReplies * 4);  // "ACK\n" each
  coord.flush();
  EXPECT_EQ(server.reports_received(), kReplies);
  // Coalescing must survive concurrency: far fewer flushes than replies.
  const std::uint64_t writev_delta =
      counter_value(obs::names::kNetWritevCalls) - writev0;
  EXPECT_LT(writev_delta, kReplies / 2);
  srv.stop();
  EXPECT_EQ(srv.active_sessions(), 0u);
}

TEST(TcpServer, ManyConcurrentSessions) {
  handler_fixture fx;
  server_config cfg;
  cfg.event_loops = 1;
  cfg.limits.require_hello = false;
  tcp_server srv(fx.server, cfg);
  srv.start();

  constexpr std::size_t kSessions = 64;
  std::vector<line_client> clients(kSessions);
  for (auto& c : clients) c.connect("127.0.0.1", srv.port());
  for (std::size_t spin = 0; spin < 200 && srv.active_sessions() < kSessions;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(srv.active_sessions(), kSessions);

  // Every session does a full exchange on the same loop, interleaved.
  for (std::size_t i = 0; i < kSessions; ++i) {
    const std::string reply = clients[i].request(report_frame(1, 1000.0 + i));
    EXPECT_EQ(proto::message_type(reply), "ACK") << i;
  }
  EXPECT_EQ(fx.server.reports_received(), kSessions);

  for (auto& c : clients) c.close();
  for (std::size_t spin = 0; spin < 500 && srv.active_sessions() > 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(srv.active_sessions(), 0u);
  srv.stop();
}

// ---- binary v3 frames through the session --------------------------------

std::string binary_report_frame(std::size_t n, double t0 = 100.0) {
  std::vector<trace::measurement_record> recs;
  for (std::size_t i = 0; i < n; ++i) {
    recs.push_back(testing::make_record(t0 + static_cast<double>(i), "NetB",
                                        here, trace::probe_kind::udp_burst,
                                        1.0e6));
    recs.back().client_id = 7;
  }
  return proto::v3::encode_report_batch_frame(recs);
}

std::string binary_query_frame() {
  proto::query_request q;
  q.pos = here;
  q.network = "NetB";
  q.metric = trace::metric::udp_throughput_bps;
  q.time_s = 200.0;
  return proto::v3::encode_query_frame(q);
}

/// Splits a session's reply bytes into whole v3 frames; fails the test on
/// anything that is not a clean sequence of frames.
std::vector<std::string> split_frames(std::string_view bytes) {
  std::vector<std::string> frames;
  while (!bytes.empty()) {
    const auto hdr = proto::v3::peek_header(bytes);
    if (!hdr) {
      ADD_FAILURE() << "reply bytes are not a v3 frame sequence";
      return frames;
    }
    const std::size_t total = proto::v3::frame_header_bytes + hdr->payload_len;
    frames.emplace_back(bytes.substr(0, total));
    bytes.remove_prefix(total);
  }
  return frames;
}

TEST(NetSession, BinaryFrameDispatchesWithUnterminatedBinaryReply) {
  handler_fixture fx;
  session_limits lim;
  lim.require_hello = false;
  session s(lim, fx.server);

  pump_stats stats;
  ASSERT_TRUE(s.in().append(binary_report_frame(3)));
  EXPECT_TRUE(s.pump({}, stats));
  EXPECT_EQ(stats.dispatched, 1u);
  EXPECT_EQ(s.take_queued_replies(), 1u);
  EXPECT_EQ(fx.server.reports_received(), 3u);

  // Exactly one binary ACK, no trailing '\n' -- frames self-delimit.
  const auto frames = split_frames(ring_text(s.out()));
  ASSERT_EQ(frames.size(), 1u);
  const proto::v3::ack_frame ack = proto::v3::decode_ack_frame(frames[0]);
  EXPECT_TRUE(ack.batched);
  EXPECT_EQ(ack.count, 3u);
}

TEST(NetSession, PartialBinaryFrameWaitsAndCountsAsMidFrame) {
  handler_fixture fx;
  session_limits lim;
  lim.require_hello = false;
  session s(lim, fx.server);

  const std::string frame = binary_report_frame(2);
  pump_stats stats;
  // Header alone, then half the payload: nothing dispatches, and the idle
  // sweep must see a request in flight (mid_frame) both times.
  ASSERT_TRUE(s.in().append(
      std::string_view(frame).substr(0, proto::v3::frame_header_bytes)));
  EXPECT_TRUE(s.pump({}, stats));
  EXPECT_EQ(stats.dispatched, 0u);
  EXPECT_TRUE(s.mid_frame());

  ASSERT_TRUE(s.in().append(std::string_view(frame).substr(
      proto::v3::frame_header_bytes, frame.size() / 2)));
  EXPECT_TRUE(s.pump({}, stats));
  EXPECT_EQ(stats.dispatched, 0u);
  EXPECT_TRUE(s.mid_frame());
  EXPECT_TRUE(s.out().empty());

  ASSERT_TRUE(s.in().append(std::string_view(frame).substr(
      proto::v3::frame_header_bytes + frame.size() / 2)));
  EXPECT_TRUE(s.pump({}, stats));
  EXPECT_EQ(stats.dispatched, 1u);
  EXPECT_FALSE(s.mid_frame());
  EXPECT_EQ(fx.server.reports_received(), 2u);
}

TEST(NetSession, BinaryBeforeHelloViolates) {
  handler_fixture fx;
  session_limits lim;  // require_hello defaults to true
  session s(lim, fx.server);

  pump_stats stats;
  ASSERT_TRUE(s.in().append(binary_report_frame(1)));
  EXPECT_FALSE(s.pump({}, stats));
  EXPECT_EQ(s.reason(), close_reason::hello_violation);
  EXPECT_EQ(stats.dispatched, 0u);
  // The refusal answers in the client's framing: a binary ERR version.
  const auto frames = split_frames(ring_text(s.out()));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(proto::v3::decode_error_frame(frames[0]).code,
            proto::err_code::version);
}

TEST(NetSession, BinaryOnNegotiatedV2SessionIsBadFrame) {
  handler_fixture fx;
  session_limits lim;
  session s(lim, fx.server);

  pump_stats stats;
  // The client explicitly negotiated down to 2: binary frames are a
  // protocol violation on this session even though the server knows v3.
  ASSERT_TRUE(s.in().append("HELLO ver=2\n"));
  EXPECT_TRUE(s.pump({}, stats));
  EXPECT_TRUE(s.saw_hello());
  EXPECT_EQ(s.negotiated_version(), 2u);
  s.out().consume(s.out().size());

  ASSERT_TRUE(s.in().append(binary_report_frame(1)));
  EXPECT_FALSE(s.pump({}, stats));
  EXPECT_EQ(s.reason(), close_reason::bad_frame);
  const auto frames = split_frames(ring_text(s.out()));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(proto::v3::decode_error_frame(frames[0]).code,
            proto::err_code::version);
  EXPECT_EQ(fx.server.reports_received(), 0u);
}

TEST(NetSession, NegotiatedV3SessionInterleavesTextAndBinary) {
  handler_fixture fx;
  session_limits lim;
  session s(lim, fx.server);

  pump_stats stats;
  ASSERT_TRUE(s.in().append(proto::encode(proto::hello_request{}) + "\n"));
  EXPECT_TRUE(s.pump({}, stats));
  EXPECT_EQ(s.negotiated_version(), proto::wire_version);
  s.out().consume(s.out().size());

  // binary REPORTB, text REPORT, binary QUERY, text STATS -- one buffer,
  // one pump, replies in order and each in its request's framing.
  ASSERT_TRUE(s.in().append(binary_report_frame(2)));
  ASSERT_TRUE(s.in().append(report_line(300.0) + "\n"));
  ASSERT_TRUE(s.in().append(binary_query_frame()));
  ASSERT_TRUE(s.in().append("STATS\n"));
  pump_stats mixed;
  EXPECT_TRUE(s.pump({}, mixed));
  EXPECT_EQ(mixed.dispatched, 4u);
  EXPECT_EQ(fx.server.reports_received(), 3u);

  std::string_view out = s.out().linearize();
  const auto ack_hdr = proto::v3::peek_header(out);
  ASSERT_TRUE(ack_hdr.has_value());
  ASSERT_EQ(ack_hdr->op, proto::v3::opcode::ack);
  out.remove_prefix(proto::v3::frame_header_bytes + ack_hdr->payload_len);
  ASSERT_EQ(out.substr(0, 4), "ACK\n");
  out.remove_prefix(4);
  const auto est_hdr = proto::v3::peek_header(out);
  ASSERT_TRUE(est_hdr.has_value());
  EXPECT_EQ(est_hdr->op, proto::v3::opcode::est);
  out.remove_prefix(proto::v3::frame_header_bytes + est_hdr->payload_len);
  EXPECT_EQ(out.substr(0, 6), "STATS ");
}

TEST(NetSession, OversizedBinaryFrameDisconnects) {
  handler_fixture fx;
  session_limits lim;
  lim.require_hello = false;
  lim.read_buffer_bytes = 256;
  session s(lim, fx.server);

  // A 6-byte header declaring a 1 MiB payload: refused from the header
  // alone -- the declared length is never buffered or allocated.
  std::string hdr("\xB3\x02\x00\x00\x10\x00", 6);
  pump_stats stats;
  ASSERT_TRUE(s.in().append(hdr));
  EXPECT_FALSE(s.pump({}, stats));
  EXPECT_EQ(s.reason(), close_reason::oversize);
  const auto frames = split_frames(ring_text(s.out()));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(proto::v3::decode_error_frame(frames[0]).code,
            proto::err_code::parse);
}

TEST(NetSession, UndefinedBinaryOpcodeDisconnects) {
  handler_fixture fx;
  session_limits lim;
  lim.require_hello = false;
  session s(lim, fx.server);

  std::string bad("\xB3\x1f\x00\x00\x00\x00", 6);
  pump_stats stats;
  ASSERT_TRUE(s.in().append(bad));
  EXPECT_FALSE(s.pump({}, stats));
  EXPECT_EQ(s.reason(), close_reason::bad_frame);
  const auto frames = split_frames(ring_text(s.out()));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(proto::v3::decode_error_frame(frames[0]).code,
            proto::err_code::parse);
}

TEST(NetSession, BinaryFramesShedByOpcodeClass) {
  handler_fixture fx;
  session_limits lim;
  lim.require_hello = false;
  session s(lim, fx.server);

  shed_state shed;
  shed.policy = shed_policy::queries_first;
  shed.saturation = 0.8;

  pump_stats stats;
  ASSERT_TRUE(s.in().append(binary_query_frame()));
  ASSERT_TRUE(s.in().append(binary_report_frame(2)));
  EXPECT_TRUE(s.pump(shed, stats));
  EXPECT_EQ(stats.shed_queries, 1u);
  EXPECT_EQ(stats.shed_reports, 0u);
  EXPECT_EQ(stats.dispatched, 1u);
  EXPECT_EQ(fx.server.reports_received(), 2u);

  // The shed refusal is a binary ERR overload, then the binary ACK.
  const auto frames = split_frames(ring_text(s.out()));
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(proto::v3::decode_error_frame(frames[0]).code,
            proto::err_code::overload);
  EXPECT_TRUE(proto::v3::decode_ack_frame(frames[1]).batched);
}

TEST(TcpServer, MixedTextAndBinaryPipelinedSessionCoalesces) {
  handler_fixture fx;
  server_config cfg;
  cfg.event_loops = 1;  // require_hello stays on: full negotiation path
  tcp_server srv(fx.server, cfg);
  srv.start();

  line_client client;
  client.connect("127.0.0.1", srv.port());
  ASSERT_EQ(client.hello().version, proto::wire_version);

  // One pipelined block alternating text REPORT lines and binary REPORTB
  // frames: replies must come back in order, each in its request's
  // framing, coalesced into far fewer writev calls than replies.
  constexpr std::size_t kPairs = 32;
  std::string block;
  for (std::size_t i = 0; i < kPairs; ++i) {
    block += report_line(100.0 + static_cast<double>(i)) + "\n";
    block += binary_report_frame(2, 200.0 + static_cast<double>(2 * i));
  }
  proto::reply_buffer ack_rb;
  proto::v3::encode_ack_frame(2, ack_rb);
  const std::size_t binary_ack_bytes = ack_rb.view().size();

  const std::uint64_t writev0 = counter_value(obs::names::kNetWritevCalls);
  const std::size_t reply_bytes = client.pipeline(block, 2 * kPairs);
  EXPECT_EQ(reply_bytes, kPairs * (4 + binary_ack_bytes));
  const std::uint64_t writev_delta =
      counter_value(obs::names::kNetWritevCalls) - writev0;
  EXPECT_LT(writev_delta, kPairs);  // 2*kPairs replies, coalesced
  EXPECT_EQ(fx.server.reports_received(), 3 * kPairs);
  client.close();
  srv.stop();
}

TEST(TcpServer, BinaryRequestFrameRoundTripOverSocket) {
  handler_fixture fx;
  server_config cfg;
  cfg.event_loops = 1;
  tcp_server srv(fx.server, cfg);
  srv.start();

  line_client client;
  client.connect("127.0.0.1", srv.port());
  ASSERT_EQ(client.hello().version, proto::wire_version);

  const std::string_view ack = client.request_frame(binary_report_frame(4));
  EXPECT_EQ(proto::v3::decode_ack_frame(ack).count, 4u);
  const std::string_view est = client.request_frame(binary_query_frame());
  ASSERT_TRUE(proto::v3::peek_header(est).has_value());
  EXPECT_EQ(proto::v3::peek_header(est)->op, proto::v3::opcode::est);
  EXPECT_EQ(fx.server.reports_received(), 4u);
  client.close();
  srv.stop();
}

TEST(TcpServer, FollowerCatchUpAndPollOverRealSockets) {
  // The replication stream over the real front end (ISSUE 10): a follower
  // whose transport is line_client::request_frame after a negotiated
  // HELLO. Snapshot catch-up covers the epochs frozen before it joined;
  // poll() streams the ones frozen after. End state: frozen histories
  // bit-equal to the leader's.
  cellnet::deployment dep = testing::tiny_deployment();
  geo::zone_grid grid{dep.proj(), 250.0};
  core::sharded_config scfg;
  scfg.num_shards = 1;
  scfg.synchronous = true;
  scfg.coordinator.epochs.default_epoch_s = 100.0;
  core::sharded_coordinator lcoord(grid, dep.names(), scfg, 5);
  proto::coordinator_server lserver(lcoord);
  repl::leader lead(lcoord);
  lserver.attach_replication(&lead);

  server_config cfg;
  cfg.event_loops = 1;
  tcp_server srv(lserver, cfg);
  srv.start();

  auto ingest = [&](double t0, int n) {
    std::vector<trace::measurement_record> recs;
    for (int i = 0; i < n; ++i) {
      recs.push_back(testing::make_record(t0 + 10.0 * i, "NetB", here,
                                          trace::probe_kind::udp_burst,
                                          1.0e6 + 1000.0 * i));
      recs.back().client_id = 7;
    }
    lcoord.report_batch(recs);
    lcoord.flush();
  };
  ingest(0.0, 60);  // epochs frozen before the follower exists

  core::sharded_coordinator fcoord(grid, dep.names(), scfg, 5);
  repl::follower fol(fcoord);

  line_client client;
  client.connect("127.0.0.1", srv.port());
  ASSERT_GE(client.hello().version, 3u);  // frames are gated on HELLO
  const repl::transport over_tcp = [&](std::string_view frame) {
    return std::string(client.request_frame(frame));
  };

  fol.catch_up(over_tcp);
  const std::uint64_t after_snapshot = fol.applied_seq();
  EXPECT_GT(after_snapshot, 0u);

  ingest(600.0, 60);  // epochs frozen after catch-up ride the pull stream
  const std::optional<std::uint64_t> applied = fol.poll(over_tcp);
  ASSERT_TRUE(applied.has_value());
  EXPECT_GT(*applied, 0u);
  EXPECT_GT(fol.applied_seq(), after_snapshot);

  const std::vector<core::estimate_key> keys = lcoord.keys();
  ASSERT_FALSE(keys.empty());
  for (const core::estimate_key& k : keys) {
    const auto lh = lcoord.history(k);
    const auto fh = fcoord.history(k);
    ASSERT_EQ(lh.size(), fh.size());
    for (std::size_t i = 0; i < lh.size(); ++i) {
      EXPECT_EQ(lh[i].epoch_start_s, fh[i].epoch_start_s);
      EXPECT_EQ(lh[i].mean, fh[i].mean);
      EXPECT_EQ(lh[i].stddev, fh[i].stddev);
      EXPECT_EQ(lh[i].samples, fh[i].samples);
    }
  }
  client.close();
  srv.stop();
}

}  // namespace
}  // namespace wiscape::net

#include <gtest/gtest.h>

#include "probe/collect.h"
#include "probe/engine.h"
#include "test_util.h"

namespace wiscape::probe {
namespace {

mobility::gps_fix center_fix(const cellnet::deployment& dep,
                             double t = 12.0 * 3600) {
  return {dep.proj().to_lat_lon({150.0, -150.0}), 0.0, t};
}

TEST(ProbeEngine, TcpProbeSucceedsInCoverage) {
  const auto dep = testing::tiny_deployment();
  probe_engine eng(dep, 1);
  tcp_probe_params params;
  params.bytes = 250'000;
  const auto rec = eng.tcp_probe(0, center_fix(dep), params);
  EXPECT_TRUE(rec.success);
  EXPECT_EQ(rec.kind, trace::probe_kind::tcp_download);
  EXPECT_EQ(rec.network, "NetB");
  EXPECT_GT(rec.throughput_bps, 100e3);
  EXPECT_LT(rec.throughput_bps, 3.1e6);
  EXPECT_GT(rec.rtt_s, 0.05);
}

TEST(ProbeEngine, UdpProbeMetricsSane) {
  const auto dep = testing::tiny_deployment();
  probe_engine eng(dep, 1);
  const auto rec = eng.udp_probe(0, center_fix(dep));
  EXPECT_TRUE(rec.success);
  EXPECT_EQ(rec.kind, trace::probe_kind::udp_burst);
  EXPECT_GT(rec.throughput_bps, 100e3);
  EXPECT_GE(rec.loss_rate, 0.0);
  EXPECT_LT(rec.loss_rate, 0.2);
  EXPECT_GT(rec.jitter_s, 0.0);
  EXPECT_LT(rec.jitter_s, 0.05);
}

TEST(ProbeEngine, PingProbeRttNearConfiguredFloor) {
  const auto dep = testing::tiny_deployment();
  probe_engine eng(dep, 1);
  const auto rec = eng.ping_probe(0, center_fix(dep));
  EXPECT_TRUE(rec.success);
  EXPECT_EQ(rec.ping_sent, 12);
  EXPECT_EQ(rec.ping_failures, 0);
  EXPECT_GT(rec.rtt_s, 0.08);
  EXPECT_LT(rec.rtt_s, 0.5);
}

TEST(ProbeEngine, RecordsCarryFixMetadata) {
  const auto dep = testing::tiny_deployment();
  probe_engine eng(dep, 1);
  mobility::gps_fix fix = center_fix(dep, 7777.0);
  fix.speed_mps = 9.5;
  const auto rec = eng.ping_probe(1, fix);
  EXPECT_DOUBLE_EQ(rec.time_s, 7777.0);
  EXPECT_DOUBLE_EQ(rec.speed_mps, 9.5);
  EXPECT_EQ(rec.network, "NetC");
  EXPECT_NEAR(rec.pos.lat_deg, fix.pos.lat_deg, 1e-12);
}

TEST(ProbeEngine, DeterministicGivenSameSeedAndSequence) {
  const auto dep1 = testing::tiny_deployment();
  const auto dep2 = testing::tiny_deployment();
  probe_engine a(dep1, 5);
  probe_engine b(dep2, 5);
  const auto ra = a.tcp_probe(0, center_fix(dep1));
  const auto rb = b.tcp_probe(0, center_fix(dep2));
  EXPECT_DOUBLE_EQ(ra.throughput_bps, rb.throughput_bps);
}

TEST(ProbeEngine, DifferentSeedsDifferentNoise) {
  const auto dep = testing::tiny_deployment();
  probe_engine a(dep, 5);
  probe_engine b(dep, 6);
  const auto ra = a.tcp_probe(0, center_fix(dep));
  const auto rb = b.tcp_probe(0, center_fix(dep));
  EXPECT_NE(ra.throughput_bps, rb.throughput_bps);
}

TEST(ProbeEngine, OutOfCoverageTcpFails) {
  // A trouble spot with outage probability 1 blankets the probe location.
  auto dep = testing::tiny_deployment();
  dep.network(0).add_trouble_spot({{150.0, -150.0}, 500.0, 1.0, 0.0});
  probe_engine eng(dep, 1);
  const auto rec = eng.tcp_probe(0, center_fix(dep));
  EXPECT_FALSE(rec.success);
  EXPECT_DOUBLE_EQ(rec.throughput_bps, 0.0);
}

TEST(ProbeEngine, OutOfCoveragePingRecordsFailures) {
  auto dep = testing::tiny_deployment();
  dep.network(0).add_trouble_spot({{150.0, -150.0}, 500.0, 1.0, 0.0});
  probe_engine eng(dep, 1);
  const auto rec = eng.ping_probe(0, center_fix(dep));
  EXPECT_FALSE(rec.success);
  EXPECT_EQ(rec.ping_failures, rec.ping_sent);
  EXPECT_GT(rec.ping_sent, 0);
}

TEST(ProbeEngine, UdpTrainTimestampsOrdered) {
  const auto dep = testing::tiny_deployment();
  probe_engine eng(dep, 1);
  const auto train = eng.udp_train(0, center_fix(dep), 500e3, 50, 1000);
  EXPECT_EQ(train.sent, 50u);
  double prev_recv = -1.0;
  int delivered = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_GE(train.send_s[i], 0.0);
    if (train.recv_s[i] < 0.0) continue;
    ++delivered;
    EXPECT_GT(train.recv_s[i], train.send_s[i]);
    EXPECT_GT(train.recv_s[i], prev_recv);  // FIFO link preserves order
    prev_recv = train.recv_s[i];
  }
  EXPECT_GT(delivered, 40);
}

TEST(ProbeEngine, UdpTrainValidation) {
  const auto dep = testing::tiny_deployment();
  probe_engine eng(dep, 1);
  EXPECT_THROW(eng.udp_train(0, center_fix(dep), 0.0, 10, 100),
               std::invalid_argument);
  EXPECT_THROW(eng.udp_train(0, center_fix(dep), 1e6, 0, 100),
               std::invalid_argument);
}

TEST(ProbeEngine, ProbeCounterAdvances) {
  const auto dep = testing::tiny_deployment();
  probe_engine eng(dep, 1);
  EXPECT_EQ(eng.probes_run(), 0u);
  eng.ping_probe(0, center_fix(dep));
  eng.udp_probe(0, center_fix(dep));
  EXPECT_EQ(eng.probes_run(), 2u);
}

TEST(SpotLocations, CoveredByAllOperators) {
  const auto dep = testing::tiny_deployment();
  const auto locs = default_spot_locations(dep, 3, 99);
  ASSERT_GE(locs.size(), 1u);
  for (const auto& loc : locs) {
    for (std::size_t n = 0; n < dep.size(); ++n) {
      EXPECT_TRUE(dep.conditions_at(n, loc, 12 * 3600.0).in_coverage);
    }
  }
}

TEST(Collect, SpotDatasetShape) {
  const auto dep = testing::tiny_deployment();
  probe_engine eng(dep, 2);
  spot_params params;
  params.days = 1;
  params.udp_interval_s = 1800.0;  // keep the test fast
  params.tcp_interval_s = 3600.0;
  params.udp_packets = 20;
  params.tcp_bytes = 60'000;
  const auto locs = default_spot_locations(dep, 1, 99);
  ASSERT_FALSE(locs.empty());
  const auto ds = collect_spot(eng, {locs[0]}, params);
  EXPECT_GT(ds.size(), 40u);
  // Both operators and both kinds present.
  EXPECT_GT(ds.select("NetB", trace::probe_kind::udp_burst).size(), 10u);
  EXPECT_GT(ds.select("NetC", trace::probe_kind::udp_burst).size(), 10u);
  EXPECT_GT(ds.select("NetB", trace::probe_kind::tcp_download).size(), 5u);
  // All records at the spot location.
  for (const auto& r : ds.records()) {
    EXPECT_LT(geo::distance_m(r.pos, locs[0]), 1.0);
    EXPECT_DOUBLE_EQ(r.speed_mps, 0.0);
  }
}

TEST(Collect, ProximateRecordsStayNearCenter) {
  const auto dep = testing::tiny_deployment();
  probe_engine eng(dep, 2);
  proximate_params params;
  params.days = 1;
  params.probe_interval_s = 1200.0;
  params.udp_packets = 20;
  params.tcp_bytes = 60'000;
  const auto center = dep.proj().to_lat_lon({200.0, 200.0});
  const auto ds = collect_proximate(eng, center, params);
  EXPECT_GT(ds.size(), 20u);
  for (const auto& r : ds.records()) {
    EXPECT_LT(geo::distance_m(r.pos, center), 300.0);
  }
}

TEST(Collect, StandaloneCoversManyZonesSingleNetwork) {
  const auto dep = testing::tiny_deployment();
  probe_engine eng(dep, 2);
  standalone_params params;
  params.days = 1;
  params.buses = 2;
  params.routes = 3;
  params.probe_interval_s = 900.0;
  params.tcp_bytes = 60'000;
  params.network_index = 0;
  const auto ds = collect_standalone(eng, params);
  EXPECT_GT(ds.size(), 50u);
  for (const auto& r : ds.records()) EXPECT_EQ(r.network, "NetB");
  // Should visit multiple zones.
  const geo::zone_grid grid(dep.proj(), 250.0);
  EXPECT_GT(ds.group_by_zone(grid).size(), 3u);
  // Mix of TCP and pings.
  EXPECT_GT(ds.select("NetB", trace::probe_kind::tcp_download).size(), 20u);
  EXPECT_GT(
      ds.filter([](const trace::measurement_record& r) {
          return r.kind == trace::probe_kind::ping;
        }).size(),
      20u);
}

TEST(Collect, WiroverIsPingOnlyBothNetworks) {
  const auto dep = testing::tiny_deployment();
  probe_engine eng(dep, 2);
  wirover_params params;
  params.days = 1;
  params.buses = 1;
  params.train_interval_s = 900.0;
  params.pings_per_train = 4;
  params.ping_spacing_s = 1.0;
  const auto ds = collect_wirover(eng, params);
  EXPECT_GT(ds.size(), 20u);
  for (const auto& r : ds.records()) {
    EXPECT_EQ(r.kind, trace::probe_kind::ping);
  }
  EXPECT_GT(ds.filter([](const auto& r) { return r.network == "NetB"; }).size(),
            10u);
  EXPECT_GT(ds.filter([](const auto& r) { return r.network == "NetC"; }).size(),
            10u);
  // Mobile collection: speeds recorded.
  bool any_moving = false;
  for (const auto& r : ds.records()) any_moving |= r.speed_mps > 1.0;
  EXPECT_TRUE(any_moving);
}

TEST(Collect, SegmentCollectsAllKindsAllNetworks) {
  const auto dep = testing::tiny_deployment();
  probe_engine eng(dep, 2);
  segment_params params;
  params.days = 1;
  params.probe_interval_s = 1800.0;
  params.tcp_bytes = 60'000;
  params.udp_packets = 20;
  const auto ds = collect_segment(eng, params);
  EXPECT_GT(ds.size(), 30u);
  for (const char* net : {"NetB", "NetC"}) {
    EXPECT_GT(ds.select(net, trace::probe_kind::tcp_download).size(), 3u);
    EXPECT_GT(ds.select(net, trace::probe_kind::udp_burst).size(), 3u);
  }
}

TEST(Collect, DeterministicDatasets) {
  const auto dep1 = testing::tiny_deployment();
  const auto dep2 = testing::tiny_deployment();
  probe_engine e1(dep1, 2), e2(dep2, 2);
  spot_params params;
  params.days = 1;
  params.udp_interval_s = 3600.0;
  params.tcp_interval_s = 7200.0;
  params.udp_packets = 10;
  params.tcp_bytes = 30'000;
  const auto loc = dep1.proj().to_lat_lon({100.0, 100.0});
  const auto a = collect_spot(e1, {loc}, params);
  const auto b = collect_spot(e2, {loc}, params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records()[i].throughput_bps,
                     b.records()[i].throughput_bps);
  }
}

TEST(ProbeEngine, SlottedSchedulePreservesMeanRate) {
  // The slotted service model must not change the long-run average rate:
  // a saturating train's delivered rate matches the slow-field share.
  const auto dep = testing::tiny_deployment();
  probe_engine eng(dep, 9);
  const auto fix = center_fix(dep);
  const auto lc =
      dep.network(0).conditions_at(dep.proj().to_xy(fix.pos), fix.time_s);
  ASSERT_TRUE(lc.in_coverage);

  const auto train = eng.udp_train(0, fix, 20e6, 600, 1200);
  int first = -1, last = -1, delivered = 0;
  for (std::size_t i = 0; i < train.recv_s.size(); ++i) {
    if (train.recv_s[i] < 0.0) continue;
    if (first < 0) first = static_cast<int>(i);
    last = static_cast<int>(i);
    ++delivered;
  }
  ASSERT_GT(delivered, 100);
  const double span = train.recv_s[static_cast<std::size_t>(last)] -
                      train.recv_s[static_cast<std::size_t>(first)];
  const double rate = (delivered - 1) * 1200.0 * 8.0 / span;
  EXPECT_NEAR(rate, lc.capacity_bps, lc.capacity_bps * 0.35);
}

TEST(ProbeEngine, BackToBackPairsSeeBurstRate) {
  // Packet pairs measure the burst (slot) rate, which sits above the mean
  // share -- the mechanism behind WBest's overestimated capacity stage.
  const auto dep = testing::tiny_deployment();
  probe_engine eng(dep, 9);
  const auto fix = center_fix(dep);
  const auto lc =
      dep.network(0).conditions_at(dep.proj().to_xy(fix.pos), fix.time_s);

  stats::running_stats pair_rates;
  for (int i = 0; i < 40; ++i) {
    mobility::gps_fix f = fix;
    f.time_s += i * 1.0;
    const auto pair = eng.udp_train(0, f, 50e6, 2, 1200);
    if (pair.recv_s[0] < 0.0 || pair.recv_s[1] < 0.0) continue;
    const double disp = pair.recv_s[1] - pair.recv_s[0];
    if (disp > 0.0) pair_rates.add(1200.0 * 8.0 / disp);
  }
  ASSERT_GT(pair_rates.count(), 20u);
  // Median-ish mean pair rate exceeds the average share noticeably.
  EXPECT_GT(pair_rates.mean(), 1.10 * lc.capacity_bps);
}

TEST(ProbeEngine, UplinkProbeMeasuresUplinkDirection) {
  const auto dep = testing::tiny_deployment();
  probe_engine eng(dep, 1);
  const auto fix = center_fix(dep);
  const auto up = eng.udp_uplink_probe(0, fix);
  EXPECT_TRUE(up.success);
  EXPECT_EQ(up.kind, trace::probe_kind::udp_uplink);
  EXPECT_GT(up.throughput_bps, 50e3);
  // Uplink stays under the EV-DO Rev.A uplink cap.
  EXPECT_LT(up.throughput_bps, 1.8e6);
}

TEST(ProbeEngine, UplinkAndDownlinkAreAsymmetric) {
  // Table 1: the two directions have different caps and loads; measured
  // rates must not be identical.
  const auto dep = testing::tiny_deployment();
  probe_engine eng(dep, 1);
  const auto fix = center_fix(dep);
  stats::running_stats down, up;
  for (int i = 0; i < 10; ++i) {
    mobility::gps_fix f = fix;
    f.time_s += i * 600.0;
    const auto d = eng.udp_probe(0, f);
    const auto u = eng.udp_uplink_probe(0, f);
    if (d.success) down.add(d.throughput_bps);
    if (u.success) up.add(u.throughput_bps);
  }
  ASSERT_GT(down.count(), 5u);
  ASSERT_GT(up.count(), 5u);
  EXPECT_GT(std::abs(up.mean() - down.mean()), 0.05 * down.mean());
}

TEST(ProbeEngine, UplinkMetricRoutesThroughRecordApi) {
  const auto dep = testing::tiny_deployment();
  probe_engine eng(dep, 1);
  const auto rec = eng.udp_uplink_probe(0, center_fix(dep));
  EXPECT_DOUBLE_EQ(trace::value_of(rec, trace::metric::uplink_throughput_bps),
                   rec.throughput_bps);
  EXPECT_DOUBLE_EQ(trace::value_of(rec, trace::metric::udp_throughput_bps),
                   0.0);
  EXPECT_EQ(trace::kind_for(trace::metric::uplink_throughput_bps),
            trace::probe_kind::udp_uplink);
}

}  // namespace
}  // namespace wiscape::probe



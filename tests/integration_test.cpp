// End-to-end integration: a miniature city runs the full WiScape loop --
// fleet drives, agents check in, coordinator schedules, probes execute,
// zone table publishes estimates, epochs re-estimate, applications consume
// the product -- all inside one test binary.
#include <gtest/gtest.h>

#include <sstream>

#include "apps/multihoming.h"
#include "apps/surge.h"
#include "apps/zone_knowledge.h"
#include "core/client_agent.h"
#include "core/coordinator.h"
#include "core/validation.h"
#include "mobility/fleet.h"
#include "mobility/route_gen.h"
#include "probe/collect.h"
#include "test_util.h"
#include "trace/csv.h"

namespace wiscape {
namespace {

TEST(Integration, FullWiscapeLoopPublishesEstimates) {
  const auto dep = testing::tiny_deployment();
  probe::probe_engine engine(dep, 21);

  geo::zone_grid grid(dep.proj(), 250.0);
  core::coordinator_config cfg;
  cfg.default_samples_per_epoch = 6;
  cfg.epochs.default_epoch_s = 600.0;
  core::coordinator coord(grid, dep.names(), cfg, 31);

  // Two clients (one per network) riding one bus line.
  std::vector<geo::polyline> routes{geo::straight_route(
      dep.proj().to_lat_lon({-1200.0, 0.0}),
      dep.proj().to_lat_lon({1200.0, 0.0}), 4)};
  mobility::fleet fleet(std::move(routes), 1, mobility::transit_bus_params(),
                        stats::rng_stream(8));
  core::client_agent agent_b(coord, engine, 0);
  core::client_agent agent_c(coord, engine, 1);

  int ran = 0;
  for (double t = 8.0 * 3600; t < 11.0 * 3600; t += 60.0) {
    const auto fix = fleet.fix_at(0, t);
    if (!fix) continue;
    if (agent_b.step(*fix, 2)) ++ran;
    if (agent_c.step(*fix, 2)) ++ran;
  }
  ASSERT_GT(ran, 20);

  // At least one zone must have published a frozen estimate by now.
  int published = 0;
  for (const auto& key : coord.table_for_test().keys()) {
    published += coord.table_for_test().latest(key).has_value() ? 1 : 0;
  }
  EXPECT_GT(published, 0);

  // Epoch re-estimation must not crash and must respect clamps.
  coord.recompute_epochs();
  for (const auto& key : coord.table_for_test().keys()) {
    const auto status = coord.status_of(key.zone);
    EXPECT_GE(status.epoch_duration_s, cfg.epochs.min_epoch_s);
    EXPECT_LE(status.epoch_duration_s, cfg.epochs.max_epoch_s);
  }
}

TEST(Integration, CollectedDatasetSurvivesCsvRoundTrip) {
  const auto dep = testing::tiny_deployment();
  probe::probe_engine engine(dep, 22);
  probe::spot_params params;
  params.days = 1;
  params.udp_interval_s = 3600.0;
  params.tcp_interval_s = 7200.0;
  params.udp_packets = 10;
  params.tcp_bytes = 40'000;
  const auto loc = dep.proj().to_lat_lon({100.0, 100.0});
  const auto ds = probe::collect_spot(engine, {loc}, params);
  ASSERT_GT(ds.size(), 10u);

  std::stringstream ss;
  trace::write_csv(ss, ds);
  const auto back = trace::read_csv(ss);
  ASSERT_EQ(back.size(), ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(back.records()[i].kind, ds.records()[i].kind);
    EXPECT_EQ(back.records()[i].network, ds.records()[i].network);
    EXPECT_NEAR(back.records()[i].throughput_bps,
                ds.records()[i].throughput_bps, 1.0);
  }
}

TEST(Integration, ClientSourcedEstimateMatchesGroundTruth) {
  // A compressed Fig 8: collect a dense spot dataset, split client/ground,
  // and check WiScape's 100-sample estimate lands close.
  const auto dep = testing::tiny_deployment();
  probe::probe_engine engine(dep, 23);
  probe::spot_params params;
  params.days = 1;
  params.udp_interval_s = 120.0;
  params.tcp_interval_s = 300.0;
  params.udp_packets = 20;
  params.tcp_bytes = 60'000;
  const auto loc = dep.proj().to_lat_lon({100.0, 100.0});
  const auto ds = probe::collect_spot(engine, {loc}, params);

  geo::zone_grid grid(dep.proj(), 250.0);
  core::validation_config vcfg;
  vcfg.min_zone_samples = 100;
  vcfg.wiscape_samples = 100;
  const auto report = core::validate_estimation(
      ds, grid, trace::metric::tcp_throughput_bps, "NetB", vcfg, 99);
  ASSERT_FALSE(report.zones.empty());
  EXPECT_LT(report.max_error(), 0.20);
}

TEST(Integration, ZoneKnowledgeFromCollectedDataDrivesApps) {
  const auto dep = testing::tiny_deployment();
  probe::probe_engine engine(dep, 24);
  probe::segment_params params;
  params.days = 1;
  params.probe_interval_s = 600.0;
  params.tcp_bytes = 60'000;
  params.udp_packets = 10;
  const auto training = probe::collect_segment(engine, params);
  ASSERT_GT(training.size(), 20u);

  const apps::zone_knowledge zk(training, geo::zone_grid(dep.proj(), 250.0),
                                dep.names());
  apps::surge_config scfg;
  scfg.pages = 15;
  scfg.max_bytes = 300'000;
  const auto pages = apps::surge_pages(scfg, 3);
  const auto route = geo::straight_route(
      dep.proj().to_lat_lon({-1500.0, 0.0}),
      dep.proj().to_lat_lon({1500.0, 0.0}), 4);

  apps::drive_config drive;
  const auto result = apps::run_multisim(
      engine, &zk, apps::multisim_policy::wiscape, 0, pages, route, drive, 7);
  EXPECT_EQ(result.pages, pages.size());
  EXPECT_GT(result.total_s, 0.0);
}

TEST(Integration, StadiumEventDetectedByChangeAlerts) {
  // Fig 10 in miniature: a demand surge in one zone must raise a >2-sigma
  // latency alert in the coordinator's zone table.
  auto dep = testing::tiny_deployment();
  const geo::xy stadium{0.0, 0.0};
  const double game_start = 13.0 * 3600, game_end = 16.0 * 3600;
  for (std::size_t n = 0; n < dep.size(); ++n) {
    dep.network(n).add_event({stadium, 600.0, game_start, game_end, 0.55});
  }
  probe::probe_engine engine(dep, 25);

  geo::zone_grid grid(dep.proj(), 250.0);
  core::coordinator_config cfg;
  cfg.epochs.default_epoch_s = 1800.0;
  core::coordinator coord(grid, dep.names(), cfg, 31);

  const mobility::gps_fix at_stadium{dep.proj().to_lat_lon(stadium), 0.0, 0.0};
  probe::ping_probe_params ping;
  ping.count = 4;
  ping.interval_s = 1.0;
  for (double t = 9.0 * 3600; t < 18.0 * 3600; t += 300.0) {
    mobility::gps_fix fix = at_stadium;
    fix.time_s = t;
    coord.report(engine.ping_probe(0, fix, ping));
  }

  bool latency_alert = false;
  for (const auto& alert : coord.alerts()) {
    if (alert.key.metric == trace::metric::rtt_s &&
        alert.new_mean > alert.previous_mean) {
      latency_alert = true;
    }
  }
  EXPECT_TRUE(latency_alert);
}

}  // namespace
}  // namespace wiscape

#include <gtest/gtest.h>

#include <optional>

#include "netsim/path.h"
#include "transport/ping.h"
#include "transport/tcp.h"
#include "transport/udp.h"

namespace wiscape::transport {
namespace {

netsim::duplex_path make_path(netsim::simulation& sim, double down_bps,
                              double delay_s, double loss = 0.0,
                              std::uint64_t seed = 1) {
  auto down = netsim::fixed_profile(down_bps, delay_s, loss);
  auto up = netsim::fixed_profile(1e6, delay_s);
  return netsim::duplex_path(sim, down, up, stats::rng_stream(seed));
}

// ------------------------------------------------------------------ TCP ----

TEST(Tcp, CompletesCleanTransfer) {
  netsim::simulation sim;
  auto path = make_path(sim, 2e6, 0.05);
  tcp_config cfg;
  cfg.transfer_bytes = 500'000;
  std::optional<tcp_result> result;
  auto flow = start_tcp_download(sim, path, cfg, 1,
                                 [&](const tcp_result& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->completed);
  EXPECT_EQ(result->bytes, cfg.transfer_bytes);
  EXPECT_GT(result->throughput_bps, 0.0);
  EXPECT_TRUE(flow->finished());
}

TEST(Tcp, ThroughputBelowLinkRateButReasonable) {
  netsim::simulation sim;
  auto path = make_path(sim, 2e6, 0.05);
  tcp_config cfg;
  cfg.transfer_bytes = 1'000'000;
  std::optional<tcp_result> result;
  start_tcp_download(sim, path, cfg, 1,
                     [&](const tcp_result& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_LE(result->throughput_bps, 2e6);
  EXPECT_GT(result->throughput_bps, 0.5 * 2e6);  // should get most of the link
}

TEST(Tcp, SlowStartPenalizesShortTransfers) {
  // Relative throughput of a short transfer is lower than a long one.
  auto run = [](std::size_t bytes) {
    netsim::simulation sim;
    auto path = make_path(sim, 2e6, 0.1);
    tcp_config cfg;
    cfg.transfer_bytes = bytes;
    std::optional<tcp_result> result;
    start_tcp_download(sim, path, cfg, 1,
                       [&](const tcp_result& r) { result = r; });
    sim.run();
    return result->throughput_bps;
  };
  EXPECT_LT(run(20'000), 0.8 * run(2'000'000));
}

TEST(Tcp, SurvivesRandomLoss) {
  netsim::simulation sim;
  auto path = make_path(sim, 2e6, 0.05, 0.02, 9);
  tcp_config cfg;
  cfg.transfer_bytes = 300'000;
  std::optional<tcp_result> result;
  start_tcp_download(sim, path, cfg, 1,
                     [&](const tcp_result& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->completed);
  EXPECT_GT(result->retransmits + result->timeouts, 0u);
}

TEST(Tcp, HeavyLossStillCompletes) {
  netsim::simulation sim;
  auto path = make_path(sim, 2e6, 0.05, 0.15, 10);
  tcp_config cfg;
  cfg.transfer_bytes = 100'000;
  std::optional<tcp_result> result;
  start_tcp_download(sim, path, cfg, 1,
                     [&](const tcp_result& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->completed);
}

TEST(Tcp, AbortReportsPartialResult) {
  netsim::simulation sim;
  auto path = make_path(sim, 50e3, 0.05);  // slow: 1 MB would take ~160 s
  tcp_config cfg;
  cfg.transfer_bytes = 1'000'000;
  std::optional<tcp_result> result;
  auto flow = start_tcp_download(sim, path, cfg, 1,
                                 [&](const tcp_result& r) { result = r; });
  sim.run_until(5.0);
  EXPECT_FALSE(result.has_value());
  flow->abort();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->completed);
  EXPECT_LT(result->bytes, cfg.transfer_bytes);
}

TEST(Tcp, AbortIsIdempotent) {
  netsim::simulation sim;
  auto path = make_path(sim, 50e3, 0.05);
  tcp_config cfg;
  int calls = 0;
  auto flow = start_tcp_download(sim, path, cfg, 1,
                                 [&](const tcp_result&) { ++calls; });
  flow->abort();
  flow->abort();
  EXPECT_EQ(calls, 1);
}

TEST(Tcp, SrttApproximatesPathRtt) {
  netsim::simulation sim;
  auto path = make_path(sim, 2e6, 0.08);  // RTT floor = 0.16 s
  tcp_config cfg;
  cfg.transfer_bytes = 500'000;
  std::optional<tcp_result> result;
  start_tcp_download(sim, path, cfg, 1,
                     [&](const tcp_result& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->srtt_s, 0.16 - 0.01);
  EXPECT_LT(result->srtt_s, 1.0);
}

TEST(Tcp, TinyTransferSinglePacket) {
  netsim::simulation sim;
  auto path = make_path(sim, 1e6, 0.05);
  tcp_config cfg;
  cfg.transfer_bytes = 100;  // less than one MSS
  std::optional<tcp_result> result;
  start_tcp_download(sim, path, cfg, 1,
                     [&](const tcp_result& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->completed);
}

// ------------------------------------------------------------------ UDP ----

TEST(Udp, AllPacketsDeliveredOnCleanLink) {
  netsim::simulation sim;
  auto path = make_path(sim, 2e6, 0.05);
  udp_config cfg;
  cfg.packet_count = 50;
  cfg.interval_s = 0.01;
  std::optional<udp_result> result;
  start_udp_flow(sim, path, cfg, 1, [&](const udp_result& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->received, 50u);
  EXPECT_DOUBLE_EQ(result->loss_rate, 0.0);
  EXPECT_EQ(result->delays_s.size(), 50u);
}

TEST(Udp, ThroughputMatchesOfferedWhenUnderCapacity) {
  netsim::simulation sim;
  auto path = make_path(sim, 10e6, 0.05);
  udp_config cfg;
  cfg.packet_count = 100;
  cfg.packet_bytes = 1250;  // 10 kbit per packet
  cfg.interval_s = 0.010;   // 1 Mbps offered
  std::optional<udp_result> result;
  start_udp_flow(sim, path, cfg, 1, [&](const udp_result& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->throughput_bps, 1e6, 0.1e6);
}

TEST(Udp, SaturatingBurstMeasuresCapacity) {
  netsim::simulation sim;
  auto path = make_path(sim, 1e6, 0.05);
  udp_config cfg;
  cfg.packet_count = 200;
  cfg.packet_bytes = 1250;
  cfg.interval_s = 0.001;  // 10 Mbps offered onto a 1 Mbps link
  std::optional<udp_result> result;
  start_udp_flow(sim, path, cfg, 1, [&](const udp_result& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->throughput_bps, 1e6, 0.15e6);
  EXPECT_GT(result->loss_rate, 0.3);  // queue overflow drops most packets
}

TEST(Udp, LossRateTracksLinkLoss) {
  netsim::simulation sim;
  auto path = make_path(sim, 10e6, 0.05, 0.2, 5);
  udp_config cfg;
  cfg.packet_count = 1000;
  cfg.interval_s = 0.002;
  std::optional<udp_result> result;
  start_udp_flow(sim, path, cfg, 1, [&](const udp_result& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->loss_rate, 0.2, 0.04);
}

TEST(Udp, JitterZeroOnConstantDelayLink) {
  netsim::simulation sim;
  auto path = make_path(sim, 100e6, 0.05);
  udp_config cfg;
  cfg.packet_count = 50;
  cfg.interval_s = 0.02;
  std::optional<udp_result> result;
  start_udp_flow(sim, path, cfg, 1, [&](const udp_result& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->jitter_s, 0.0, 1e-9);
}

TEST(Udp, JitterPositiveWithDelayNoise) {
  netsim::simulation sim;
  auto down = netsim::fixed_profile(100e6, 0.05);
  down.delay_noise_sigma_s = 0.005;
  auto up = netsim::fixed_profile(1e6, 0.05);
  netsim::duplex_path path(sim, down, up, stats::rng_stream(3));
  udp_config cfg;
  cfg.packet_count = 200;
  cfg.interval_s = 0.02;
  std::optional<udp_result> result;
  start_udp_flow(sim, path, cfg, 1, [&](const udp_result& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->jitter_s, 0.001);
  EXPECT_LT(result->jitter_s, 0.02);
}

TEST(Udp, TotalLossReportsZeroReceived) {
  netsim::simulation sim;
  auto path = make_path(sim, 1e6, 0.05, 1.0);
  udp_config cfg;
  cfg.packet_count = 20;
  std::optional<udp_result> result;
  start_udp_flow(sim, path, cfg, 1, [&](const udp_result& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->received, 0u);
  EXPECT_DOUBLE_EQ(result->loss_rate, 1.0);
}

// ----------------------------------------------------------------- ping ----

TEST(Ping, RttMatchesPathDelay) {
  netsim::simulation sim;
  auto path = make_path(sim, 1e6, 0.06);  // 0.12 s floor + serialization
  ping_config cfg;
  cfg.count = 10;
  cfg.interval_s = 0.5;
  std::optional<ping_result> result;
  start_ping_train(sim, path, cfg, 1,
                   [&](const ping_result& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->replies, 10u);
  EXPECT_EQ(result->failures, 0u);
  EXPECT_NEAR(result->mean_rtt_s, 0.12, 0.02);
  EXPECT_LE(result->min_rtt_s, result->mean_rtt_s);
  EXPECT_GE(result->max_rtt_s, result->mean_rtt_s);
}

TEST(Ping, TimeoutsCountAsFailures) {
  netsim::simulation sim;
  auto path = make_path(sim, 1e6, 0.06, 1.0);  // downlink drops everything
  ping_config cfg;
  cfg.count = 5;
  cfg.interval_s = 0.2;
  cfg.timeout_s = 1.0;
  std::optional<ping_result> result;
  start_ping_train(sim, path, cfg, 1,
                   [&](const ping_result& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->failures, 5u);
  EXPECT_EQ(result->replies, 0u);
  EXPECT_DOUBLE_EQ(result->mean_rtt_s, 0.0);
}

TEST(Ping, PartialLossMixedOutcome) {
  netsim::simulation sim;
  auto path = make_path(sim, 1e6, 0.06, 0.5, 17);
  ping_config cfg;
  cfg.count = 40;
  cfg.interval_s = 0.1;
  cfg.timeout_s = 1.0;
  std::optional<ping_result> result;
  start_ping_train(sim, path, cfg, 1,
                   [&](const ping_result& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->replies + result->failures, 40u);
  EXPECT_GT(result->replies, 5u);
  EXPECT_GT(result->failures, 5u);
}

TEST(Ping, SlowLinkRttIncludesSerialization) {
  netsim::simulation sim;
  auto path = make_path(sim, 64e3, 0.05);  // 64 kbps: 64-byte reply ~ 8 ms
  ping_config cfg;
  cfg.count = 3;
  std::optional<ping_result> result;
  start_ping_train(sim, path, cfg, 1,
                   [&](const ping_result& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->mean_rtt_s, 0.10);
}

}  // namespace
}  // namespace wiscape::transport

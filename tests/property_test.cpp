// Parameterized property-style sweeps over seeds, zone radii and operators:
// the invariants the paper's design rests on must hold across the parameter
// space, not at one lucky point.
#include <gtest/gtest.h>

#include <cmath>

#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/dominance.h"
#include "core/sample_planner.h"
#include "core/sharded_coordinator.h"
#include "obs/names.h"
#include "obs/registry.h"
#include "proto/server.h"
#include "geo/zone_grid.h"
#include "probe/engine.h"
#include "proto/messages.h"
#include "trace/hygiene.h"
#include "stats/allan.h"
#include "stats/histogram.h"
#include "stats/sampling.h"
#include "stats/summary.h"
#include "test_util.h"

namespace wiscape {
namespace {

// ---------------------------------------------------- seeds x determinism ----

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, DeploymentDeterministicPerSeed) {
  const auto seed = GetParam();
  const auto a = testing::tiny_deployment(seed);
  const auto b = testing::tiny_deployment(seed);
  const geo::xy p{321.0, -123.0};
  for (std::size_t n = 0; n < a.size(); ++n) {
    const auto ca = a.network(n).conditions_at(p, 4321.0);
    const auto cb = b.network(n).conditions_at(p, 4321.0);
    EXPECT_DOUBLE_EQ(ca.capacity_bps, cb.capacity_bps);
    EXPECT_DOUBLE_EQ(ca.rtt_s, cb.rtt_s);
  }
}

TEST_P(SeedSweep, ProbeMetricsStayPhysical) {
  const auto seed = GetParam();
  const auto dep = testing::tiny_deployment(seed);
  probe::probe_engine eng(dep, seed ^ 0xabcd);
  const mobility::gps_fix fix{dep.proj().to_lat_lon({200.0, 100.0}), 0.0,
                              10.0 * 3600};
  probe::tcp_probe_params tcp;
  tcp.bytes = 120'000;
  const auto t = eng.tcp_probe(0, fix, tcp);
  if (t.success) {
    EXPECT_GT(t.throughput_bps, 0.0);
    EXPECT_LE(t.throughput_bps, 3.1e6);  // never above the EV-DO cap
  }
  const auto u = eng.udp_probe(0, fix);
  if (u.success) {
    EXPECT_GE(u.loss_rate, 0.0);
    EXPECT_LE(u.loss_rate, 1.0);
    EXPECT_GE(u.jitter_s, 0.0);
  }
  const auto p = eng.ping_probe(0, fix);
  EXPECT_EQ(p.ping_sent, 12);
  EXPECT_GE(p.ping_failures, 0);
  EXPECT_LE(p.ping_failures, p.ping_sent);
}

TEST_P(SeedSweep, NkldNonNegativeAndIdentityZero) {
  stats::rng_stream rng(GetParam());
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal(50.0, 7.0));
  EXPECT_GE(stats::nkld_of_samples(xs, xs), 0.0);
  EXPECT_LT(stats::nkld_of_samples(xs, xs), 1e-9);
}

TEST_P(SeedSweep, RandomSplitAlwaysPartitions) {
  stats::rng_stream rng(GetParam());
  const auto split = stats::random_split(257, 0.41, rng);
  EXPECT_EQ(split.first.size() + split.second.size(), 257u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 7u, 42u, 1234u, 987654u));

// ------------------------------------------------------- zone radius sweep ----

class RadiusSweep : public ::testing::TestWithParam<double> {};

TEST_P(RadiusSweep, GridRoundTripAtEveryRadius) {
  const double radius = GetParam();
  const geo::zone_grid grid(geo::projection(cellnet::anchors::madison), radius);
  stats::rng_stream rng(3);
  for (int i = 0; i < 50; ++i) {
    const geo::xy p{rng.uniform(-5000.0, 5000.0), rng.uniform(-5000.0, 5000.0)};
    const auto z = grid.zone_of(p);
    EXPECT_EQ(grid.zone_of(grid.center_xy(z)), z);
  }
}

TEST_P(RadiusSweep, IntraZoneSpreadGrowsWithRadius) {
  // Fig 4's driver: spatial capacity spread inside a zone grows (weakly)
  // with zone size. Compare this radius against a tiny 50 m zone.
  const double radius = GetParam();
  if (radius <= 50.0) GTEST_SKIP();
  const auto dep = testing::tiny_deployment(5);
  const auto& net = dep.network(0);
  stats::rng_stream rng(17);

  auto spread_at = [&](double r) {
    stats::running_stats rel;
    for (int zone = 0; zone < 12; ++zone) {
      const geo::xy center{rng.uniform(-1200.0, 1200.0),
                           rng.uniform(-1200.0, 1200.0)};
      stats::running_stats caps;
      for (int i = 0; i < 24; ++i) {
        const geo::xy p{center.x_m + rng.uniform(-r, r),
                        center.y_m + rng.uniform(-r, r)};
        const auto lc = net.conditions_at(p, 12.0 * 3600);
        if (lc.in_coverage) caps.add(lc.capacity_bps);
      }
      if (caps.count() > 10) rel.add(caps.relative_stddev());
    }
    return rel.mean();
  };
  EXPECT_GE(spread_at(radius) + 0.03, spread_at(50.0));
}

INSTANTIATE_TEST_SUITE_P(Radii, RadiusSweep,
                         ::testing::Values(50.0, 150.0, 250.0, 450.0, 750.0));

// ------------------------------------------------------ allan noise sweep ----

class AllanNoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(AllanNoiseSweep, WhiteNoiseAllanScalesWithSigma) {
  const double sigma = GetParam();
  const auto ts = testing::noise_series(20000, 1.0, 100.0, sigma, 9);
  // Allan deviation at tau=1 approximates the per-sample sigma.
  EXPECT_NEAR(stats::allan_deviation(ts, 1.0), sigma, sigma * 0.1 + 0.01);
}

TEST_P(AllanNoiseSweep, AllanAlwaysNonNegative) {
  const double sigma = GetParam();
  const auto ts = testing::noise_series(2000, 1.0, 100.0, sigma, 10);
  for (double tau : {1.0, 7.0, 50.0, 300.0}) {
    EXPECT_GE(stats::allan_deviation(ts, tau), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sigmas, AllanNoiseSweep,
                         ::testing::Values(0.5, 2.0, 8.0, 25.0));

// ----------------------------------------------- planner population sweep ----

struct planner_case {
  double rel_stddev;
  const char* label;
};

class PlannerSweep : public ::testing::TestWithParam<planner_case> {};

TEST_P(PlannerSweep, SubsetMeanConvergesToPopulationMean) {
  const auto param = GetParam();
  stats::rng_stream gen(13);
  std::vector<double> population;
  for (int i = 0; i < 4000; ++i) {
    population.push_back(gen.normal(1000.0, 1000.0 * param.rel_stddev));
  }
  core::planner_config cfg;
  cfg.iterations = 40;
  const core::sample_planner planner(cfg);
  stats::rng_stream rng(14);
  const std::size_t n = planner.packets_for_accuracy(population, rng);
  // Check the claim: n draws average within 3% most of the time.
  double err = 0.0;
  for (int it = 0; it < 40; ++it) {
    const auto sub = stats::sample_without_replacement(population, n, rng);
    err += std::abs(stats::mean(sub) - stats::mean(population)) / 1000.0;
  }
  EXPECT_LE(err / 40.0, 0.05) << param.label;
}

INSTANTIATE_TEST_SUITE_P(
    Populations, PlannerSweep,
    ::testing::Values(planner_case{0.05, "calm"}, planner_case{0.15, "city"},
                      planner_case{0.30, "wild"}));

// -------------------------------------------------- dominance gap sweep ----

class DominanceGapSweep : public ::testing::TestWithParam<double> {};

TEST_P(DominanceGapSweep, WinnerIffGapExceedsSpread) {
  const double gap = GetParam();  // mean separation in units of sigma
  stats::rng_stream r(19);
  const double sigma = 1e5;
  std::vector<std::vector<double>> nets(2);
  for (int i = 0; i < 300; ++i) {
    nets[0].push_back(r.normal(1e6 + gap * sigma, sigma));
    nets[1].push_back(r.normal(1e6, sigma));
  }
  const int winner =
      core::dominant_network(nets, core::preference::higher_is_better);
  // 5th vs 95th percentile gap is ~3.3 sigma: clear separation far beyond
  // that must dominate; tiny separation must not.
  if (gap >= 5.0) {
    EXPECT_EQ(winner, 0) << "gap=" << gap;
  } else if (gap <= 2.0) {
    EXPECT_EQ(winner, -1) << "gap=" << gap;
  }
}

INSTANTIATE_TEST_SUITE_P(Gaps, DominanceGapSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0, 8.0));

// ------------------------------------------------- hygiene & proto fuzz ----

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, HygieneIsIdempotent) {
  stats::rng_stream rng(GetParam());
  trace::dataset ds;
  for (int i = 0; i < 150; ++i) {
    auto r = testing::make_record(
        rng.uniform(0.0, 86400.0), rng.chance(0.5) ? "NetB" : "NetC",
        geo::destination(cellnet::anchors::madison, rng.uniform(0.0, 360.0),
                         rng.uniform(0.0, 20000.0)),
        rng.chance(0.5) ? trace::probe_kind::tcp_download
                        : trace::probe_kind::ping,
        rng.uniform(-1e5, 30e6));
    r.loss_rate = rng.uniform(-0.2, 1.4);
    ds.add(r);
  }
  trace::dataset once, twice;
  const auto rep1 = trace::scrub(ds, {}, once);
  const auto rep2 = trace::scrub(once, {}, twice);
  EXPECT_EQ(once.size(), rep1.kept);
  // A scrubbed dataset passes its own scrub untouched.
  EXPECT_EQ(rep2.kept, once.size());
  EXPECT_EQ(rep2.dropped(), 0u);
}

TEST_P(FuzzSweep, ProtoDecodersNeverAcceptGarbage) {
  stats::rng_stream rng(GetParam());
  static constexpr char alphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789 =._-";
  for (int i = 0; i < 200; ++i) {
    std::string line;
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 120));
    for (std::size_t k = 0; k < len; ++k) {
      line.push_back(alphabet[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(sizeof(alphabet)) - 2))]);
    }
    // Decoders must throw (or the line parses as a valid message, which is
    // astronomically unlikely but permitted); they must never crash.
    try {
      (void)proto::decode_checkin(line);
    } catch (const std::invalid_argument&) {
    }
    try {
      (void)proto::decode_task(line);
    } catch (const std::invalid_argument&) {
    }
    try {
      (void)proto::decode_report(line);
    } catch (const std::invalid_argument&) {
    }
    (void)proto::message_type(line);
  }
  SUCCEED();
}

TEST_P(FuzzSweep, HostileRecordsNeverThrowAndAlwaysAccount) {
  // A hostile-client corpus hammered at a live wire server: NaN/Inf
  // coordinates, zones far outside the +-2^23 index range, thousands of
  // distinct operator names (interner exhaustion), and duplicated REPORTB
  // frames. The coordinator must never throw, and every record must land in
  // exactly one of the accepted/rejected counters.
  stats::rng_stream rng(GetParam());
  geo::projection proj(cellnet::anchors::madison);
  geo::zone_grid grid(proj, 250.0);
  core::sharded_config scfg;
  scfg.num_shards = 1;
  scfg.synchronous = true;  // counters are exact without a flush
  core::sharded_coordinator coord(grid, {"NetB", "NetC"}, scfg, GetParam());
  proto::coordinator_server server(coord);

  obs::registry& reg = obs::registry::global();
  const std::uint64_t accepted0 =
      reg.get_counter(obs::names::kCoordReportsAccepted).value();
  const std::uint64_t rejected0 =
      reg.get_counter(obs::names::kCoordReportsRejected).value();
  const std::uint64_t apply_err0 =
      reg.get_counter(obs::names::kShardedApplyErrors).value();

  std::uint64_t acked = 0, erred_records = 0;
  auto send = [&](std::span<const trace::measurement_record> recs) {
    const std::string reply =
        server.handle(proto::encode_report_batch(recs));
    if (proto::message_type(reply) == "ACK") {
      acked += recs.size();
    } else {
      erred_records += recs.size();
    }
  };

  static constexpr double kPoison[] = {
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      1.0e308,
      -1.0e308,
      4.0e7,   // ~2^23 zones past the grid origin at 250 m
      -4.0e7,
  };
  std::vector<trace::measurement_record> batch;
  for (int i = 0; i < 400; ++i) {
    trace::measurement_record r;
    r.time_s = rng.uniform(0.0, 86400.0);
    r.kind = trace::probe_kind::udp_burst;
    r.success = true;
    r.throughput_bps = rng.uniform(-1e9, 1e9);
    const int shape = static_cast<int>(rng.uniform_int(0, 3));
    if (shape == 0) {
      // Poisoned coordinates on a configured operator.
      r.network = rng.chance(0.5) ? "NetB" : "NetC";
      r.pos = {kPoison[rng.uniform_int(0, 6)], kPoison[rng.uniform_int(0, 6)]};
    } else if (shape == 1) {
      // One-off operator names: floods the per-shard interner.
      r.network = "Hostile" + std::to_string(i) + "_" +
                  std::to_string(GetParam());
      r.pos = proj.to_lat_lon({rng.uniform(-500.0, 500.0), 0.0});
    } else if (shape == 2) {
      // Valid position, poisoned timestamp.
      r.network = "NetB";
      r.pos = proj.to_lat_lon({0.0, rng.uniform(-500.0, 500.0)});
      r.time_s = kPoison[rng.uniform_int(0, 4)];
    } else {
      r.network = "NetC";
      r.pos = proj.to_lat_lon(
          {rng.uniform(-500.0, 500.0), rng.uniform(-500.0, 500.0)});
    }
    batch.push_back(std::move(r));
    if (batch.size() == 25) {
      ASSERT_NO_THROW(send(batch));
      if (rng.chance(0.3)) {
        ASSERT_NO_THROW(send(batch));  // duplicate frame
      }
      batch.clear();
    }
  }
  if (!batch.empty()) {
    ASSERT_NO_THROW(send(batch));
  }

  // 4096+ distinct names in one shard: the interner cap must reject the
  // tail without throwing.
  std::vector<trace::measurement_record> flood;
  const geo::lat_lon pinned = proj.to_lat_lon({100.0, 100.0});
  for (int k = 0; k < 4300; ++k) {
    trace::measurement_record r;
    r.time_s = 100.0;
    r.network = "Flood" + std::to_string(k);
    r.pos = pinned;
    r.kind = trace::probe_kind::ping;
    r.success = true;
    r.rtt_s = 0.1;
    flood.push_back(std::move(r));
    if (flood.size() == 100) {
      ASSERT_NO_THROW(send(flood));
      flood.clear();
    }
  }

  const std::uint64_t accepted_delta =
      reg.get_counter(obs::names::kCoordReportsAccepted).value() - accepted0;
  const std::uint64_t rejected_delta =
      reg.get_counter(obs::names::kCoordReportsRejected).value() - rejected0;
  // Every acked record landed in exactly one counter; nothing threw inside
  // the apply path; erred frames (if any) never reached the counters.
  EXPECT_EQ(acked, accepted_delta + rejected_delta);
  EXPECT_GT(rejected_delta, 0u);  // the corpus genuinely exercised rejection
  EXPECT_EQ(reg.get_counter(obs::names::kShardedApplyErrors).value(),
            apply_err0);
  (void)erred_records;
}

INSTANTIATE_TEST_SUITE_P(Fuzz, FuzzSweep,
                         ::testing::Values(3u, 17u, 2026u));

}  // namespace
}  // namespace wiscape


#include <gtest/gtest.h>

#include <sstream>

#include "core/persist.h"
#include "test_util.h"

namespace wiscape::core {
namespace {

zone_table populated_table() {
  zone_table t(2.0);
  stats::rng_stream r(4);
  const estimate_key a{{3, -2}, "NetB", trace::metric::udp_throughput_bps};
  const estimate_key b{{0, 5}, "NetC", trace::metric::rtt_s};
  for (int epoch = 0; epoch < 4; ++epoch) {
    for (int i = 0; i < 20; ++i) {
      t.add_sample(a, epoch * 100.0 + i, r.normal(1e6, 5e4), 100.0);
      t.add_sample(b, epoch * 100.0 + i, r.normal(0.12, 0.01), 100.0);
    }
  }
  return t;
}

TEST(Persist, RoundTripPreservesHistory) {
  const auto t = populated_table();
  std::stringstream ss;
  save_zone_table(ss, t);
  const auto back = load_zone_table(ss);

  ASSERT_EQ(back.keys().size(), t.keys().size());
  for (const auto& key : t.keys()) {
    const auto orig = t.history(key);
    const auto rest = back.history(key);
    ASSERT_EQ(rest.size(), orig.size());
    for (std::size_t i = 0; i < orig.size(); ++i) {
      EXPECT_NEAR(rest[i].mean, orig[i].mean, 1e-4);
      EXPECT_NEAR(rest[i].stddev, orig[i].stddev, 1e-4);
      EXPECT_EQ(rest[i].samples, orig[i].samples);
      EXPECT_NEAR(rest[i].epoch_start_s, orig[i].epoch_start_s, 1e-3);
    }
  }
}

TEST(Persist, RestoredTableKeepsAccumulating) {
  const auto t = populated_table();
  std::stringstream ss;
  save_zone_table(ss, t);
  auto back = load_zone_table(ss);

  // New samples after a restart roll into fresh epochs with alerts intact.
  // The v2 format carries the interrupted open epoch (20 samples at
  // t = 300..319), so the first post-restart sample first freezes THAT
  // epoch, then accumulates into a new one: +2 frozen estimates, not +1.
  const estimate_key a{{3, -2}, "NetB", trace::metric::udp_throughput_bps};
  const std::size_t before = back.history(a).size();
  for (int i = 0; i < 10; ++i) {
    back.add_sample(a, 1000.0 + i, 1e6, 100.0);
  }
  back.add_sample(a, 1200.0, 1e6, 100.0);  // rollover
  const auto hist = back.history(a);
  ASSERT_EQ(hist.size(), before + 2);
  // The recovered epoch publishes all 20 pre-restart samples.
  EXPECT_EQ(hist[before].samples, 20u);
  EXPECT_NEAR(hist[before].epoch_start_s, 300.0, 1e-9);
}

TEST(Persist, V2RoundTripIsBitExact) {
  const auto t = populated_table();
  std::stringstream ss;
  save_zone_table(ss, t);
  const auto back = load_zone_table(ss);

  // %.17g printing makes the text round trip lossless: every double
  // compares equal bit-for-bit, and re-saving reproduces the same bytes.
  for (const auto& key : t.keys()) {
    const auto orig = t.history(key);
    const auto rest = back.history(key);
    ASSERT_EQ(rest.size(), orig.size());
    for (std::size_t i = 0; i < orig.size(); ++i) {
      EXPECT_EQ(rest[i].mean, orig[i].mean);
      EXPECT_EQ(rest[i].stddev, orig[i].stddev);
      EXPECT_EQ(rest[i].samples, orig[i].samples);
      EXPECT_EQ(rest[i].epoch_start_s, orig[i].epoch_start_s);
    }
  }
  std::stringstream again;
  save_zone_table(again, back);
  EXPECT_EQ(again.str(), ss.str());
}

TEST(Persist, OpenEpochStateRoundTrips) {
  const auto t = populated_table();
  const estimate_key a{{3, -2}, "NetB", trace::metric::udp_throughput_bps};
  const auto open = t.open_state(a);
  ASSERT_TRUE(open.has_value());
  EXPECT_EQ(open->n, 20u);

  std::stringstream ss;
  save_zone_table(ss, t);
  const auto back = load_zone_table(ss);
  const auto restored = back.open_state(a);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->open_start_s, open->open_start_s);
  EXPECT_EQ(restored->n, open->n);
  EXPECT_EQ(restored->mean, open->mean);
  EXPECT_EQ(restored->m2, open->m2);
}

TEST(Persist, LoadsLegacyV1Header) {
  // Pre-v2 snapshots (EST lines only, fixed precision) must keep loading.
  std::stringstream v1(
      "WISCAPE-ZONETABLE v1\n"
      "EST 3:-2 NetB udp_throughput 0.000 1000000.0 50000.0 20\n");
  const auto back = load_zone_table(v1);
  const estimate_key a{{3, -2}, "NetB", trace::metric::udp_throughput_bps};
  const auto hist = back.history(a);
  ASSERT_EQ(hist.size(), 1u);
  EXPECT_EQ(hist[0].samples, 20u);
  EXPECT_FALSE(back.open_state(a).has_value());
}

TEST(Persist, DeterministicFileOrder) {
  const auto t = populated_table();
  std::stringstream s1, s2;
  save_zone_table(s1, t);
  save_zone_table(s2, t);
  EXPECT_EQ(s1.str(), s2.str());
}

TEST(Persist, EmptyTableRoundTrip) {
  zone_table t;
  std::stringstream ss;
  save_zone_table(ss, t);
  const auto back = load_zone_table(ss);
  EXPECT_TRUE(back.keys().empty());
}

TEST(Persist, RejectsMalformedInput) {
  std::stringstream bad_header("nope\n");
  EXPECT_THROW(load_zone_table(bad_header), std::invalid_argument);
  std::stringstream bad_line("WISCAPE-ZONETABLE v1\nEST garbage\n");
  EXPECT_THROW(load_zone_table(bad_line), std::invalid_argument);
  std::stringstream bad_zone(
      "WISCAPE-ZONETABLE v1\nEST nozone NetB rtt 0 1 1 1\n");
  EXPECT_THROW(load_zone_table(bad_zone), std::invalid_argument);
  std::stringstream bad_metric(
      "WISCAPE-ZONETABLE v1\nEST 1:1 NetB warp 0 1 1 1\n");
  EXPECT_THROW(load_zone_table(bad_metric), std::invalid_argument);
  EXPECT_THROW(load_zone_table_file("/nonexistent/x"), std::runtime_error);
}

TEST(Persist, FileRoundTrip) {
  const auto t = populated_table();
  const std::string path = ::testing::TempDir() + "/wiscape_table.txt";
  save_zone_table_file(path, t);
  const auto back = load_zone_table_file(path);
  EXPECT_EQ(back.keys().size(), t.keys().size());
}

TEST(MetricFromString, RoundTripsAllMetrics) {
  for (auto m : {trace::metric::tcp_throughput_bps,
                 trace::metric::udp_throughput_bps, trace::metric::loss_rate,
                 trace::metric::jitter_s, trace::metric::rtt_s,
                 trace::metric::uplink_throughput_bps}) {
    EXPECT_EQ(trace::metric_from_string(trace::to_string(m)), m);
  }
  EXPECT_THROW(trace::metric_from_string("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace wiscape::core

#include <gtest/gtest.h>

#include "test_util.h"
#include "trace/hygiene.h"

namespace wiscape::trace {
namespace {

const geo::lat_lon here = cellnet::anchors::madison;

TEST(Hygiene, CleanDataPassesUntouched) {
  dataset ds;
  for (int i = 0; i < 20; ++i) {
    ds.add(testing::make_record(i * 60.0, "NetB",
                                geo::destination(here, 90.0, i * 100.0),
                                trace::probe_kind::tcp_download, 1e6 + i));
  }
  dataset out;
  const auto rep = scrub(ds, {}, out);
  EXPECT_EQ(rep.kept, 20u);
  EXPECT_EQ(rep.dropped(), 0u);
}

TEST(Hygiene, TeleportingFixDropped) {
  dataset ds;
  ds.add(testing::make_record(0.0, "NetB", here,
                              trace::probe_kind::tcp_download, 1e6));
  // 100 km in 10 seconds: impossible.
  ds.add(testing::make_record(10.0, "NetB",
                              geo::destination(here, 0.0, 100'000.0),
                              trace::probe_kind::tcp_download, 1e6));
  dataset out;
  const auto rep = scrub(ds, {}, out);
  EXPECT_EQ(rep.dropped_teleport, 1u);
  EXPECT_EQ(rep.kept, 1u);
}

TEST(Hygiene, TeleportCheckIsPerStream) {
  // Two different networks at far-apart positions are separate streams:
  // no teleport between them.
  dataset ds;
  ds.add(testing::make_record(0.0, "NetB", here,
                              trace::probe_kind::tcp_download, 1e6));
  ds.add(testing::make_record(10.0, "NetC",
                              geo::destination(here, 0.0, 100'000.0),
                              trace::probe_kind::tcp_download, 1e6));
  dataset out;
  const auto rep = scrub(ds, {}, out);
  EXPECT_EQ(rep.dropped_teleport, 0u);
  EXPECT_EQ(rep.kept, 2u);
}

TEST(Hygiene, NegativeAndImpossibleMetricsDropped) {
  dataset ds;
  auto bad_loss = testing::make_record(0.0, "NetB", here,
                                       trace::probe_kind::udp_burst, 1e6);
  bad_loss.loss_rate = 1.4;
  ds.add(bad_loss);
  auto bad_jitter = testing::make_record(1.0, "NetB", here,
                                         trace::probe_kind::udp_burst, 1e6);
  bad_jitter.jitter_s = -0.01;
  ds.add(bad_jitter);
  auto bad_pings = testing::make_record(2.0, "NetB", here,
                                        trace::probe_kind::ping, 0.1);
  bad_pings.ping_failures = 99;  // more than sent
  ds.add(bad_pings);
  dataset out;
  const auto rep = scrub(ds, {}, out);
  EXPECT_EQ(rep.dropped_negative, 3u);
  EXPECT_EQ(rep.kept, 0u);
}

TEST(Hygiene, ImplausibleThroughputDropped) {
  dataset ds;
  ds.add(testing::make_record(0.0, "NetB", here,
                              trace::probe_kind::tcp_download, 90e6));
  dataset out;
  const auto rep = scrub(ds, {}, out);
  EXPECT_EQ(rep.dropped_implausible_rate, 1u);
}

TEST(Hygiene, DuplicatesDropped) {
  dataset ds;
  const auto rec = testing::make_record(5.0, "NetB", here,
                                        trace::probe_kind::tcp_download, 1e6);
  ds.add(rec);
  ds.add(rec);
  ds.add(rec);
  dataset out;
  const auto rep = scrub(ds, {}, out);
  EXPECT_EQ(rep.dropped_duplicate, 2u);
  EXPECT_EQ(rep.kept, 1u);
}

TEST(Hygiene, TimeWindowApplied) {
  dataset ds;
  for (int i = 0; i < 10; ++i) {
    ds.add(testing::make_record(i * 100.0, "NetB", here,
                                trace::probe_kind::ping, 0.1));
  }
  hygiene_config cfg;
  cfg.min_time_s = 200.0;
  cfg.max_time_s = 600.0;
  cfg.drop_duplicates = false;
  dataset out;
  const auto rep = scrub(ds, cfg, out);
  EXPECT_EQ(rep.dropped_out_of_window, 6u);
  EXPECT_EQ(rep.kept, 4u);
}

TEST(Hygiene, RulesCanBeDisabled) {
  dataset ds;
  const auto rec = testing::make_record(5.0, "NetB", here,
                                        trace::probe_kind::tcp_download, 90e6);
  ds.add(rec);
  ds.add(rec);
  hygiene_config cfg;
  cfg.max_throughput_bps = 0.0;
  cfg.drop_duplicates = false;
  cfg.max_plausible_speed_mps = 0.0;
  dataset out;
  const auto rep = scrub(ds, cfg, out);
  EXPECT_EQ(rep.kept, 2u);
}

TEST(Hygiene, SummaryMentionsCounts) {
  dataset ds;
  ds.add(testing::make_record(0.0, "NetB", here, trace::probe_kind::ping, 0.1));
  dataset out;
  const auto rep = scrub(ds, {}, out);
  EXPECT_NE(rep.summary().find("kept 1/1"), std::string::npos);
}

}  // namespace
}  // namespace wiscape::trace

// Shared fixtures for the WiScape test suite: a small, fast deployment and
// synthetic series generators.
#pragma once

#include <vector>

#include "cellnet/deployment.h"
#include "cellnet/presets.h"
#include "stats/rng.h"
#include "stats/time_series.h"
#include "trace/dataset.h"

namespace wiscape::testing {

/// A compact two-operator deployment (4 x 4 km) that builds in microseconds
/// and has full coverage in its core.
inline cellnet::deployment tiny_deployment(std::uint64_t seed = 11) {
  geo::projection proj(cellnet::anchors::madison);
  cellnet::extent area{4000.0, 4000.0};
  std::vector<cellnet::operator_config> ops;
  for (const char* name : {"NetB", "NetC"}) {
    cellnet::operator_config o;
    o.name = name;
    o.tech = radio::technology::evdo_rev_a;
    o.seed = stats::rng_stream(seed).fork(name).seed();
    o.tower_spacing_m = 1500.0;
    o.capacity_scale = name[3] == 'B' ? 0.9 : 1.1;
    ops.push_back(o);
  }
  return cellnet::deployment(proj, area, std::move(ops));
}

/// White-noise series: `n` samples at `dt` spacing, N(mean, sigma).
inline stats::time_series noise_series(std::size_t n, double dt, double mean,
                                       double sigma, std::uint64_t seed = 5) {
  stats::rng_stream rng(seed);
  stats::time_series ts;
  for (std::size_t i = 0; i < n; ++i) {
    ts.add(static_cast<double>(i) * dt, rng.normal(mean, sigma));
  }
  return ts;
}

/// Noise plus a slow sinusoidal drift of the given period and amplitude.
inline stats::time_series drift_series(std::size_t n, double dt, double mean,
                                       double noise_sigma, double drift_amp,
                                       double drift_period_s,
                                       std::uint64_t seed = 6) {
  stats::rng_stream rng(seed);
  stats::time_series ts;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * dt;
    ts.add(t, mean + drift_amp * std::sin(2.0 * 3.14159265358979 * t /
                                          drift_period_s) +
                   rng.normal(0.0, noise_sigma));
  }
  return ts;
}

/// A minimal successful record for dataset-level tests.
inline trace::measurement_record make_record(double time_s,
                                             const std::string& net,
                                             geo::lat_lon pos,
                                             trace::probe_kind kind,
                                             double value) {
  trace::measurement_record r;
  r.time_s = time_s;
  r.network = net;
  r.pos = pos;
  r.kind = kind;
  r.success = true;
  switch (kind) {
    case trace::probe_kind::tcp_download:
    case trace::probe_kind::udp_burst:
    case trace::probe_kind::udp_uplink:
      r.throughput_bps = value;
      break;
    case trace::probe_kind::ping:
      r.rtt_s = value;
      r.ping_sent = 5;
      break;
  }
  return r;
}

}  // namespace wiscape::testing

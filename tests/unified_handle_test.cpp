// Unified server request API (ISSUE 10): handle(request_view, reply_buffer&)
// is the single dispatch seam; the old handle()/handle_into() spellings are
// thin wrappers over it. The golden corpus here pins byte-equality across
// all three spellings for both framings -- the api_redesign must not move a
// single reply byte.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/sharded_coordinator.h"
#include "geo/projection.h"
#include "geo/zone_grid.h"
#include "proto/messages.h"
#include "proto/server.h"
#include "proto/wire_v3.h"
#include "trace/record.h"

namespace wiscape {
namespace {

namespace v3 = proto::v3;

struct corpus_fixture {
  geo::projection proj{geo::lat_lon{43.0, -89.4}};
  geo::zone_grid grid{proj, 250.0};
  core::sharded_coordinator coord;
  proto::coordinator_server server;

  static core::sharded_config cfg() {
    core::sharded_config c;
    c.coordinator.epochs.default_epoch_s = 100.0;
    c.num_shards = 1;
    c.synchronous = true;
    return c;
  }

  corpus_fixture() : coord(grid, {"NetB"}, cfg(), 1), server(coord) {
    // Publish one frozen epoch so QUERY draws an EST with real payload.
    std::vector<trace::measurement_record> recs;
    for (int i = 0; i < 12; ++i) {
      trace::measurement_record r;
      r.time_s = 10.0 * i;
      r.network = "NetB";
      r.pos = proj.to_lat_lon(geo::xy{120.0, 80.0});
      r.client_id = 3;
      r.kind = trace::probe_kind::tcp_download;
      r.success = true;
      r.throughput_bps = 2.0e6 + 1.0e4 * i;
      recs.push_back(r);
    }
    coord.report_batch(recs);
    coord.flush();
  }

  /// The golden corpus: every command family in both framings, plus
  /// malformed inputs (replies must match byte-for-byte too).
  std::vector<std::string> corpus() const {
    trace::measurement_record rec;
    rec.time_s = 205.0;
    rec.network = "NetB";
    rec.pos = proj.to_lat_lon(geo::xy{120.0, 80.0});
    rec.client_id = 4;
    rec.kind = trace::probe_kind::ping;
    rec.success = true;
    rec.rtt_s = 0.031;
    rec.ping_sent = 10;
    const proto::measurement_report report{rec.client_id, rec};

    proto::query_request q;
    q.pos = rec.pos;
    q.network = "NetB";
    q.metric = trace::metric::tcp_throughput_bps;
    q.time_s = 210.0;

    std::vector<std::string> reqs;
    reqs.push_back(proto::encode(report));
    reqs.push_back(proto::encode(q));
    reqs.push_back(proto::encode(proto::hello_request{2}));
    reqs.push_back(proto::encode(proto::alerts_request{0, 16}));
    // (STATS is deliberately absent: its reply embeds live counter values,
    // so repeated calls can never be byte-stable.)
    reqs.push_back("REPORTB 2\ngarbage");        // malformed text
    reqs.push_back("NOSUCH arg=1");              // unknown command
    reqs.push_back(v3::encode_report_frame(report));
    reqs.push_back(v3::encode_query_frame(q));
    reqs.push_back(v3::encode_query_batch_frame({&q, 1}));
    reqs.push_back(v3::encode_epoch_pull_frame({0, 8}));  // unattached: ERR
    reqs.push_back(v3::encode_promote_frame());           // unattached: ERR
    std::string bad = v3::encode_query_frame(q);
    bad[1] = '\x7f';  // invalid opcode byte
    reqs.push_back(bad);
    return reqs;
  }
};

TEST(UnifiedHandle, AllThreeSpellingsAnswerByteIdentically) {
  corpus_fixture fx;
  for (const std::string& req : fx.corpus()) {
    // Reports mutate state; run the three spellings against the same
    // coordinator back-to-back so they see identical published state
    // (report re-submission is idempotent for the reply bytes: ACK).
    const std::string a = fx.server.handle(req);

    proto::reply_buffer rb;
    fx.server.handle_into(req, rb);
    const std::string b(rb.view());

    rb.clear();
    const proto::request_view view =
        v3::is_frame_start(req) ? proto::request_view::binary(req)
                                : proto::request_view::text(req);
    fx.server.handle(view, rb);
    const std::string c(rb.view());

    EXPECT_EQ(a, b) << "request: " << req.substr(0, 40);
    EXPECT_EQ(a, c) << "request: " << req.substr(0, 40);
    EXPECT_FALSE(a.empty());
  }
}

TEST(UnifiedHandle, DetectClassifiesByLeadingByte) {
  const proto::request_view text = proto::request_view::detect("QUERY x=1");
  EXPECT_EQ(text.framing(), proto::request_view::kind::text);
  EXPECT_EQ(text.bytes(), "QUERY x=1");

  const std::string frame = v3::encode_promote_frame();
  const proto::request_view bin = proto::request_view::detect(frame);
  EXPECT_EQ(bin.framing(), proto::request_view::kind::binary);
  EXPECT_EQ(bin.bytes(), frame);

  // An explicitly-classified view overrides detection: a session that
  // negotiated text framing can force a magic-leading line through the
  // text path.
  const std::string odd = "\xB3 looks binary but is text";
  EXPECT_EQ(proto::request_view::text(odd).framing(),
            proto::request_view::kind::text);
  EXPECT_EQ(proto::request_view::detect(odd).framing(),
            proto::request_view::kind::binary);
}

TEST(UnifiedHandle, AdvertisedVersionIsFixedAtConstruction) {
  corpus_fixture fx;
  // server_options replaced the set_advertised_version() mutable knob:
  // the advertised version is a construction-time property.
  proto::coordinator_server v2(fx.coord, {.advertised_version = 2});
  EXPECT_EQ(v2.advertised_version(), 2u);
  EXPECT_EQ(fx.server.advertised_version(), proto::wire_version);

  const std::string hello2 = v2.handle(proto::encode(proto::hello_request{3}));
  EXPECT_NE(hello2.find("ver=2"), std::string::npos);
  const std::string hello3 =
      fx.server.handle(proto::encode(proto::hello_request{3}));
  EXPECT_NE(hello3.find("ver=3"), std::string::npos);
}

}  // namespace
}  // namespace wiscape

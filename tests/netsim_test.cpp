#include <gtest/gtest.h>

#include <vector>

#include "netsim/link.h"
#include "netsim/path.h"
#include "netsim/simulation.h"

namespace wiscape::netsim {
namespace {

TEST(Simulation, RunsEventsInTimeOrder) {
  simulation sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulation, TiesRunInSchedulingOrder) {
  simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(1.0, [&, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, EventsCanScheduleMoreEvents) {
  simulation sim;
  int count = 0;
  std::function<void()> chain = [&]() {
    if (++count < 10) sim.schedule_in(1.0, chain);
  };
  sim.schedule_at(0.0, chain);
  sim.run();
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(sim.now(), 9.0);
}

TEST(Simulation, RunUntilStopsAndAdvancesClock) {
  simulation sim;
  int ran = 0;
  sim.schedule_at(1.0, [&] { ++ran; });
  sim.schedule_at(5.0, [&] { ++ran; });
  sim.run_until(2.0);
  EXPECT_EQ(ran, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(ran, 2);
}

TEST(Simulation, PastEventsClampToNow) {
  simulation sim;
  double seen = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_at(1.0, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(Simulation, NegativeDelayClampsToZero) {
  simulation sim;
  double seen = -1.0;
  sim.schedule_in(-5.0, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 0.0);
}

TEST(Link, SerializationTimePlusDelay) {
  simulation sim;
  link l(sim, fixed_profile(8000.0, 0.1), stats::rng_stream(1));
  double arrival = -1.0;
  packet p;
  p.size_bytes = 1000;  // 8000 bits at 8000 bps = 1 s
  l.send(p, [&](const packet&) { arrival = sim.now(); });
  sim.run();
  EXPECT_NEAR(arrival, 1.1, 1e-9);
  EXPECT_EQ(l.delivered(), 1u);
}

TEST(Link, BackToBackPacketsQueue) {
  simulation sim;
  link l(sim, fixed_profile(8000.0, 0.0), stats::rng_stream(1));
  std::vector<double> arrivals;
  packet p;
  p.size_bytes = 1000;
  for (int i = 0; i < 3; ++i) {
    p.seq = static_cast<std::uint32_t>(i);
    l.send(p, [&](const packet&) { arrivals.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_NEAR(arrivals[0], 1.0, 1e-9);
  EXPECT_NEAR(arrivals[1], 2.0, 1e-9);
  EXPECT_NEAR(arrivals[2], 3.0, 1e-9);
}

TEST(Link, QueueOverflowDropsTail) {
  simulation sim;
  auto profile = fixed_profile(8000.0, 0.0);
  profile.queue_capacity = 2;
  link l(sim, profile, stats::rng_stream(1));
  int delivered = 0;
  packet p;
  p.size_bytes = 1000;
  for (int i = 0; i < 5; ++i) {
    l.send(p, [&](const packet&) { ++delivered; });
  }
  sim.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(l.dropped_queue(), 3u);
}

TEST(Link, RandomLossMatchesProbability) {
  simulation sim;
  link l(sim, fixed_profile(1e9, 0.0, 0.3, 10000), stats::rng_stream(7));
  int delivered = 0;
  packet p;
  p.size_bytes = 100;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    l.send(p, [&](const packet&) { ++delivered; });
  }
  sim.run();
  EXPECT_NEAR(static_cast<double>(delivered) / n, 0.7, 0.03);
  EXPECT_EQ(l.delivered() + l.dropped_random(), static_cast<std::uint64_t>(n));
}

TEST(Link, ConservationNoLossNoOverflow) {
  simulation sim;
  link l(sim, fixed_profile(1e6, 0.01, 0.0, 10000), stats::rng_stream(2));
  int delivered = 0;
  packet p;
  p.size_bytes = 500;
  const int n = 1000;
  for (int i = 0; i < n; ++i) l.send(p, [&](const packet&) { ++delivered; });
  sim.run();
  EXPECT_EQ(delivered, n);
  EXPECT_EQ(l.dropped_queue(), 0u);
  EXPECT_EQ(l.dropped_random(), 0u);
}

TEST(Link, TimeVaryingRateIsSampledAtServiceStart) {
  simulation sim;
  link_profile profile = fixed_profile(8000.0, 0.0);
  // Rate doubles after t=1s.
  profile.rate_bps = [](sim_time t) { return t < 1.0 ? 8000.0 : 16000.0; };
  link l(sim, profile, stats::rng_stream(1));
  std::vector<double> arrivals;
  packet p;
  p.size_bytes = 1000;
  l.send(p, [&](const packet&) { arrivals.push_back(sim.now()); });
  l.send(p, [&](const packet&) { arrivals.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[0], 1.0, 1e-9);  // at old rate
  EXPECT_NEAR(arrivals[1], 1.5, 1e-9);  // second packet serviced at new rate
}

TEST(Link, DelayNoiseNeverNegative) {
  simulation sim;
  link_profile profile = fixed_profile(1e9, 0.05);
  profile.delay_noise_sigma_s = 0.02;
  link l(sim, profile, stats::rng_stream(3));
  std::vector<double> arrivals;
  packet p;
  p.size_bytes = 10;
  double sent_at = 0.0;
  for (int i = 0; i < 500; ++i) {
    sim.schedule_at(i * 1.0, [&, i]() {
      packet q;
      q.size_bytes = 10;
      l.send(q, [&](const packet&) { arrivals.push_back(sim.now()); });
    });
  }
  (void)sent_at;
  sim.run();
  ASSERT_EQ(arrivals.size(), 500u);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i] - static_cast<double>(i), 0.05 - 1e-9);
  }
}

TEST(Link, Validation) {
  simulation sim;
  link_profile missing;
  EXPECT_THROW(link(sim, missing, stats::rng_stream(1)), std::invalid_argument);
  auto profile = fixed_profile(1e6, 0.0);
  profile.queue_capacity = 0;
  EXPECT_THROW(link(sim, profile, stats::rng_stream(1)), std::invalid_argument);
}

TEST(DuplexPath, IndependentDirections) {
  simulation sim;
  duplex_path path(sim, fixed_profile(8000.0, 0.0), fixed_profile(16000.0, 0.0),
                   stats::rng_stream(1));
  double down_at = -1.0, up_at = -1.0;
  packet p;
  p.size_bytes = 1000;
  path.down().send(p, [&](const packet&) { down_at = sim.now(); });
  path.up().send(p, [&](const packet&) { up_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(down_at, 1.0, 1e-9);
  EXPECT_NEAR(up_at, 0.5, 1e-9);
}

TEST(Link, ServiceTimeOverrideReplacesRate) {
  simulation sim;
  link_profile profile = fixed_profile(1e9, 0.0);
  // Custom service: always 0.5 s regardless of size or nominal rate.
  profile.service_time = [](sim_time, double) { return 0.5; };
  link l(sim, profile, stats::rng_stream(1));
  std::vector<double> arrivals;
  packet p;
  p.size_bytes = 1;
  for (int i = 0; i < 3; ++i) {
    l.send(p, [&](const packet&) { arrivals.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_NEAR(arrivals[0], 0.5, 1e-9);
  EXPECT_NEAR(arrivals[1], 1.0, 1e-9);
  EXPECT_NEAR(arrivals[2], 1.5, 1e-9);
}

TEST(Link, ServiceTimeSeesQueueDelayedStart) {
  simulation sim;
  link_profile profile = fixed_profile(1e9, 0.0);
  std::vector<double> service_starts;
  profile.service_time = [&](sim_time t, double) {
    service_starts.push_back(t);
    return 1.0;
  };
  link l(sim, profile, stats::rng_stream(1));
  packet p;
  p.size_bytes = 1;
  l.send(p, [](const packet&) {});
  l.send(p, [](const packet&) {});
  sim.run();
  ASSERT_EQ(service_starts.size(), 2u);
  EXPECT_NEAR(service_starts[0], 0.0, 1e-9);
  EXPECT_NEAR(service_starts[1], 1.0, 1e-9);  // starts when the first ends
}

}  // namespace
}  // namespace wiscape::netsim


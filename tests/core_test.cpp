#include <gtest/gtest.h>

#include <cmath>

#include "core/anomaly.h"
#include "core/client_agent.h"
#include "core/coordinator.h"
#include "core/dominance.h"
#include "core/epoch_estimator.h"
#include "core/sample_planner.h"
#include "core/validation.h"
#include "core/zone_table.h"
#include "test_util.h"

namespace wiscape::core {
namespace {

const geo::lat_lon here = cellnet::anchors::madison;

estimate_key key_of(trace::metric m = trace::metric::udp_throughput_bps) {
  return {geo::zone_id{0, 0}, "NetB", m};
}

// ------------------------------------------------------------ zone_table ----

TEST(ZoneTable, NoEstimateBeforeFirstRollover) {
  zone_table t;
  t.add_sample(key_of(), 10.0, 1.0, 100.0);
  EXPECT_FALSE(t.latest(key_of()).has_value());
  EXPECT_EQ(t.open_epoch_samples(key_of()), 1u);
}

TEST(ZoneTable, RolloverPublishesEpochStats) {
  zone_table t;
  t.add_sample(key_of(), 10.0, 2.0, 100.0);
  t.add_sample(key_of(), 20.0, 4.0, 100.0);
  t.add_sample(key_of(), 150.0, 9.0, 100.0);  // crosses the boundary
  const auto est = t.latest(key_of());
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(est->mean, 3.0);
  EXPECT_EQ(est->samples, 2u);
  EXPECT_DOUBLE_EQ(est->epoch_start_s, 0.0);
  EXPECT_EQ(t.open_epoch_samples(key_of()), 1u);
}

TEST(ZoneTable, EpochBoundariesAlignToDuration) {
  zone_table t;
  t.add_sample(key_of(), 250.0, 1.0, 100.0);  // first epoch starts at 200
  t.add_sample(key_of(), 320.0, 2.0, 100.0);  // rolls over [200,300)
  const auto est = t.latest(key_of());
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(est->epoch_start_s, 200.0);
}

TEST(ZoneTable, SeparateKeysIndependent) {
  zone_table t;
  const estimate_key a{geo::zone_id{0, 0}, "NetB",
                       trace::metric::udp_throughput_bps};
  const estimate_key b{geo::zone_id{0, 1}, "NetB",
                       trace::metric::udp_throughput_bps};
  const estimate_key c{geo::zone_id{0, 0}, "NetC",
                       trace::metric::udp_throughput_bps};
  t.add_sample(a, 10.0, 1.0, 100.0);
  t.add_sample(b, 10.0, 2.0, 100.0);
  t.add_sample(c, 10.0, 3.0, 100.0);
  EXPECT_EQ(t.open_epoch_samples(a), 1u);
  EXPECT_EQ(t.open_epoch_samples(b), 1u);
  EXPECT_EQ(t.open_epoch_samples(c), 1u);
  EXPECT_EQ(t.keys().size(), 3u);
}

TEST(ZoneTable, StableMetricRaisesNoAlert) {
  zone_table t(2.0);
  stats::rng_stream r(3);
  for (int epoch = 0; epoch < 10; ++epoch) {
    for (int i = 0; i < 50; ++i) {
      t.add_sample(key_of(), epoch * 100.0 + i, r.normal(100.0, 5.0), 100.0);
    }
  }
  EXPECT_TRUE(t.alerts().empty());
}

TEST(ZoneTable, LevelShiftRaisesAlert) {
  zone_table t(2.0);
  stats::rng_stream r(3);
  for (int i = 0; i < 50; ++i) {
    t.add_sample(key_of(), i, r.normal(100.0, 5.0), 100.0);
  }
  for (int i = 0; i < 50; ++i) {
    t.add_sample(key_of(), 100.0 + i, r.normal(150.0, 5.0), 100.0);
  }
  t.add_sample(key_of(), 250.0, 150.0, 100.0);  // force rollover of 2nd epoch
  ASSERT_FALSE(t.alerts().empty());
  const auto& alert = t.alerts().front();
  EXPECT_NEAR(alert.previous_mean, 100.0, 3.0);
  EXPECT_NEAR(alert.new_mean, 150.0, 3.0);
}

TEST(ZoneTable, HistoryAccumulates) {
  zone_table t;
  for (int epoch = 0; epoch < 5; ++epoch) {
    t.add_sample(key_of(), epoch * 100.0, 1.0, 100.0);
  }
  EXPECT_EQ(t.history(key_of()).size(), 4u);  // last epoch still open
}

TEST(ZoneTable, RejectsBadEpochDuration) {
  zone_table t;
  EXPECT_THROW(t.add_sample(key_of(), 0.0, 1.0, 0.0), std::invalid_argument);
}

// ------------------------------------------------------- epoch_estimator ----

TEST(EpochEstimator, PureNoisePicksLongEpoch) {
  // White noise keeps improving with averaging: the minimum sits at the top
  // of the scan range, clamped to max_epoch.
  const auto ts = testing::noise_series(5000, 10.0, 100.0, 10.0);
  epoch_config cfg;
  cfg.max_epoch_s = 4.0 * 3600;
  const epoch_estimator est(cfg);
  EXPECT_NEAR(est.epoch_for(ts), cfg.max_epoch_s, 1e-6);
}

TEST(EpochEstimator, NoisePlusDriftPicksInteriorEpoch) {
  // Drift with a ~3 h period forces the Allan minimum between the noise
  // timescale and roughly the drift period (averaging over a full period
  // cancels a sinusoid, so the minimum can sit at ~the period itself).
  const auto ts =
      testing::drift_series(20000, 10.0, 100.0, 8.0, 20.0, 3.0 * 3600);
  const epoch_estimator est;
  const double epoch = est.epoch_for(ts);
  EXPECT_GT(epoch, 5.0 * 60);
  EXPECT_LT(epoch, 1.5 * 3.0 * 3600);
}

TEST(EpochEstimator, ShortSeriesFallsBack) {
  stats::time_series ts;
  ts.add(0.0, 1.0);
  const epoch_estimator est;
  EXPECT_DOUBLE_EQ(est.epoch_for(ts), est.config().default_epoch_s);
}

TEST(EpochEstimator, CurveCoversScanRange) {
  const auto ts = testing::noise_series(20000, 10.0, 100.0, 10.0);
  const epoch_estimator est;
  const auto curve = est.curve_for(ts);
  ASSERT_GT(curve.size(), 10u);
  EXPECT_LT(curve.front().tau_s, 120.0);
}

TEST(EpochEstimator, RejectsBadConfig) {
  epoch_config cfg;
  cfg.min_epoch_s = 100.0;
  cfg.max_epoch_s = 50.0;
  EXPECT_THROW(epoch_estimator{cfg}, std::invalid_argument);
}

// --------------------------------------------------------- sample_planner ----

TEST(SamplePlanner, NkldDecreasesWithSampleCount) {
  stats::rng_stream gen(5);
  std::vector<double> population;
  for (int i = 0; i < 3000; ++i) population.push_back(gen.normal(100.0, 15.0));
  planner_config cfg;
  cfg.iterations = 40;
  const sample_planner planner(cfg);
  stats::rng_stream rng(7);
  const double at10 = planner.mean_nkld_at(population, 10, rng);
  const double at100 = planner.mean_nkld_at(population, 100, rng);
  const double at400 = planner.mean_nkld_at(population, 400, rng);
  EXPECT_GT(at10, at100);
  EXPECT_GT(at100, at400);
}

TEST(SamplePlanner, SamplesNeededWithinScanRange) {
  stats::rng_stream gen(5);
  std::vector<double> population;
  for (int i = 0; i < 3000; ++i) population.push_back(gen.normal(100.0, 15.0));
  planner_config cfg;
  cfg.iterations = 30;
  const sample_planner planner(cfg);
  stats::rng_stream rng(7);
  const std::size_t n = planner.samples_needed(population, rng);
  EXPECT_GE(n, cfg.step);
  EXPECT_LE(n, cfg.max_samples);
  // And the threshold actually holds there.
  EXPECT_LE(planner.mean_nkld_at(population, n, rng),
            cfg.nkld_threshold * 1.3);
}

TEST(SamplePlanner, StricterThresholdNeedsMoreSamples) {
  stats::rng_stream gen(5);
  std::vector<double> population;
  for (int i = 0; i < 4000; ++i) population.push_back(gen.normal(100.0, 15.0));
  planner_config loose;
  loose.iterations = 30;
  loose.nkld_threshold = 0.25;
  planner_config strict = loose;
  strict.nkld_threshold = 0.05;
  stats::rng_stream r1(7), r2(7);
  EXPECT_LE(sample_planner(loose).samples_needed(population, r1),
            sample_planner(strict).samples_needed(population, r2));
}

TEST(SamplePlanner, PacketsForAccuracyReasonable) {
  stats::rng_stream gen(5);
  std::vector<double> population;
  for (int i = 0; i < 3000; ++i) population.push_back(gen.normal(1000.0, 150.0));
  planner_config cfg;
  cfg.iterations = 50;
  const sample_planner planner(cfg);
  stats::rng_stream rng(7);
  const std::size_t n = planner.packets_for_accuracy(population, rng);
  // sigma/mean = 0.15: ~3% error needs ~(0.15/0.03 / sqrt(n))... n ~ 25-60.
  EXPECT_GE(n, 10u);
  EXPECT_LE(n, 120u);
}

TEST(SamplePlanner, Validation) {
  planner_config bad;
  bad.iterations = 0;
  EXPECT_THROW(sample_planner{bad}, std::invalid_argument);
  const sample_planner planner;
  stats::rng_stream rng(1);
  const std::vector<double> tiny{1.0, 2.0};
  EXPECT_THROW(planner.mean_nkld_at(tiny, 5, rng), std::invalid_argument);
  EXPECT_THROW(planner.packets_for_accuracy({}, rng), std::invalid_argument);
}

// ------------------------------------------------------------ coordinator ----

coordinator make_coordinator(std::uint64_t seed = 3) {
  geo::zone_grid grid(geo::projection(here), 250.0);
  coordinator_config cfg;
  cfg.default_samples_per_epoch = 10;
  return coordinator(std::move(grid), {"NetB", "NetC"}, cfg, seed);
}

TEST(Coordinator, IssuesTasksUntilTargetReached) {
  auto coord = make_coordinator();
  int issued = 0;
  for (int i = 0; i < 400; ++i) {
    const auto task = coord.checkin(here, 100.0 + i, 0, 1);
    if (!task) continue;
    ++issued;
    // Simulate the probe result.
    auto rec = testing::make_record(
        100.0 + i, "NetB", here,
        task->kind, task->kind == trace::probe_kind::ping ? 0.1 : 1e6);
    coord.report(rec);
  }
  EXPECT_GT(issued, 0);
  // Once the open epoch holds the target, checkins stop issuing.
  const auto status = coord.status_of(coord.grid().zone_of(here));
  EXPECT_LE(status.open_epoch_samples, 10u);
}

TEST(Coordinator, SelectionProbabilityScalesWithCrowd) {
  // With many active clients, an individual checkin is rarely tasked.
  auto coord = make_coordinator();
  int tasked_alone = 0, tasked_crowded = 0;
  for (int i = 0; i < 200; ++i) {
    if (coord.checkin(here, i, 0, 1)) ++tasked_alone;
  }
  auto coord2 = make_coordinator(4);
  for (int i = 0; i < 200; ++i) {
    if (coord2.checkin(here, i, 0, 1000)) ++tasked_crowded;
  }
  EXPECT_GT(tasked_alone, tasked_crowded * 3);
}

TEST(Coordinator, ReportRoutesMetricsToTable) {
  auto coord = make_coordinator();
  auto rec = testing::make_record(50.0, "NetB", here,
                                  trace::probe_kind::udp_burst, 2e6);
  rec.jitter_s = 0.004;
  rec.loss_rate = 0.01;
  coord.report(rec);
  const auto zone = coord.grid().zone_of(here);
  EXPECT_EQ(coord.table_for_test().open_epoch_samples(
                {zone, "NetB", trace::metric::udp_throughput_bps}),
            1u);
  EXPECT_EQ(coord.table_for_test().open_epoch_samples(
                {zone, "NetB", trace::metric::jitter_s}),
            1u);
  EXPECT_EQ(coord.table_for_test().open_epoch_samples(
                {zone, "NetB", trace::metric::rtt_s}),
            0u);
}

TEST(Coordinator, FailedRecordsAreNotFoldedIn) {
  auto coord = make_coordinator();
  auto rec = testing::make_record(50.0, "NetB", here,
                                  trace::probe_kind::udp_burst, 2e6);
  rec.success = false;
  coord.report(rec);
  const auto zone = coord.grid().zone_of(here);
  EXPECT_EQ(coord.table_for_test().open_epoch_samples(
                {zone, "NetB", trace::metric::udp_throughput_bps}),
            0u);
}

TEST(Coordinator, ExtremeCoordinatesRejectedNotThrown) {
  // Regression (review of ISSUE 4): lat/lon arrive on the wire unvalidated,
  // and the packed store throws on zones outside +/-2^23 cells. The
  // coordinator must reject such records up front -- a throw here would
  // escape an async drain worker and terminate the process.
  auto coord = make_coordinator();
  auto hostile = testing::make_record(50.0, "NetB", geo::lat_lon{1e9, -1e9},
                                      trace::probe_kind::udp_burst, 2e6);
  EXPECT_NO_THROW(coord.report(hostile));
  EXPECT_TRUE(coord.table_for_test().keys().empty());  // nothing folded in
  // The coordinator keeps working for sane input afterwards.
  coord.report(testing::make_record(60.0, "NetB", here,
                                    trace::probe_kind::udp_burst, 2e6));
  EXPECT_EQ(coord.table_for_test().open_epoch_samples(
                {coord.grid().zone_of(here), "NetB",
                 trace::metric::udp_throughput_bps}),
            1u);
}

TEST(Coordinator, InternerExhaustionRejectsNewNetworksNotThrows) {
  // Regression (review of ISSUE 4): network names are attacker-controlled
  // free-form strings, so reports naming more than max_networks distinct
  // operators must saturate to rejection, not throw std::length_error
  // through the apply path.
  auto coord = make_coordinator();  // seeds NetB, NetC
  EXPECT_NO_THROW({
    for (std::size_t i = 0; i < network_interner::max_networks + 8; ++i) {
      coord.report(testing::make_record(10.0 + static_cast<double>(i),
                                        "flood" + std::to_string(i), here,
                                        trace::probe_kind::ping, 0.1));
    }
  });
  EXPECT_EQ(coord.table_for_test().interner().size(), network_interner::max_networks);
  // Already-interned networks still apply after exhaustion.
  coord.report(testing::make_record(9999.0, "NetB", here,
                                    trace::probe_kind::udp_burst, 2e6));
  EXPECT_EQ(coord.table_for_test().open_epoch_samples(
                {coord.grid().zone_of(here), "NetB",
                 trace::metric::udp_throughput_bps}),
            1u);
}

TEST(Coordinator, RecomputeEpochsUsesHistory) {
  auto coord = make_coordinator();
  // Feed a drifty series so the Allan minimum lands at an interior epoch.
  stats::rng_stream r(9);
  for (int i = 0; i < 2000; ++i) {
    const double t = i * 30.0;
    const double v = 1e6 + 2e5 * std::sin(2 * 3.14159 * t / (3.0 * 3600)) +
                     r.normal(0.0, 1e5);
    coord.report(testing::make_record(t, "NetB", here,
                                      trace::probe_kind::udp_burst, v));
  }
  const auto zone = coord.grid().zone_of(here);
  const double before = coord.status_of(zone).epoch_duration_s;
  coord.recompute_epochs();
  const double after = coord.status_of(zone).epoch_duration_s;
  EXPECT_NE(before, after);
  EXPECT_GE(after, coord.config().epochs.min_epoch_s);
  EXPECT_LE(after, coord.config().epochs.max_epoch_s);
}

TEST(Coordinator, RefineSampleTargetUsesPlanner) {
  auto coord = make_coordinator();
  stats::rng_stream r(9);
  for (int i = 0; i < 1500; ++i) {
    coord.report(testing::make_record(i * 10.0, "NetB", here,
                                      trace::probe_kind::udp_burst,
                                      r.normal(1e6, 1e5)));
  }
  const auto zone = coord.grid().zone_of(here);
  const std::size_t target =
      coord.refine_sample_target(zone, "NetB",
                                 trace::metric::udp_throughput_bps);
  EXPECT_GE(target, 10u);
  EXPECT_LE(target, coord.config().planner.max_samples);
}

TEST(Coordinator, UnknownZoneStatusDefaults) {
  auto coord = make_coordinator();
  const auto status = coord.status_of(geo::zone_id{999, 999});
  EXPECT_DOUBLE_EQ(status.epoch_duration_s,
                   coord.config().epochs.default_epoch_s);
  EXPECT_EQ(status.samples_target, coord.config().default_samples_per_epoch);
}

// ---------------------------------------------------------------- anomaly ----

TEST(DetectSurges, FindsSustainedSpike) {
  stats::time_series ts;
  stats::rng_stream r(5);
  // 24 h of 10-min samples at ~110 ms with a 3-hour 4x surge at hour 12.
  for (int i = 0; i < 144; ++i) {
    const double t = i * 600.0;
    const bool in_game = t >= 12 * 3600.0 && t < 15 * 3600.0;
    ts.add(t, (in_game ? 0.42 : 0.11) + r.normal(0.0, 0.01));
  }
  const auto surges = detect_surges(ts, 600.0, 2.0, 1800.0);
  ASSERT_EQ(surges.size(), 1u);
  EXPECT_NEAR(surges[0].start_s, 12 * 3600.0, 1200.0);
  EXPECT_NEAR(surges[0].end_s, 15 * 3600.0, 1200.0);
  EXPECT_GT(surges[0].factor, 3.0);
}

TEST(DetectSurges, IgnoresShortBlips) {
  stats::time_series ts;
  for (int i = 0; i < 144; ++i) {
    ts.add(i * 600.0, i == 50 ? 0.5 : 0.11);
  }
  EXPECT_TRUE(detect_surges(ts, 600.0, 2.0, 1800.0).empty());
}

TEST(DetectSurges, QuietSeriesNoSurges) {
  const auto ts = testing::noise_series(200, 600.0, 0.11, 0.005);
  EXPECT_TRUE(detect_surges(ts).empty());
}

TEST(FailedPings, FlagsTroubledHighVarianceZones) {
  const geo::zone_grid grid(geo::projection(here), 250.0);
  trace::dataset ds;
  stats::rng_stream r(4);
  const geo::lat_lon good = here;
  const geo::lat_lon bad = geo::destination(here, 90.0, 4000.0);

  for (int day = 0; day < 25; ++day) {
    for (int i = 0; i < 12; ++i) {
      const double t = day * 86400.0 + i * 3600.0;
      // Good zone: stable throughput, no ping failures.
      ds.add(testing::make_record(t, "NetB", good,
                                  trace::probe_kind::tcp_download,
                                  r.normal(1e6, 3e4)));
      auto ping_ok =
          testing::make_record(t, "NetB", good, trace::probe_kind::ping, 0.1);
      ds.add(ping_ok);
      // Bad zone: wildly variable throughput + daily ping failures.
      ds.add(testing::make_record(t, "NetB", bad,
                                  trace::probe_kind::tcp_download,
                                  std::max(1e4, r.normal(1e6, 5e5))));
      auto ping_fail =
          testing::make_record(t, "NetB", bad, trace::probe_kind::ping, 0.1);
      ping_fail.ping_failures = i == 0 ? 2 : 0;
      ds.add(ping_fail);
    }
  }

  failed_ping_config cfg;
  cfg.min_consecutive_days = 20;
  cfg.min_tcp_samples = 100;
  const auto report = analyze_failed_pings(ds, grid, "NetB", cfg);
  EXPECT_EQ(report.zones_total, 2u);
  EXPECT_EQ(report.zones_flagged, 1u);
  ASSERT_EQ(report.flagged_rel_stddev.size(), 1u);
  EXPECT_GT(report.flagged_rel_stddev[0], 0.2);
  EXPECT_DOUBLE_EQ(report.high_variability_caught, 1.0);
}

TEST(FailedPings, NonConsecutiveFailuresNotFlagged) {
  const geo::zone_grid grid(geo::projection(here), 250.0);
  trace::dataset ds;
  stats::rng_stream r(4);
  for (int day = 0; day < 30; ++day) {
    for (int i = 0; i < 8; ++i) {
      const double t = day * 86400.0 + i * 3600.0;
      ds.add(testing::make_record(t, "NetB", here,
                                  trace::probe_kind::tcp_download,
                                  r.normal(1e6, 3e4)));
      auto ping = testing::make_record(t, "NetB", here,
                                       trace::probe_kind::ping, 0.1);
      // Failures only on even days: never 20 consecutive.
      ping.ping_failures = (day % 2 == 0 && i == 0) ? 1 : 0;
      ds.add(ping);
    }
  }
  failed_ping_config cfg;
  cfg.min_consecutive_days = 20;
  cfg.min_tcp_samples = 100;
  const auto report = analyze_failed_pings(ds, grid, "NetB", cfg);
  EXPECT_EQ(report.zones_flagged, 0u);
}

// -------------------------------------------------------------- dominance ----

TEST(Dominance, ClearWinnerDetected) {
  stats::rng_stream r(6);
  std::vector<std::vector<double>> nets(2);
  for (int i = 0; i < 200; ++i) {
    nets[0].push_back(r.normal(2e6, 5e4));  // clearly faster
    nets[1].push_back(r.normal(1e6, 5e4));
  }
  EXPECT_EQ(dominant_network(nets, preference::higher_is_better), 0);
}

TEST(Dominance, OverlappingDistributionsNoWinner) {
  stats::rng_stream r(6);
  std::vector<std::vector<double>> nets(2);
  for (int i = 0; i < 200; ++i) {
    nets[0].push_back(r.normal(1.05e6, 2e5));
    nets[1].push_back(r.normal(1.0e6, 2e5));
  }
  EXPECT_EQ(dominant_network(nets, preference::higher_is_better), -1);
}

TEST(Dominance, LowerIsBetterForLatency) {
  stats::rng_stream r(6);
  std::vector<std::vector<double>> nets(2);
  for (int i = 0; i < 200; ++i) {
    nets[0].push_back(r.normal(0.250, 0.010));
    nets[1].push_back(r.normal(0.110, 0.010));  // faster pings
  }
  EXPECT_EQ(dominant_network(nets, preference::lower_is_better), 1);
}

TEST(Dominance, InsufficientSamplesNoWinner) {
  std::vector<std::vector<double>> nets(2);
  nets[0].assign(5, 2e6);
  nets[1].assign(200, 1e6);
  EXPECT_EQ(dominant_network(nets, preference::higher_is_better), -1);
}

TEST(Dominance, PreferenceForMetricsMatchesSemantics) {
  EXPECT_EQ(preference_for(trace::metric::tcp_throughput_bps),
            preference::higher_is_better);
  EXPECT_EQ(preference_for(trace::metric::rtt_s),
            preference::lower_is_better);
  EXPECT_EQ(preference_for(trace::metric::loss_rate),
            preference::lower_is_better);
}

TEST(Dominance, AnalyzeAcrossZones) {
  const geo::zone_grid grid(geo::projection(here), 250.0);
  trace::dataset ds;
  stats::rng_stream r(8);
  const geo::lat_lon zone_b_wins = here;
  const geo::lat_lon zone_tie = geo::destination(here, 90.0, 4000.0);
  for (int i = 0; i < 100; ++i) {
    ds.add(testing::make_record(i, "NetB", zone_b_wins,
                                trace::probe_kind::tcp_download,
                                r.normal(2e6, 5e4)));
    ds.add(testing::make_record(i, "NetC", zone_b_wins,
                                trace::probe_kind::tcp_download,
                                r.normal(1e6, 5e4)));
    ds.add(testing::make_record(i, "NetB", zone_tie,
                                trace::probe_kind::tcp_download,
                                r.normal(1e6, 3e5)));
    ds.add(testing::make_record(i, "NetC", zone_tie,
                                trace::probe_kind::tcp_download,
                                r.normal(1e6, 3e5)));
  }
  const auto summary = analyze_dominance(
      ds, grid, trace::metric::tcp_throughput_bps, {"NetB", "NetC"});
  ASSERT_EQ(summary.zones.size(), 2u);
  EXPECT_EQ(summary.wins[0], 1u);
  EXPECT_EQ(summary.wins[1], 0u);
  EXPECT_EQ(summary.none, 1u);
  EXPECT_DOUBLE_EQ(summary.dominated_fraction, 0.5);
}

// ------------------------------------------------------------- validation ----

TEST(Validation, LowErrorOnStableZones) {
  const geo::zone_grid grid(geo::projection(here), 250.0);
  trace::dataset ds;
  stats::rng_stream r(5);
  // 3 zones, 400 samples each, ~5% rel stddev (the paper's stable city).
  for (int z = 0; z < 3; ++z) {
    const auto pos = geo::destination(here, 90.0, z * 3000.0);
    const double mean = 0.8e6 + z * 0.3e6;
    for (int i = 0; i < 400; ++i) {
      ds.add(testing::make_record(i, "NetB", pos,
                                  trace::probe_kind::tcp_download,
                                  r.normal(mean, mean * 0.05)));
    }
  }
  validation_config cfg;
  const auto report = validate_estimation(
      ds, grid, trace::metric::tcp_throughput_bps, "NetB", cfg, 42);
  ASSERT_EQ(report.zones.size(), 3u);
  EXPECT_GT(report.fraction_within(0.04), 0.6);
  EXPECT_LT(report.max_error(), 0.15);
}

TEST(Validation, SkipsThinZones) {
  const geo::zone_grid grid(geo::projection(here), 250.0);
  trace::dataset ds;
  for (int i = 0; i < 50; ++i) {
    ds.add(testing::make_record(i, "NetB", here,
                                trace::probe_kind::tcp_download, 1e6));
  }
  validation_config cfg;
  cfg.min_zone_samples = 200;
  const auto report = validate_estimation(
      ds, grid, trace::metric::tcp_throughput_bps, "NetB", cfg, 42);
  EXPECT_TRUE(report.zones.empty());
}

TEST(Validation, MoreWiscapeSamplesMeansLowerError) {
  const geo::zone_grid grid(geo::projection(here), 250.0);
  trace::dataset ds;
  stats::rng_stream r(5);
  for (int z = 0; z < 6; ++z) {
    const auto pos = geo::destination(here, 90.0, z * 3000.0);
    for (int i = 0; i < 600; ++i) {
      ds.add(testing::make_record(i, "NetB", pos,
                                  trace::probe_kind::tcp_download,
                                  r.normal(1e6, 2e5)));
    }
  }
  validation_config few;
  few.wiscape_samples = 5;
  validation_config many;
  many.wiscape_samples = 200;
  double err_few = 0.0, err_many = 0.0;
  // Average over several seeds: a single draw can go either way.
  for (std::uint64_t s = 0; s < 5; ++s) {
    err_few += validate_estimation(ds, grid,
                                   trace::metric::tcp_throughput_bps, "NetB",
                                   few, s)
                   .max_error();
    err_many += validate_estimation(ds, grid,
                                    trace::metric::tcp_throughput_bps, "NetB",
                                    many, s)
                    .max_error();
  }
  EXPECT_GT(err_few, err_many);
}

// ----------------------------------------------------------- client_agent ----

TEST(ClientAgent, StepRunsProbeAndReports) {
  const auto dep = testing::tiny_deployment();
  probe::probe_engine engine(dep, 3);
  geo::zone_grid grid(dep.proj(), 250.0);
  coordinator_config cfg;
  cfg.default_samples_per_epoch = 5;
  coordinator coord(grid, dep.names(), cfg, 7);
  client_agent agent(coord, engine, 0);

  const mobility::gps_fix fix{dep.proj().to_lat_lon({100.0, 100.0}), 0.0,
                              12.0 * 3600};
  int ran = 0;
  for (int i = 0; i < 40; ++i) {
    mobility::gps_fix f = fix;
    f.time_s += i * 10.0;
    if (agent.step(f, 1)) ++ran;
  }
  EXPECT_GT(ran, 0);
  EXPECT_EQ(agent.probes_executed(), static_cast<std::uint64_t>(ran));
  // Reports landed in the coordinator's table.
  const auto status = coord.status_of(grid.zone_of(fix.pos));
  EXPECT_GT(status.open_epoch_samples, 0u);
}

TEST(Coordinator, ClientBudgetLimitsTasking) {
  geo::zone_grid grid(geo::projection(here), 250.0);
  coordinator_config cfg;
  cfg.default_samples_per_epoch = 1000;  // zone never satisfied
  cfg.client_daily_budget_mb = 2.5;
  cfg.tcp_task_mb = 1.0;
  cfg.udp_task_mb = 1.0;
  cfg.ping_task_mb = 1.0;
  coordinator coord(grid, {"NetB"}, cfg, 3);

  int tasked = 0;
  for (int i = 0; i < 200; ++i) {
    if (coord.checkin(here, 1000.0 + i, 0, 1, /*client_id=*/42)) ++tasked;
  }
  // 2.5 MB budget at 1 MB per task => exactly 2 tasks today.
  EXPECT_EQ(tasked, 2);
  EXPECT_NEAR(coord.client_spend_mb(42, 1000.0), 2.0, 1e-9);

  // A new day resets the allowance.
  int next_day = 0;
  for (int i = 0; i < 200; ++i) {
    if (coord.checkin(here, 86400.0 + 1000.0 + i, 0, 1, 42)) ++next_day;
  }
  EXPECT_EQ(next_day, 2);
}

TEST(Coordinator, AnonymousClientsNeverBudgetLimited) {
  geo::zone_grid grid(geo::projection(here), 250.0);
  coordinator_config cfg;
  cfg.default_samples_per_epoch = 1000;
  cfg.client_daily_budget_mb = 0.5;
  cfg.tcp_task_mb = cfg.udp_task_mb = cfg.ping_task_mb = 1.0;
  coordinator coord(grid, {"NetB"}, cfg, 3);
  int tasked = 0;
  for (int i = 0; i < 50; ++i) {
    if (coord.checkin(here, 1000.0 + i, 0, 1, /*client_id=*/0)) ++tasked;
  }
  EXPECT_GT(tasked, 10);  // anonymous: the budget guard does not apply
}

TEST(Coordinator, BudgetsTrackedPerClient) {
  geo::zone_grid grid(geo::projection(here), 250.0);
  coordinator_config cfg;
  cfg.default_samples_per_epoch = 1000;
  cfg.client_daily_budget_mb = 1.5;
  cfg.tcp_task_mb = cfg.udp_task_mb = cfg.ping_task_mb = 1.0;
  coordinator coord(grid, {"NetB"}, cfg, 3);
  int a = 0, b = 0;
  for (int i = 0; i < 100; ++i) {
    if (coord.checkin(here, 1000.0 + i, 0, 1, 7)) ++a;
    if (coord.checkin(here, 1000.0 + i, 0, 1, 8)) ++b;
  }
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  EXPECT_DOUBLE_EQ(coord.client_spend_mb(99, 1000.0), 0.0);
}

}  // namespace
}  // namespace wiscape::core


// Allocation regression gate for the zero-allocation reply path (ISSUE 8).
//
// Asserts that coordinator_server::handle_into() performs ZERO heap
// allocations per request in steady state -- a reused reply_buffer, warmed
// scratch vectors, short (SSO) operator names -- across the hot request
// types: QUERY (EST reply), QUERYB, REPORT (ACK), REPORTB (ACK <n>), the
// ERR unsupported path, and (since wire protocol v3) the binary twins of
// every hot frame. Same counting-operator-new technique as
// bench_apply_path, but kept in its own tiny executable: a global
// operator new override must not ride along inside the gtest binary (it
// would fight the sanitizer builds' interceptors).
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/coordinator.h"
#include "core/sharded_coordinator.h"
#include "geo/zone_grid.h"
#include "proto/messages.h"
#include "proto/server.h"
#include "proto/wire_v3.h"
#include "repl/replica.h"
#include "test_util.h"
#include "trace/record.h"

// ---- allocation-counting hook ---------------------------------------------
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t n) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t) { return counted_alloc(n); }
void* operator new[](std::size_t n, std::align_val_t) {
  return counted_alloc(n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

#define CHECK(cond)                                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                    \
      return 1;                                                         \
    }                                                                   \
  } while (0)

using namespace wiscape;

int main() {
  const auto dep = testing::tiny_deployment();
  const geo::zone_grid grid(dep.proj(), 250.0);
  core::coordinator coord(grid, dep.names(), core::coordinator_config{}, 5);
  proto::coordinator_server server(coord);
  const geo::lat_lon here = cellnet::anchors::madison;

  proto::reply_buffer out;

  // Publish estimates: stream reports across several epochs so QUERY at
  // the stream's tail answers EST, not NONE. The stream is long enough to
  // push the coordinator's per-(zone,network) history series through a
  // full history_cap trim-and-compact cycle: past that point the series'
  // backing vector has reached its steady-state capacity and add/trim
  // never reallocates, so the counted loops below see the true
  // steady-state allocation count (0), not an amortized growth spike.
  for (int i = 0; i < 20000; ++i) {
    proto::measurement_report rep;
    rep.client_id = 7;
    rep.record = testing::make_record(static_cast<double>(i), "NetB", here,
                                      trace::probe_kind::udp_burst, 1.0e6);
    out.clear();
    server.handle_into(proto::encode(rep), out);
    CHECK(out.view() == "ACK");
  }

  // The request corpus, one per hot reply shape.
  proto::query_request q;
  q.pos = here;
  q.network = "NetB";
  q.metric = trace::metric::udp_throughput_bps;
  q.time_s = 19999.0;
  const std::string query_line = proto::encode(q);
  const std::vector<proto::query_request> qs = {q, q};
  const std::string queryb_frame = proto::encode_query_batch(qs);

  proto::measurement_report rep;
  rep.client_id = 7;
  rep.record = testing::make_record(19999.0, "NetB", here,
                                    trace::probe_kind::udp_burst, 1.0e6);
  const std::string report_line = proto::encode(rep);
  std::vector<trace::measurement_record> recs;
  for (int i = 0; i < 16; ++i) recs.push_back(rep.record);
  const std::string reportb_frame = proto::encode_report_batch(recs);

  const std::string bogus_line = "BOGUS totally unsupported request";

  // Replication opcodes (ISSUE 10): a leader serving EPOCH pulls and a
  // follower absorbing EPOCHB applies must hold the same steady state --
  // pull serves out of the reply_buffer's warmed epoch scratch, and a
  // re-applied batch is all cursor duplicates (skip path, no table
  // mutation). Short network names ride SSO, like everywhere else.
  core::sharded_config repl_cfg;
  repl_cfg.num_shards = 1;
  repl_cfg.synchronous = true;  // no worker threads to muddy the counts
  repl_cfg.coordinator.epochs.default_epoch_s = 100.0;
  core::sharded_coordinator lcoord(grid, dep.names(), repl_cfg, 6);
  proto::coordinator_server lserver(lcoord);
  repl::leader lead(lcoord);
  lserver.attach_replication(&lead);
  core::sharded_coordinator fcoord(grid, dep.names(), repl_cfg, 6);
  proto::coordinator_server fserver(fcoord);
  repl::follower fol(fcoord);
  fserver.attach_replication(&fol);
  for (int i = 0; i < 2000; ++i) {  // ~19 rollovers into the leader's log
    proto::measurement_report rrep;
    rrep.client_id = 9;
    rrep.record = testing::make_record(static_cast<double>(i), "NetB", here,
                                       trace::probe_kind::udp_burst, 1.0e6);
    out.clear();
    lserver.handle_into(proto::encode(rrep), out);
    CHECK(out.view() == "ACK");
  }
  const std::string epoch_pull_v3 = proto::v3::encode_epoch_pull_frame({0, 16});
  out.clear();
  lserver.handle_into(epoch_pull_v3, out);
  CHECK(proto::v3::peek_header(out.view())->op == proto::v3::opcode::epochb);
  const std::string epochb_apply_v3(out.view());
  out.clear();
  fserver.handle_into(epochb_apply_v3, out);  // first apply: real inserts
  CHECK(proto::v3::peek_header(out.view())->op == proto::v3::opcode::ack);

  // The binary v3 twins of every hot frame, plus a malformed binary frame
  // (undefined opcode) that draws the typed binary ERR reply.
  const std::string report_frame_v3 = proto::v3::encode_report_frame(rep);
  const std::string reportb_frame_v3 = proto::v3::encode_report_batch_frame(recs);
  const std::string query_frame_v3 = proto::v3::encode_query_frame(q);
  const std::string queryb_frame_v3 = proto::v3::encode_query_batch_frame(qs);
  const std::string bad_frame_v3("\xB3\x1f\x00\x00\x00\x00", 6);

  // Sanity: the query really serves an estimate (a NONE corpus would pass
  // the allocation gate while proving nothing about EST encoding).
  out.clear();
  server.handle_into(query_line, out);
  CHECK(out.view().substr(0, 4) == "EST ");
  out.clear();
  server.handle_into(bogus_line, out);
  CHECK(out.view().substr(0, 15) == "ERR unsupported");
  out.clear();
  server.handle_into(query_frame_v3, out);
  CHECK(proto::v3::peek_header(out.view()).has_value());
  CHECK(proto::v3::peek_header(out.view())->op == proto::v3::opcode::est);
  out.clear();
  server.handle_into(bad_frame_v3, out);
  CHECK(proto::v3::peek_header(out.view())->op == proto::v3::opcode::err);

  struct test_case {
    const char* name;
    const std::string* line;
    proto::coordinator_server* srv;
  };
  const test_case cases[] = {
      {"QUERY->EST", &query_line, &server},
      {"QUERYB->ESTB", &queryb_frame, &server},
      {"REPORT->ACK", &report_line, &server},
      {"REPORTB->ACK n", &reportb_frame, &server},
      {"unknown->ERR", &bogus_line, &server},
      {"v3 QUERY->EST", &query_frame_v3, &server},
      {"v3 QUERYB->ESTB", &queryb_frame_v3, &server},
      {"v3 REPORT->ACK", &report_frame_v3, &server},
      {"v3 REPORTB->ACK", &reportb_frame_v3, &server},
      {"v3 bad op->ERR", &bad_frame_v3, &server},
      {"v3 EPOCH->EPOCHB", &epoch_pull_v3, &lserver},
      {"v3 EPOCHB->ACK", &epochb_apply_v3, &fserver},
  };

  constexpr int kIters = 200;
  int failures = 0;
  for (const auto& tc : cases) {
    // Warm: reply_buffer capacity, scratch vectors, interner entries.
    for (int i = 0; i < 3; ++i) {
      out.clear();
      tc.srv->handle_into(*tc.line, out);
    }
    g_allocs.store(0);
    g_count_allocs.store(true);
    for (int i = 0; i < kIters; ++i) {
      out.clear();
      tc.srv->handle_into(*tc.line, out);
    }
    g_count_allocs.store(false);
    const std::uint64_t allocs = g_allocs.load();
    std::printf("  %-15s %3d requests, %llu heap allocations\n", tc.name,
                kIters, static_cast<unsigned long long>(allocs));
    if (allocs != 0) ++failures;
  }
  CHECK(failures == 0);
  std::printf("reply_alloc_test: all request types allocation-free\n");
  return 0;
}

// Replicated-coordinator tests (ISSUE 10): the epoch log, the five
// replication opcodes end-to-end through the unified server entry point,
// follower catch-up bit-equality, commutative + idempotent merges,
// promotion semantics, snapshot chunking, and the replica_lag fault.
//
// The TSan-targeted ReplStress suite at the bottom runs a leader and two
// followers under a concurrent ingest storm with a promotion mid-storm;
// tools/run_tsan.sh runs it under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_coordinator.h"
#include "core/zone_table.h"
#include "geo/projection.h"
#include "geo/zone_grid.h"
#include "obs/names.h"
#include "obs/registry.h"
#include "proto/server.h"
#include "proto/wire_v3.h"
#include "repl/replica.h"
#include "scenario/injector.h"
#include "trace/record.h"

namespace wiscape {
namespace {

namespace v3 = proto::v3;

core::epoch_estimate make_est(double start, double mean, std::uint64_t n) {
  core::epoch_estimate e;
  e.epoch_start_s = start;
  e.mean = mean;
  e.stddev = mean / 10.0;
  e.samples = n;
  return e;
}

// ---- epoch log -------------------------------------------------------------

TEST(EpochLog, SequencesRecordsAndServesSuffixes) {
  repl::epoch_log log(/*capacity=*/4);
  const core::estimate_key k{{1, 2}, "NetB", trace::metric::rtt_s};
  for (int i = 1; i <= 6; ++i) {
    log.on_epoch(k, make_est(100.0 * i, 0.1 * i, 10));
  }
  EXPECT_EQ(log.last_seq(), 6u);
  EXPECT_EQ(log.base_seq(), 3u);  // 1 and 2 evicted past capacity

  std::vector<proto::epoch_update> out;
  // A cursor still inside the retained window pulls the suffix in order.
  ASSERT_TRUE(log.pull(2, 100, out));
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.front().seq, 3u);
  EXPECT_EQ(out.back().seq, 6u);
  EXPECT_EQ(out.front().network, "NetB");
  // A cursor below the retained base means snapshot catch-up.
  out.clear();
  EXPECT_FALSE(log.pull(1, 100, out));
  // A drained cursor pulls an empty batch, successfully.
  out.clear();
  ASSERT_TRUE(log.pull(6, 100, out));
  EXPECT_TRUE(out.empty());
  // max caps the batch.
  out.clear();
  ASSERT_TRUE(log.pull(2, 2, out));
  EXPECT_EQ(out.size(), 2u);

  log.reset(10);
  EXPECT_EQ(log.last_seq(), 9u);
  EXPECT_EQ(log.base_seq(), 10u);
  log.on_epoch(k, make_est(700.0, 0.7, 10));
  EXPECT_EQ(log.last_seq(), 10u);
}

// ---- replication frame codecs ---------------------------------------------

TEST(WireV3Repl, EpochPullAndBatchRoundTrip) {
  const v3::epoch_pull p{77, 512};
  const std::string pf = v3::encode_epoch_pull_frame(p);
  const v3::epoch_pull back = v3::decode_epoch_pull_frame(pf);
  EXPECT_EQ(back.since_seq, 77u);
  EXPECT_EQ(back.max_records, 512u);

  std::vector<proto::epoch_update> ups(2);
  ups[0] = {1, {3, -2}, "NetB", trace::metric::udp_throughput_bps,
            300.0, 1.0e6 / 3.0, 123.456, 41};
  ups[1] = {2, {0, 5}, "NetC", trace::metric::rtt_s,
            600.0, 0.125, 0.0078125, 7};
  const std::string bf = v3::encode_epoch_batch_frame(ups);
  const std::vector<proto::epoch_update> rb = v3::decode_epoch_batch_frame(bf);
  ASSERT_EQ(rb.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(rb[i].seq, ups[i].seq);
    EXPECT_EQ(rb[i].zone.ix, ups[i].zone.ix);
    EXPECT_EQ(rb[i].zone.iy, ups[i].zone.iy);
    EXPECT_EQ(rb[i].network, ups[i].network);
    EXPECT_EQ(rb[i].metric, ups[i].metric);
    // Raw IEEE-754 bits on the wire: bit-exact by construction.
    EXPECT_EQ(rb[i].epoch_start_s, ups[i].epoch_start_s);
    EXPECT_EQ(rb[i].mean, ups[i].mean);
    EXPECT_EQ(rb[i].stddev, ups[i].stddev);
    EXPECT_EQ(rb[i].samples, ups[i].samples);
  }
}

TEST(WireV3Repl, SnapshotAndPromoteFramesRoundTrip) {
  const std::string rf = v3::encode_snapshot_req_frame(4096);
  EXPECT_EQ(v3::decode_snapshot_req_frame(rf), 4096u);

  proto::reply_buffer out;
  const std::string payload(100, 'x');
  v3::encode_snapshot_chunk_frame(32, 132, true, payload, out);
  const v3::snapshot_chunk c =
      v3::decode_snapshot_chunk_frame(out.view());
  EXPECT_EQ(c.offset, 32u);
  EXPECT_EQ(c.total, 132u);
  EXPECT_TRUE(c.last);
  EXPECT_EQ(c.data, payload);

  const std::string pf = v3::encode_promote_frame();
  EXPECT_NO_THROW(v3::decode_promote_frame(pf));
  // A PROMOTE with payload bytes is malformed.
  std::string bad = pf;
  bad[2] = 1;  // declare one payload byte
  bad += 'x';
  EXPECT_THROW(v3::decode_promote_frame(bad), std::invalid_argument);
}

// ---- leader/follower pair over the unified server entry -------------------

struct repl_pair {
  geo::projection proj{geo::lat_lon{43.0, -89.4}};
  geo::zone_grid grid{proj, 250.0};
  core::sharded_config scfg;
  core::sharded_coordinator lc;
  proto::coordinator_server lserver;
  repl::leader lead;
  core::sharded_coordinator fc;
  proto::coordinator_server fserver;
  repl::follower fol;
  repl::transport to_leader;

  static core::sharded_config sync_cfg() {
    core::sharded_config c;
    c.coordinator.epochs.default_epoch_s = 100.0;
    c.num_shards = 2;
    c.synchronous = true;
    return c;
  }

  repl_pair()
      : scfg(sync_cfg()),
        lc(grid, {"NetB", "NetC"}, scfg, 1),
        lserver(lc),
        lead(lc),
        fc(grid, {"NetB", "NetC"}, scfg, 1),
        fserver(fc),
        fol(fc),
        to_leader([this](std::string_view f) { return lserver.handle(f); }) {
    lserver.attach_replication(&lead);
    fserver.attach_replication(&fol);
  }

  /// Feeds `n` tcp_download records per epoch across `epochs` epochs of
  /// 100 s, rolling each epoch over as the next one's samples arrive.
  void ingest(double mean, int epochs, int n = 8, double x = 200.0) {
    std::vector<trace::measurement_record> recs;
    for (int e = 0; e < epochs; ++e) {
      for (int i = 0; i < n; ++i) {
        trace::measurement_record r;
        r.time_s = 100.0 * e + 2.0 * i;
        r.network = "NetB";
        r.pos = proj.to_lat_lon(geo::xy{x, 100.0});
        r.client_id = 7;
        r.kind = trace::probe_kind::tcp_download;
        r.success = true;
        r.throughput_bps = mean + 1000.0 * i + 10.0 * e;
        recs.push_back(r);
      }
    }
    lc.report_batch(recs);
    lc.flush();
  }

  void expect_states_bit_equal() {
    const auto lk = lc.keys();
    auto fk = fc.keys();
    ASSERT_EQ(lk.size(), fk.size());
    for (const core::estimate_key& k : lk) {
      const auto lh = lc.history(k);
      const auto fh = fc.history(k);
      ASSERT_EQ(lh.size(), fh.size()) << k.network;
      for (std::size_t i = 0; i < lh.size(); ++i) {
        EXPECT_EQ(lh[i].epoch_start_s, fh[i].epoch_start_s);
        EXPECT_EQ(lh[i].mean, fh[i].mean);
        EXPECT_EQ(lh[i].stddev, fh[i].stddev);
        EXPECT_EQ(lh[i].samples, fh[i].samples);
      }
    }
  }
};

TEST(Replication, FollowerCatchUpAndPollTrackTheLeaderBitExactly) {
  repl_pair p;
  p.ingest(1.0e6, 3);  // epochs 0 and 1 freeze; epoch 2 stays open

  // A joiner catches up by snapshot, then rides the epoch stream.
  p.fol.catch_up(p.to_leader);
  ASSERT_TRUE(p.fol.poll(p.to_leader).has_value());
  p.expect_states_bit_equal();
  EXPECT_EQ(p.fol.applied_seq(), p.lead.log().last_seq());

  // More rollovers stream incrementally.
  p.ingest(2.0e6, 6);
  const auto applied = p.fol.poll(p.to_leader);
  ASSERT_TRUE(applied.has_value());
  EXPECT_GT(*applied, 0u);
  p.expect_states_bit_equal();
}

TEST(Replication, EpochbIsAlsoAnApplyRequestAndAcksTheCount) {
  repl_pair p;
  std::vector<proto::epoch_update> ups(2);
  ups[0] = {1, {4, 1}, "NetB", trace::metric::tcp_throughput_bps,
            0.0, 5.0e6, 1.0e5, 12};
  ups[1] = {2, {4, 1}, "NetB", trace::metric::tcp_throughput_bps,
            100.0, 6.0e6, 2.0e5, 9};
  const std::string reply =
      p.fserver.handle(v3::encode_epoch_batch_frame(ups));
  const auto hdr = v3::peek_header(reply);
  ASSERT_TRUE(hdr.has_value());
  ASSERT_EQ(hdr->op, v3::opcode::ack);
  EXPECT_EQ(v3::decode_ack_frame(reply).count, 2u);
  const auto latest = p.fc.latest(
      {{4, 1}, "NetB", trace::metric::tcp_throughput_bps});
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->mean, 6.0e6);
  // Re-sending the same batch is deduplicated by the cursor.
  const std::string again =
      p.fserver.handle(v3::encode_epoch_batch_frame(ups));
  EXPECT_EQ(v3::decode_ack_frame(again).count, 0u);
}

TEST(Replication, ReplicationOpcodesWithoutAnEndpointDrawErrUnsupported) {
  geo::projection proj(geo::lat_lon{43.0, -89.4});
  geo::zone_grid grid(proj, 250.0);
  core::sharded_coordinator coord(grid, {"NetB"}, {}, 1);
  proto::coordinator_server server(coord);  // nothing attached

  for (const std::string& frame :
       {v3::encode_epoch_pull_frame({0, 16}),
        v3::encode_epoch_batch_frame({}),
        v3::encode_snapshot_req_frame(0), v3::encode_promote_frame()}) {
    const std::string reply = server.handle(frame);
    const auto hdr = v3::peek_header(reply);
    ASSERT_TRUE(hdr.has_value());
    ASSERT_EQ(hdr->op, v3::opcode::err);
    EXPECT_EQ(v3::decode_error_frame(reply).code,
              proto::err_code::unsupported);
  }
}

TEST(Replication, WirePromoteFlipsTheFollowerAndRefusesRepeats) {
  repl_pair p;
  p.ingest(1.0e6, 2);
  p.fol.catch_up(p.to_leader);
  ASSERT_TRUE(p.fol.poll(p.to_leader).has_value());
  const std::uint64_t cursor = p.fol.applied_seq();

  const std::string ok = p.fserver.handle(v3::encode_promote_frame());
  ASSERT_EQ(v3::peek_header(ok)->op, v3::opcode::ack);
  EXPECT_TRUE(p.fol.promoted());
  // A second PROMOTE is refused, like promoting the leader itself.
  const std::string rep = p.fserver.handle(v3::encode_promote_frame());
  EXPECT_EQ(v3::peek_header(rep)->op, v3::opcode::err);
  std::vector<proto::epoch_update> out;
  EXPECT_FALSE(p.lead.promote());

  // Post-promotion rollovers land in the follower's own log, continuing
  // the sequence numbering from the applied cursor -- a peer's pull
  // cursor stays valid across the failover.
  std::vector<trace::measurement_record> recs;
  for (int i = 0; i < 6; ++i) {
    trace::measurement_record r;
    r.time_s = 1000.0 + 20.0 * i;
    r.network = "NetB";
    r.pos = p.proj.to_lat_lon(geo::xy{200.0, 100.0});
    r.client_id = 9;
    r.kind = trace::probe_kind::tcp_download;
    r.success = true;
    r.throughput_bps = 3.0e6;
    recs.push_back(r);
  }
  p.fc.report_batch(recs);
  trace::measurement_record roll = recs.back();
  roll.time_s = 2000.0;  // crosses the epoch boundary: freezes the open one
  p.fc.report_batch({&roll, 1});
  p.fc.flush();
  out.clear();
  ASSERT_TRUE(p.fol.pull(cursor, 100, out));
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front().seq, cursor + 1);
}

TEST(Replication, SnapshotCatchUpStreamsInBoundedChunks) {
  repl_pair p;
  // Enough frozen history that the persist rendering crosses several
  // 16 KiB chunks.
  for (int z = 0; z < 40; ++z) {
    for (int e = 0; e < 10; ++e) {
      p.lc.restore_estimate(
          {{z, 3}, "NetB", trace::metric::udp_throughput_bps},
          make_est(100.0 * e, 1.0e6 + 13.0 * z + e, 21));
    }
  }
  auto& chunks = obs::registry::global().get_counter(
      obs::names::kReplSnapshotChunks);
  const std::uint64_t before = chunks.value();
  p.fol.catch_up(p.to_leader);
  EXPECT_GE(chunks.value() - before, 2u);
  p.expect_states_bit_equal();
}

TEST(Replication, ReplicaLagFaultSkipsThePollRound) {
  repl_pair p;
  p.ingest(1.0e6, 3);
  scenario::injector inj(1);
  inj.add_rule({core::fault::site::replica_lag, 0, 1, 1.0,
                core::fault::action::fail});
  scenario::arm_scope armed(inj);

  const auto skipped = p.fol.poll(p.to_leader);
  ASSERT_TRUE(skipped.has_value());
  EXPECT_EQ(*skipped, 0u);
  EXPECT_EQ(p.fol.applied_seq(), 0u);
  EXPECT_EQ(inj.fired(core::fault::site::replica_lag), 1u);
  // The budget is spent: the next round catches up fully.
  const auto applied = p.fol.poll(p.to_leader);
  ASSERT_TRUE(applied.has_value());
  EXPECT_GT(*applied, 0u);
  p.expect_states_bit_equal();
}

TEST(Replication, EvictedLogTellsTheFollowerToSnapshot) {
  geo::projection proj(geo::lat_lon{43.0, -89.4});
  geo::zone_grid grid(proj, 250.0);
  core::sharded_config scfg = repl_pair::sync_cfg();
  core::sharded_coordinator lc(grid, {"NetB"}, scfg, 1);
  proto::coordinator_server lserver(lc);
  repl::leader lead(lc, /*log_capacity=*/2);
  lserver.attach_replication(&lead);
  core::sharded_coordinator fc(grid, {"NetB"}, scfg, 1);
  repl::follower fol(fc);

  const core::estimate_key k{{2, 2}, "NetB", trace::metric::rtt_s};
  for (int i = 0; i < 6; ++i) {
    lc.restore_estimate(k, make_est(100.0 * i, 0.1, 5));
    lead.log().on_epoch(k, make_est(100.0 * i, 0.1, 5));
  }
  // The follower's cursor (0) fell below the ring's base: poll reports
  // the truncation instead of silently skipping epochs...
  const repl::transport t = [&](std::string_view f) {
    return lserver.handle(f);
  };
  EXPECT_FALSE(fol.poll(t).has_value());
  // ...and catch-up (snapshot + fenced suffix) repairs it.
  fol.catch_up(t);
  ASSERT_TRUE(fol.poll(t).has_value());
  EXPECT_EQ(fc.history(k).size(), lc.history(k).size());
}

// ---- commutative + idempotent merges ---------------------------------------

TEST(ZoneTableMerge, DisjointFeedsMergeCommutatively) {
  const core::estimate_key k{{1, 1}, "NetB", trace::metric::loss_rate};
  const core::epoch_estimate a = make_est(300.0, 0.02, 17);
  const core::epoch_estimate b = make_est(300.0, 0.05, 4);

  core::zone_table ab(2.0);
  ab.merge_estimate(k, a);
  ab.merge_estimate(k, b);
  core::zone_table ba(2.0);
  ba.merge_estimate(k, b);
  ba.merge_estimate(k, a);

  const auto ra = ab.latest(k);
  const auto rb = ba.latest(k);
  ASSERT_TRUE(ra && rb);
  EXPECT_EQ(ra->mean, rb->mean);
  EXPECT_EQ(ra->stddev, rb->stddev);
  EXPECT_EQ(ra->samples, a.samples + b.samples);
  EXPECT_EQ(rb->samples, a.samples + b.samples);
}

TEST(ZoneTableMerge, BitIdenticalReApplyIsIdempotent) {
  // The snapshot/pull overlap during live catch-up re-delivers the same
  // frozen epoch; re-applying it must be a no-op, not a double-count.
  const core::estimate_key k{{1, 1}, "NetB", trace::metric::jitter_s};
  const core::epoch_estimate e = make_est(600.0, 0.004, 25);
  core::zone_table t(2.0);
  // First delivery inserts a fresh epoch (merge_estimate reports false:
  // nothing combined); the bit-identical re-delivery is absorbed as a
  // merge-with-self no-op (reports true).
  ASSERT_FALSE(t.merge_estimate(k, e));
  ASSERT_TRUE(t.merge_estimate(k, e));
  const auto latest = t.latest(k);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->samples, 25u);
  EXPECT_EQ(latest->mean, e.mean);
  EXPECT_EQ(latest->stddev, e.stddev);
  EXPECT_EQ(t.history(k).size(), 1u);
}

// ---- TSan-targeted stress: leader + two followers, promotion mid-storm ----

TEST(ReplStress, PromotionMidStorm) {
  geo::projection proj(geo::lat_lon{43.0, -89.4});
  geo::zone_grid grid(proj, 250.0);
  core::sharded_config scfg;
  scfg.coordinator.epochs.default_epoch_s = 60.0;  // rollovers every ~2 batches
  scfg.num_shards = 4;  // asynchronous: drain workers race the pullers
  core::sharded_coordinator lc(grid, {"NetB", "NetC"}, scfg, 1);
  proto::coordinator_server lserver(lc);
  repl::leader lead(lc);
  lserver.attach_replication(&lead);

  core::sharded_coordinator f1c(grid, {"NetB", "NetC"}, scfg, 1);
  proto::coordinator_server f1server(f1c);
  repl::follower f1(f1c);
  f1server.attach_replication(&f1);
  core::sharded_coordinator f2c(grid, {"NetB", "NetC"}, scfg, 1);
  proto::coordinator_server f2server(f2c);
  repl::follower f2(f2c);
  f2server.attach_replication(&f2);

  const repl::transport to_leader = [&](std::string_view f) {
    return lserver.handle(f);
  };

  std::atomic<bool> stop{false};
  // Ingest storm: binary REPORTB frames through the leader's unified
  // entry point while both followers sync.
  std::thread writer([&] {
    double t = 0.0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<trace::measurement_record> recs;
      for (int i = 0; i < 16; ++i) {
        trace::measurement_record r;
        r.time_s = t + i;
        r.network = i % 2 == 0 ? "NetB" : "NetC";
        r.pos = proj.to_lat_lon(
            geo::xy{100.0 * (i % 5), 150.0 * (i % 3)});
        r.client_id = 100 + i;
        r.kind = trace::probe_kind::tcp_download;
        r.success = true;
        r.throughput_bps = 1.0e6 + 1000.0 * i;
        recs.push_back(r);
      }
      (void)lserver.handle(v3::encode_report_batch_frame(recs));
      t += 40.0;  // rollovers fire continuously under the storm
    }
  });
  auto puller = [&](repl::follower& f) {
    f.catch_up(to_leader);
    // Poll until real records have flowed -- the writer needs wall time
    // to cross epoch boundaries -- but stay bounded so a broken feed
    // still terminates (the applied_seq assertions below then fail).
    for (int round = 0; round < 200000 && f.applied_seq() < 200; ++round) {
      if (!f.poll(to_leader).has_value()) f.catch_up(to_leader);
      if (round % 16 == 0) std::this_thread::yield();
    }
  };
  std::thread p1(puller, std::ref(f1));
  std::thread p2(puller, std::ref(f2));
  p1.join();
  // Promotion mid-storm, through the wire path, while p2 still pulls.
  const std::string reply = f1server.handle(v3::encode_promote_frame());
  EXPECT_EQ(v3::peek_header(reply)->op, v3::opcode::ack);
  p2.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  lc.flush();
  EXPECT_TRUE(f1.promoted());
  EXPECT_FALSE(f2.promoted());
  EXPECT_GT(f1.applied_seq(), 0u);
  EXPECT_GT(f2.applied_seq(), 0u);
  // Both followers hold a prefix-consistent mirror: every stream they
  // know, the leader knows, with at least as much history.
  for (const core::estimate_key& k : f2c.keys()) {
    EXPECT_GE(lc.history(k).size(), f2c.history(k).size());
  }
}

}  // namespace
}  // namespace wiscape

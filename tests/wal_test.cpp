// Crash-consistency tests for the WAL/snapshot pair (ISSUE 10).
//
// The torn-write corpus is the core: a WAL stream cut at EVERY byte
// offset -- mid-header, mid-record, mid-checksum, and at each record
// boundary -- must recover to exactly the last complete record, count
// core.persist.wal_truncated once per damaged tail, and never crash.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/durable_log.h"
#include "core/fault_injection.h"
#include "core/sharded_coordinator.h"
#include "geo/projection.h"
#include "geo/zone_grid.h"
#include "obs/names.h"
#include "obs/registry.h"
#include "scenario/injector.h"

namespace wiscape {
namespace {

struct wal_record {
  std::uint64_t seq;
  core::estimate_key key;
  core::epoch_estimate est;
};

std::vector<wal_record> corpus_records() {
  std::vector<wal_record> recs;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    wal_record r;
    r.seq = i;
    r.key = {{static_cast<int>(i % 3), -1}, "NetB",
             trace::metric::udp_throughput_bps};
    // Deliberately awkward doubles: %.17g must round-trip them bit-exactly.
    r.est.epoch_start_s = 300.0 * static_cast<double>(i) + 0.125;
    r.est.mean = 1.0e6 / 3.0 + static_cast<double>(i);
    r.est.stddev = 7.0 / 9.0;
    r.est.samples = 11 * i;
    recs.push_back(std::move(r));
  }
  return recs;
}

// Renders the corpus and the byte offset at which each record completes.
std::string render_corpus(const std::vector<wal_record>& recs,
                          std::vector<std::size_t>& ends) {
  std::ostringstream os;
  core::wal_write_header(os);
  const std::size_t header_end = os.str().size();
  ends.clear();
  ends.push_back(header_end);  // "zero records complete" boundary
  for (const wal_record& r : recs) {
    core::wal_append_record(os, r.seq, r.key, r.est);
    ends.push_back(os.str().size());
  }
  return os.str();
}

obs::counter& truncated_counter() {
  return obs::registry::global().get_counter(obs::names::kPersistWalTruncated);
}

TEST(Wal, TornTailCorpusRecoversToLastCompleteRecord) {
  const std::vector<wal_record> recs = corpus_records();
  std::vector<std::size_t> ends;
  const std::string full = render_corpus(recs, ends);

  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    // Number of complete records wholly inside the prefix.
    std::size_t complete = 0;
    while (complete + 1 < ends.size() && ends[complete + 1] <= cut) {
      ++complete;
    }
    // A clean cut lands exactly on a boundary (including the empty file
    // and the header line); anything else is a torn tail.
    const bool clean =
        cut == 0 || (cut >= ends.front() &&
                     std::find(ends.begin(), ends.end(), cut) != ends.end());

    std::istringstream is(full.substr(0, cut));
    std::vector<wal_record> applied;
    const std::uint64_t before = truncated_counter().value();
    const std::uint64_t last = core::wal_replay(
        is, [&](std::uint64_t seq, const core::estimate_key& key,
                const core::epoch_estimate& est) {
          applied.push_back({seq, key, est});
        });
    const std::uint64_t torn_delta = truncated_counter().value() - before;

    ASSERT_EQ(applied.size(), complete) << "cut at byte " << cut;
    EXPECT_EQ(last, complete == 0 ? 0u : recs[complete - 1].seq)
        << "cut at byte " << cut;
    EXPECT_EQ(torn_delta, clean ? 0u : 1u) << "cut at byte " << cut;
    // Replayed records are bit-exact, never partially parsed.
    for (std::size_t i = 0; i < applied.size(); ++i) {
      EXPECT_EQ(applied[i].seq, recs[i].seq);
      EXPECT_EQ(applied[i].key.network, recs[i].key.network);
      EXPECT_EQ(applied[i].est.epoch_start_s, recs[i].est.epoch_start_s);
      EXPECT_EQ(applied[i].est.mean, recs[i].est.mean);
      EXPECT_EQ(applied[i].est.stddev, recs[i].est.stddev);
      EXPECT_EQ(applied[i].est.samples, recs[i].est.samples);
    }
  }
}

TEST(Wal, BitRotInsideAValidLengthRecordIsCaughtByTheChecksum) {
  const std::vector<wal_record> recs = corpus_records();
  std::vector<std::size_t> ends;
  std::string full = render_corpus(recs, ends);
  // Flip one digit inside the THIRD record's body: same length, bad sum.
  full[ends[2] + 3] = full[ends[2] + 3] == '1' ? '2' : '1';

  std::istringstream is(full);
  std::size_t applied = 0;
  const std::uint64_t before = truncated_counter().value();
  const std::uint64_t last = core::wal_replay(
      is, [&](std::uint64_t, const core::estimate_key&,
              const core::epoch_estimate&) { ++applied; });
  EXPECT_EQ(applied, 2u);  // stops before the rotten record
  EXPECT_EQ(last, 2u);
  EXPECT_EQ(truncated_counter().value() - before, 1u);
}

// ---- the on-disk pair ------------------------------------------------------

struct pair_fixture {
  std::string dir;
  geo::projection proj{geo::lat_lon{43.0, -89.4}};
  geo::zone_grid grid{proj, 250.0};

  pair_fixture() {
    dir = testing::TempDir() + "wal_pair_" +
          std::to_string(reinterpret_cast<std::uintptr_t>(this));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
  }
  ~pair_fixture() { std::filesystem::remove_all(dir); }

  core::sharded_coordinator make_coord() {
    return core::sharded_coordinator(grid, {"NetB"}, {}, 1);
  }
};

TEST(DurableLog, AppendCheckpointRecoverRoundTrip) {
  pair_fixture fx;
  core::durable_log dl(fx.dir);
  core::sharded_coordinator a = fx.make_coord();

  const std::vector<wal_record> recs = corpus_records();
  // First three epochs land in the coordinator AND the WAL...
  for (std::size_t i = 0; i < 3; ++i) {
    a.restore_estimate(recs[i].key, recs[i].est);
    dl.append(recs[i].seq, recs[i].key, recs[i].est);
  }
  // ...then a checkpoint folds them into the snapshot and resets the WAL...
  dl.checkpoint(a);
  // ...and two more ride the fresh WAL only.
  for (std::size_t i = 3; i < recs.size(); ++i) {
    a.restore_estimate(recs[i].key, recs[i].est);
    dl.append(recs[i].seq, recs[i].key, recs[i].est);
  }

  core::sharded_coordinator b = fx.make_coord();
  const std::uint64_t last = dl.recover(b);
  EXPECT_EQ(last, recs.back().seq);
  ASSERT_EQ(b.keys().size(), a.keys().size());
  for (const core::estimate_key& k : a.keys()) {
    const auto ah = a.history(k);
    const auto bh = b.history(k);
    ASSERT_EQ(ah.size(), bh.size());
    for (std::size_t i = 0; i < ah.size(); ++i) {
      EXPECT_EQ(ah[i].epoch_start_s, bh[i].epoch_start_s);
      EXPECT_EQ(ah[i].mean, bh[i].mean);
      EXPECT_EQ(ah[i].stddev, bh[i].stddev);
      EXPECT_EQ(ah[i].samples, bh[i].samples);
    }
  }
}

TEST(DurableLog, InjectedAppendFaultLeavesTheTailIntact) {
  pair_fixture fx;
  core::durable_log dl(fx.dir);
  const std::vector<wal_record> recs = corpus_records();
  dl.append(recs[0].seq, recs[0].key, recs[0].est);
  const auto size_before = std::filesystem::file_size(dl.wal_path());

  scenario::injector inj(1);
  inj.add_rule({core::fault::site::wal_append, 0, 1, 1.0,
                core::fault::action::fail});
  scenario::arm_scope armed(inj);
  EXPECT_THROW(dl.append(recs[1].seq, recs[1].key, recs[1].est),
               std::runtime_error);
  // Full-disk model: nothing was written, the tail is the previous record.
  EXPECT_EQ(std::filesystem::file_size(dl.wal_path()), size_before);
  // The rule's budget is spent: the retry lands.
  dl.append(recs[1].seq, recs[1].key, recs[1].est);

  core::sharded_coordinator back = fx.make_coord();
  EXPECT_EQ(dl.recover(back), recs[1].seq);
}

TEST(DurableLog, TornCheckpointPreservesSnapshotAndWal) {
  pair_fixture fx;
  core::durable_log dl(fx.dir);
  core::sharded_coordinator a = fx.make_coord();
  const std::vector<wal_record> recs = corpus_records();
  for (std::size_t i = 0; i < 2; ++i) {
    a.restore_estimate(recs[i].key, recs[i].est);
    dl.append(recs[i].seq, recs[i].key, recs[i].est);
  }
  dl.checkpoint(a);  // a good snapshot to protect
  a.restore_estimate(recs[2].key, recs[2].est);
  dl.append(recs[2].seq, recs[2].key, recs[2].est);

  scenario::injector inj(1);
  inj.add_rule({core::fault::site::snapshot_torn, 0, 1, 1.0,
                core::fault::action::fail});
  scenario::arm_scope armed(inj);
  EXPECT_THROW(dl.checkpoint(a), std::runtime_error);
  // The crash left a truncated temp file, never the real snapshot.
  EXPECT_TRUE(std::filesystem::exists(dl.snapshot_path() + ".tmp"));

  // Recovery = intact previous snapshot + the intact WAL suffix.
  core::sharded_coordinator b = fx.make_coord();
  EXPECT_EQ(dl.recover(b), recs[2].seq);
  const core::estimate_key& k = recs[0].key;
  EXPECT_EQ(b.history(k).size(), a.history(k).size());
}

}  // namespace
}  // namespace wiscape

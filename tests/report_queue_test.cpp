// Bounded MPMC report queue: FIFO per producer, backpressure on a full
// queue, and clean shutdown that drains everything already enqueued.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/report_queue.h"

namespace wiscape::core {
namespace {

// Tags a record so tests can recover (producer, sequence) after dequeue.
trace::measurement_record tagged(std::uint64_t producer, double seq) {
  trace::measurement_record r;
  r.client_id = producer;
  r.time_s = seq;
  return r;
}

TEST(ReportQueue, RejectsZeroCapacity) {
  EXPECT_THROW(report_queue(0), std::invalid_argument);
}

TEST(ReportQueue, SingleThreadFifo) {
  report_queue q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push(tagged(1, i)));
  EXPECT_EQ(q.size(), 5u);
  std::vector<trace::measurement_record> out;
  EXPECT_EQ(q.pop_batch(out, 3), 3u);
  EXPECT_EQ(q.pop_batch(out, 100), 2u);
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i].time_s, i);
  EXPECT_EQ(q.size(), 0u);
}

TEST(ReportQueue, FifoPerProducerUnderConcurrency) {
  constexpr std::uint64_t kProducers = 4;
  constexpr std::size_t kPerProducer = 2000;
  report_queue q(64);

  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(tagged(p, static_cast<double>(i))));
      }
    });
  }

  std::vector<trace::measurement_record> drained;
  std::thread consumer([&] {
    std::vector<trace::measurement_record> batch;
    while (drained.size() < kProducers * kPerProducer) {
      batch.clear();
      if (q.pop_batch(batch, 128) == 0) break;
      drained.insert(drained.end(), batch.begin(), batch.end());
    }
  });
  for (auto& t : producers) t.join();
  q.close();
  consumer.join();

  ASSERT_EQ(drained.size(), kProducers * kPerProducer);
  // Each producer's records appear in its push order.
  std::vector<double> next(kProducers, 0.0);
  for (const auto& rec : drained) {
    ASSERT_LT(rec.client_id, kProducers);
    EXPECT_EQ(rec.time_s, next[rec.client_id]);
    next[rec.client_id] += 1.0;
  }
}

TEST(ReportQueue, FullQueueBlocksProducerUntilConsumed) {
  report_queue q(2);
  ASSERT_TRUE(q.push(tagged(1, 0)));
  ASSERT_TRUE(q.push(tagged(1, 1)));
  EXPECT_FALSE(q.try_push(tagged(1, 99)));  // full: non-blocking push fails

  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(tagged(1, 2)));  // blocks until the consumer pops
    third_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load()) << "push returned while queue was full";

  std::vector<trace::measurement_record> out;
  EXPECT_EQ(q.pop_batch(out, 1), 1u);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(q.pop_batch(out, 10), 2u);
  ASSERT_EQ(out.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(out[i].time_s, i);  // FIFO held
}

TEST(ReportQueue, CloseDrainsEnqueuedItemsThenReturnsZero) {
  report_queue q(16);
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(q.push(tagged(1, i)));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(tagged(1, 100)));  // no new items after close

  std::vector<trace::measurement_record> out;
  EXPECT_EQ(q.pop_batch(out, 4), 4u);
  EXPECT_EQ(q.pop_batch(out, 4), 3u);  // the remainder drains
  EXPECT_EQ(q.pop_batch(out, 4), 0u);  // then consumers see shutdown
  ASSERT_EQ(out.size(), 7u);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(out[i].time_s, i);
}

TEST(ReportQueue, CloseUnblocksWaitingProducerAndConsumer) {
  report_queue q(1);
  ASSERT_TRUE(q.push(tagged(1, 0)));
  std::thread blocked_producer([&] {
    EXPECT_FALSE(q.push(tagged(1, 1)));  // full; close() must release it
  });
  report_queue empty_q(1);
  std::thread blocked_consumer([&] {
    std::vector<trace::measurement_record> out;
    EXPECT_EQ(empty_q.pop_batch(out, 8), 0u);  // empty; close() releases it
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  empty_q.close();
  blocked_producer.join();
  blocked_consumer.join();
}

TEST(ReportQueue, PushBatchEnqueuesAllInOrder) {
  report_queue q(64);
  std::vector<trace::measurement_record> batch;
  for (int i = 0; i < 10; ++i) batch.push_back(tagged(1, i));
  EXPECT_EQ(q.push_batch(batch), 10u);
  EXPECT_EQ(q.size(), 10u);
  std::vector<trace::measurement_record> out;
  EXPECT_EQ(q.pop_batch(out, 100), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i].time_s, i);
  EXPECT_EQ(q.push_batch({}), 0u);  // empty batch is a no-op
}

TEST(ReportQueue, PushBatchLargerThanCapacityFeedsThroughBackpressure) {
  // A batch bigger than the queue's capacity must flow through in gulps as
  // the consumer makes room, keeping order, losing nothing.
  constexpr std::size_t kBatch = 100;
  report_queue q(8);
  std::vector<trace::measurement_record> batch;
  for (std::size_t i = 0; i < kBatch; ++i) {
    batch.push_back(tagged(1, static_cast<double>(i)));
  }
  std::vector<trace::measurement_record> drained;
  std::thread consumer([&] {
    std::vector<trace::measurement_record> out;
    while (drained.size() < kBatch) {
      out.clear();
      if (q.pop_batch(out, 16) == 0) break;
      drained.insert(drained.end(), out.begin(), out.end());
    }
  });
  EXPECT_EQ(q.push_batch(batch), kBatch);
  q.close();
  consumer.join();
  ASSERT_EQ(drained.size(), kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) EXPECT_EQ(drained[i].time_s, i);
}

TEST(ReportQueue, PushBatchStaysContiguousAcrossProducers) {
  // Two producers batch-push concurrently into a roomy queue: each batch
  // must land contiguous (one lock hold), in order, nothing interleaved.
  constexpr std::size_t kBatch = 50;
  report_queue q(256);
  auto make = [](std::uint64_t p) {
    std::vector<trace::measurement_record> batch;
    for (std::size_t i = 0; i < kBatch; ++i) {
      batch.push_back(tagged(p, static_cast<double>(i)));
    }
    return batch;
  };
  std::thread a([&] { EXPECT_EQ(q.push_batch(make(1)), kBatch); });
  std::thread b([&] { EXPECT_EQ(q.push_batch(make(2)), kBatch); });
  a.join();
  b.join();
  std::vector<trace::measurement_record> out;
  EXPECT_EQ(q.pop_batch(out, 2 * kBatch), 2 * kBatch);
  // Batches didn't interleave: the producer id changes at most once.
  int switches = 0;
  for (std::size_t i = 1; i < out.size(); ++i) {
    if (out[i].client_id != out[i - 1].client_id) ++switches;
  }
  EXPECT_LE(switches, 1);
  // And within each batch the order held.
  std::vector<double> next(3, 0.0);
  for (const auto& rec : out) {
    EXPECT_EQ(rec.time_s, next[rec.client_id]);
    next[rec.client_id] += 1.0;
  }
}

TEST(ReportQueue, PushBatchAfterCloseDropsEverything) {
  report_queue q(8);
  q.close();
  std::vector<trace::measurement_record> batch{tagged(1, 0), tagged(1, 1)};
  EXPECT_EQ(q.push_batch(batch), 0u);
  EXPECT_EQ(q.size(), 0u);
}

TEST(ReportQueue, WaitEmptyReturnsOnceConsumed) {
  report_queue q(8);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.push(tagged(1, i)));
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::vector<trace::measurement_record> out;
    q.pop_batch(out, 8);
  });
  q.wait_empty();
  EXPECT_EQ(q.size(), 0u);
  consumer.join();
}

}  // namespace
}  // namespace wiscape::core

#include <gtest/gtest.h>

#include <cmath>

#include "geo/lat_lon.h"
#include "geo/polyline.h"
#include "geo/projection.h"
#include "geo/zone_grid.h"

namespace wiscape::geo {
namespace {

constexpr lat_lon madison{43.0731, -89.4012};

TEST(LatLon, DistanceToSelfIsZero) {
  EXPECT_DOUBLE_EQ(distance_m(madison, madison), 0.0);
}

TEST(LatLon, DistanceIsSymmetric) {
  const lat_lon other{43.1, -89.3};
  EXPECT_NEAR(distance_m(madison, other), distance_m(other, madison), 1e-9);
}

TEST(LatLon, KnownDistanceMadisonChicago) {
  // Madison -> Chicago is roughly 196 km great-circle.
  const lat_lon chicago{41.8781, -87.6298};
  EXPECT_NEAR(distance_m(madison, chicago), 196'000.0, 4'000.0);
}

TEST(LatLon, OneDegreeLatitudeIsAbout111km) {
  const lat_lon north{madison.lat_deg + 1.0, madison.lon_deg};
  EXPECT_NEAR(distance_m(madison, north), 111'195.0, 200.0);
}

TEST(LatLon, BearingCardinalDirections) {
  const lat_lon north{madison.lat_deg + 0.1, madison.lon_deg};
  const lat_lon east{madison.lat_deg, madison.lon_deg + 0.1};
  EXPECT_NEAR(bearing_deg(madison, north), 0.0, 0.1);
  EXPECT_NEAR(bearing_deg(madison, east), 90.0, 0.1);
}

TEST(LatLon, DestinationRoundTrip) {
  for (double bearing : {0.0, 45.0, 133.0, 270.0}) {
    const lat_lon dest = destination(madison, bearing, 5000.0);
    EXPECT_NEAR(distance_m(madison, dest), 5000.0, 1.0) << bearing;
    EXPECT_NEAR(bearing_deg(madison, dest), bearing, 0.2) << bearing;
  }
}

TEST(LatLon, InterpolateEndpointsAndMidpoint) {
  const lat_lon b{43.2, -89.2};
  EXPECT_EQ(interpolate(madison, b, 0.0), madison);
  EXPECT_EQ(interpolate(madison, b, 1.0), b);
  const lat_lon mid = interpolate(madison, b, 0.5);
  EXPECT_NEAR(mid.lat_deg, (madison.lat_deg + b.lat_deg) / 2.0, 1e-12);
}

TEST(LatLon, ToStringFormat) {
  EXPECT_EQ(to_string(lat_lon{43.0, -89.5}), "43.000000,-89.500000");
}

TEST(Projection, RoundTripNearOrigin) {
  const projection proj(madison);
  for (double dx : {-3000.0, 0.0, 4000.0}) {
    for (double dy : {-2500.0, 0.0, 1500.0}) {
      const lat_lon p = proj.to_lat_lon({dx, dy});
      const xy back = proj.to_xy(p);
      EXPECT_NEAR(back.x_m, dx, 1e-6);
      EXPECT_NEAR(back.y_m, dy, 1e-6);
    }
  }
}

TEST(Projection, DistancesMatchHaversineAtCityScale) {
  const projection proj(madison);
  const lat_lon a = proj.to_lat_lon({-4000.0, 2000.0});
  const lat_lon b = proj.to_lat_lon({3000.0, -1000.0});
  const double planar = distance_m(proj.to_xy(a), proj.to_xy(b));
  const double sphere = distance_m(a, b);
  EXPECT_NEAR(planar, sphere, sphere * 0.001);
}

TEST(Projection, RejectsPolarOrigin) {
  EXPECT_THROW(projection({89.9, 0.0}), std::invalid_argument);
  EXPECT_THROW(projection({-90.0, 0.0}), std::invalid_argument);
}

TEST(ZoneGrid, CellAreaMatchesCircularZoneArea) {
  const zone_grid grid(projection(madison), 250.0);
  const double area = grid.cell_side_m() * grid.cell_side_m();
  EXPECT_NEAR(area, 3.14159265 * 250.0 * 250.0, 1.0);
}

TEST(ZoneGrid, SamePointSameZone) {
  const zone_grid grid(projection(madison), 250.0);
  EXPECT_EQ(grid.zone_of(madison), grid.zone_of(madison));
}

TEST(ZoneGrid, NearbyPointsShareZoneFarPointsDoNot) {
  const zone_grid grid(projection(madison), 250.0);
  const projection proj(madison);
  const zone_id center = grid.zone_of(proj.to_lat_lon({10.0, 10.0}));
  EXPECT_EQ(grid.zone_of(proj.to_lat_lon({30.0, 30.0})), center);
  EXPECT_NE(grid.zone_of(proj.to_lat_lon({3000.0, 3000.0})), center);
}

TEST(ZoneGrid, CenterLiesInsideItsZone) {
  const zone_grid grid(projection(madison), 250.0);
  const zone_id z{3, -2};
  EXPECT_EQ(grid.zone_of(grid.center(z)), z);
}

TEST(ZoneGrid, DistanceToCenterBounded) {
  const zone_grid grid(projection(madison), 250.0);
  const projection proj(madison);
  // Any point is within half the cell diagonal of its zone center.
  const double max_d = grid.cell_side_m() * std::sqrt(2.0) / 2.0;
  for (double x : {-801.0, 13.0, 997.0}) {
    const lat_lon p = proj.to_lat_lon({x, x / 2.0});
    EXPECT_LE(grid.distance_to_center_m(p, grid.zone_of(p)), max_d + 1e-6);
  }
}

TEST(ZoneGrid, RejectsBadRadius) {
  EXPECT_THROW(zone_grid(projection(madison), 0.0), std::invalid_argument);
  EXPECT_THROW(zone_grid(projection(madison), -5.0), std::invalid_argument);
}

TEST(ZoneGrid, ZoneIdHashDistinguishesNeighbours) {
  zone_id_hash h;
  EXPECT_NE(h({0, 1}), h({1, 0}));
  EXPECT_NE(h({-1, 0}), h({0, -1}));
}

TEST(CircularZone, ContainsRespectsRadius) {
  const circular_zone z{madison, 250.0, "test"};
  EXPECT_TRUE(z.contains(madison));
  EXPECT_TRUE(z.contains(destination(madison, 90.0, 249.0)));
  EXPECT_FALSE(z.contains(destination(madison, 90.0, 251.0)));
}

TEST(CircularZone, FindZonePicksFirstMatch) {
  const std::vector<circular_zone> zones{
      {destination(madison, 0.0, 2000.0), 250.0, "north"},
      {madison, 250.0, "home"},
  };
  EXPECT_EQ(find_zone(zones, madison), 1);
  EXPECT_EQ(find_zone(zones, destination(madison, 0.0, 2000.0)), 0);
  EXPECT_EQ(find_zone(zones, destination(madison, 90.0, 9000.0)), -1);
}

TEST(Polyline, RequiresTwoWaypoints) {
  EXPECT_THROW(polyline({madison}), std::invalid_argument);
}

TEST(Polyline, LengthOfStraightSegment) {
  const lat_lon end = destination(madison, 90.0, 1000.0);
  const polyline line({madison, end});
  EXPECT_NEAR(line.length_m(), 1000.0, 0.5);
}

TEST(Polyline, PointAtClampsAndInterpolates) {
  const lat_lon end = destination(madison, 90.0, 1000.0);
  const polyline line({madison, end});
  EXPECT_NEAR(distance_m(line.point_at(-10.0), madison), 0.0, 1e-6);
  EXPECT_NEAR(distance_m(line.point_at(99999.0), end), 0.0, 1e-6);
  EXPECT_NEAR(distance_m(line.point_at(500.0), madison), 500.0, 1.0);
}

TEST(Polyline, MultiSegmentCumulative) {
  const lat_lon a = destination(madison, 90.0, 1000.0);
  const lat_lon b = destination(a, 0.0, 500.0);
  const polyline line({madison, a, b});
  EXPECT_NEAR(line.length_m(), 1500.0, 1.0);
  // 1200 m in: 200 m up the second leg.
  EXPECT_NEAR(distance_m(line.point_at(1200.0), a), 200.0, 1.0);
}

TEST(Polyline, HeadingFollowsSegments) {
  const lat_lon a = destination(madison, 90.0, 1000.0);
  const lat_lon b = destination(a, 0.0, 500.0);
  const polyline line({madison, a, b});
  EXPECT_NEAR(line.heading_at(500.0), 90.0, 0.5);
  EXPECT_NEAR(line.heading_at(1200.0), 0.0, 0.5);
}

TEST(Polyline, StraightRouteSubdivides) {
  const lat_lon end = destination(madison, 45.0, 2000.0);
  const polyline line = straight_route(madison, end, 8);
  EXPECT_EQ(line.waypoints().size(), 9u);
  EXPECT_NEAR(line.length_m(), 2000.0, 2.0);
  EXPECT_THROW(straight_route(madison, end, 0), std::invalid_argument);
}

}  // namespace
}  // namespace wiscape::geo

// Wire protocol v3 (ISSUE 9 tentpole): the length-prefixed binary codec,
// its hostile-input behaviour, and the server's opcode dispatch.
//
// Three layers of coverage:
//   * codec round trips -- every frame type travels bit-exact (doubles as
//     raw IEEE-754 bits: NaN payloads, denormals, -0.0 and u64 ids above
//     2^53 all survive), and the incremental ESTB builder emits the exact
//     bytes of the whole-batch encoder;
//   * hostile input -- truncation at every byte boundary, patched-length
//     frames cut mid-field, trailing bytes, undefined opcodes, and batch
//     counts that lie about the payload: always std::invalid_argument (or
//     a typed ERR through the server), never a crash, and never an
//     allocation sized by the attacker's declared count;
//   * server dispatch -- binary frames answer binary frames with the same
//     accounting as their text twins, reply opcodes sent as requests draw
//     ERR unsupported, non-finite timestamps are rejected at the same
//     coordinator seam as text non-finite timestamps, and a v2-capped
//     server (server_options::advertised_version) answers text identically --
//     the v1/v2 interop guarantee.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/coordinator.h"
#include "obs/names.h"
#include "obs/registry.h"
#include "proto/messages.h"
#include "proto/server.h"
#include "proto/wire_v3.h"
#include "test_util.h"

namespace wiscape::proto {
namespace {

const geo::lat_lon here = cellnet::anchors::madison;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

std::uint64_t counter_value(const char* name) {
  return static_cast<std::uint64_t>(
      obs::registry::global().get_counter(name).value());
}

/// A record that populates every field with values a text codec would
/// mangle: non-representable decimals, a denormal, -0.0, an id over 2^53.
trace::measurement_record tricky_record() {
  trace::measurement_record r;
  r.time_s = 0.1;
  r.network = "NetB";
  r.pos = {43.0 + 1.0 / 3.0, -89.0 - 2.0 / 3.0};
  r.speed_mps = 5e-324;  // smallest denormal
  r.client_id = (1ull << 53) + 3;
  r.kind = trace::probe_kind::ping;
  r.success = true;
  r.throughput_bps = -0.0;
  r.loss_rate = 1e-9;
  r.jitter_s = 0.30000000000000004;
  r.rtt_s = 1.0 / 3.0;
  r.ping_sent = 10;
  r.ping_failures = 2;
  r.rssi_dbm = -101.75;
  r.device = "n95";
  return r;
}

/// Overwrites the u32 length field of a frame's header in place.
void patch_length(std::string& frame, std::uint32_t len) {
  for (int i = 0; i < 4; ++i) {
    frame[2 + i] = static_cast<char>((len >> (8 * i)) & 0xff);
  }
}

core::coordinator_config fast_epochs() {
  core::coordinator_config cfg;
  cfg.epochs.default_epoch_s = 120.0;
  cfg.default_samples_per_epoch = 10;
  return cfg;
}

struct server_fixture {
  cellnet::deployment dep = testing::tiny_deployment();
  geo::zone_grid grid{dep.proj(), 250.0};
  core::coordinator coord{grid, dep.names(), fast_epochs(), 5};
  coordinator_server server;

  /// `advertised` caps HELLO negotiation (a construction-time option now:
  /// the interop fixtures build a v2-capped server instead of mutating a
  /// live one).
  explicit server_fixture(std::uint32_t advertised = wire_version)
      : server{coord, {.advertised_version = advertised}} {}

  /// Ingests enough reports over several epochs that estimates freeze and
  /// publish (same recipe as ProtoServerV2.QueryServesWhatTheViewServes).
  void publish_stream(const std::string& network, geo::lat_lon pos) {
    for (int i = 0; i < 400; ++i) {
      measurement_report rep;
      rep.client_id = 1;
      rep.record = testing::make_record(1000.0 + i * 2.0, network, pos,
                                        trace::probe_kind::udp_burst,
                                        2e6 * (1.0 + 0.01 * i));
      server.handle(v3::encode_report_frame(rep));
    }
  }
};

// ---- round trips ----------------------------------------------------------

TEST(WireV3Codec, ReportRoundTripBitExact) {
  measurement_report m;
  m.client_id = (1ull << 63) + 7;
  m.record = tricky_record();
  const std::string frame = v3::encode_report_frame(m);
  ASSERT_TRUE(v3::is_frame_start(frame));
  const auto hdr = v3::peek_header(frame);
  ASSERT_TRUE(hdr.has_value());
  EXPECT_EQ(hdr->op, v3::opcode::report);
  EXPECT_EQ(v3::frame_header_bytes + hdr->payload_len, frame.size());

  const measurement_report back = v3::decode_report_frame(frame);
  EXPECT_EQ(back.client_id, m.client_id);
  const trace::measurement_record& r = back.record;
  const trace::measurement_record& e = m.record;
  EXPECT_EQ(bits(r.time_s), bits(e.time_s));
  EXPECT_EQ(bits(r.pos.lat_deg), bits(e.pos.lat_deg));
  EXPECT_EQ(bits(r.pos.lon_deg), bits(e.pos.lon_deg));
  EXPECT_EQ(bits(r.speed_mps), bits(e.speed_mps));
  EXPECT_EQ(r.client_id, e.client_id);
  EXPECT_EQ(r.kind, e.kind);
  EXPECT_EQ(r.success, e.success);
  EXPECT_EQ(bits(r.throughput_bps), bits(e.throughput_bps));  // -0.0 kept
  EXPECT_EQ(bits(r.loss_rate), bits(e.loss_rate));
  EXPECT_EQ(bits(r.jitter_s), bits(e.jitter_s));
  EXPECT_EQ(bits(r.rtt_s), bits(e.rtt_s));
  EXPECT_EQ(r.ping_sent, e.ping_sent);
  EXPECT_EQ(r.ping_failures, e.ping_failures);
  EXPECT_EQ(bits(r.rssi_dbm), bits(e.rssi_dbm));
  EXPECT_EQ(r.network, e.network);
  EXPECT_EQ(r.device, e.device);
}

TEST(WireV3Codec, NanPayloadFloatsTravelAsRawBits) {
  // The codec itself carries NaN/Inf untouched (rejection is the
  // coordinator's seam, tested below against the server).
  measurement_report m;
  m.client_id = 1;
  m.record = tricky_record();
  m.record.time_s = std::numeric_limits<double>::quiet_NaN();
  m.record.rtt_s = std::numeric_limits<double>::infinity();
  const auto back = v3::decode_report_frame(v3::encode_report_frame(m));
  EXPECT_EQ(bits(back.record.time_s), bits(m.record.time_s));
  EXPECT_EQ(bits(back.record.rtt_s), bits(m.record.rtt_s));
}

TEST(WireV3Codec, ReportBatchRoundTrip) {
  std::vector<trace::measurement_record> recs;
  for (int i = 0; i < 5; ++i) {
    recs.push_back(tricky_record());
    recs.back().time_s = 100.0 + i;
    recs.back().network = i % 2 ? "NetB" : "NetC";
  }
  const auto back =
      v3::decode_report_batch_frame(v3::encode_report_batch_frame(recs));
  ASSERT_EQ(back.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(bits(back[i].time_s), bits(recs[i].time_s));
    EXPECT_EQ(back[i].network, recs[i].network);
    EXPECT_EQ(back[i].client_id, recs[i].client_id);
  }
}

TEST(WireV3Codec, QueryRoundTripBitExact) {
  query_request q;
  q.pos = {here.lat_deg + 1.0 / 3.0, here.lon_deg - 1.0 / 7.0};
  q.network = "NetC";
  q.metric = trace::metric::rtt_s;
  q.time_s = 12345.000000001;
  const auto back = v3::decode_query_frame(v3::encode_query_frame(q));
  EXPECT_EQ(bits(back.pos.lat_deg), bits(q.pos.lat_deg));
  EXPECT_EQ(bits(back.pos.lon_deg), bits(q.pos.lon_deg));
  EXPECT_EQ(back.network, q.network);
  EXPECT_EQ(back.metric, q.metric);
  EXPECT_EQ(bits(back.time_s), bits(q.time_s));

  std::vector<query_request> qs{q, q};
  qs[1].metric = trace::metric::loss_rate;
  qs[1].network = "NetB";
  const auto bb = v3::decode_query_batch_frame(v3::encode_query_batch_frame(qs));
  ASSERT_EQ(bb.size(), 2u);
  EXPECT_EQ(bb[1].metric, trace::metric::loss_rate);
  EXPECT_EQ(bb[1].network, "NetB");
}

TEST(WireV3Codec, AckFrames) {
  reply_buffer rb;
  v3::encode_ack_frame(rb);
  const v3::ack_frame single = v3::decode_ack_frame(rb.view());
  EXPECT_FALSE(single.batched);

  rb.clear();
  v3::encode_ack_frame(12345678901234ull, rb);
  const v3::ack_frame batch = v3::decode_ack_frame(rb.view());
  EXPECT_TRUE(batch.batched);
  EXPECT_EQ(batch.count, 12345678901234ull);
}

TEST(WireV3Codec, EstimateFramePresenceAndNone) {
  estimate_reply est;
  est.zone = {-3, 17};
  est.network = "NetB";
  est.metric = trace::metric::udp_throughput_bps;
  est.count = 42;
  est.mean = 1.0 / 3.0e6;
  est.stddev = 2.0 / 7.0;
  est.epoch_index = 9;
  est.staleness_s = 0.25;
  est.confidence = 0.875;

  reply_buffer rb;
  v3::encode_estimate_frame(est, rb);
  const auto back = v3::decode_estimate_frame(rb.view());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->zone.ix, -3);
  EXPECT_EQ(back->zone.iy, 17);
  EXPECT_EQ(back->network, "NetB");
  EXPECT_EQ(back->metric, est.metric);
  EXPECT_EQ(back->count, 42u);
  EXPECT_EQ(bits(back->mean), bits(est.mean));
  EXPECT_EQ(bits(back->stddev), bits(est.stddev));
  EXPECT_EQ(back->epoch_index, 9u);
  EXPECT_EQ(bits(back->staleness_s), bits(est.staleness_s));
  EXPECT_EQ(bits(back->confidence), bits(est.confidence));

  rb.clear();
  v3::encode_estimate_frame(std::nullopt, rb);
  EXPECT_FALSE(v3::decode_estimate_frame(rb.view()).has_value());
}

TEST(WireV3Codec, EstimateBatchBuilderMatchesWholeBatchEncoder) {
  estimate_reply est;
  est.zone = {1, 2};
  est.network = "NetC";
  est.count = 3;
  est.mean = 0.1;
  std::vector<std::optional<estimate_reply>> reps{est, std::nullopt, est};
  reps[2]->zone = {4, 5};

  reply_buffer whole;
  v3::encode_estimate_batch_frame(reps, whole);

  reply_buffer streamed;
  v3::estimate_batch_builder b(static_cast<std::uint32_t>(reps.size()),
                               streamed);
  for (const auto& r : reps) b.add(r);
  b.finish();
  EXPECT_EQ(std::string(whole.view()), std::string(streamed.view()));

  const auto back = v3::decode_estimate_batch_frame(whole.view());
  ASSERT_EQ(back.size(), 3u);
  EXPECT_TRUE(back[0].has_value());
  EXPECT_FALSE(back[1].has_value());
  ASSERT_TRUE(back[2].has_value());
  EXPECT_EQ(back[2]->zone.ix, 4);
}

TEST(WireV3Codec, ErrorFrameClipsDetailLikeTextEncoder) {
  reply_buffer rb;
  v3::encode_error_frame(err_code::parse, "bad field 'x'", rb);
  const v3::error_frame e = v3::decode_error_frame(rb.view());
  EXPECT_EQ(e.code, err_code::parse);
  EXPECT_EQ(e.detail, "bad field 'x'");

  const std::string long_detail(500, 'y');
  rb.clear();
  v3::encode_error_frame(err_code::overload, long_detail, rb);
  EXPECT_EQ(v3::decode_error_frame(rb.view()).detail,
            error_excerpt(long_detail));  // same 120-byte clip + "..."
}

// ---- hostile input --------------------------------------------------------

TEST(WireV3Codec, PeekHeaderRejectsShortMagicAndOpcode) {
  EXPECT_FALSE(v3::peek_header("").has_value());
  EXPECT_FALSE(v3::peek_header("\xB3\x01\x00\x00\x00").has_value());  // 5 bytes
  EXPECT_FALSE(v3::peek_header("ACK\n??").has_value());   // wrong magic
  std::string bad_op("\xB3\x00\x00\x00\x00\x00", 6);      // opcode 0
  EXPECT_FALSE(v3::peek_header(bad_op).has_value());
  bad_op[1] = '\x0e';  // one past promote (the replication opcodes' end)
  EXPECT_FALSE(v3::peek_header(bad_op).has_value());
  bad_op[1] = '\x08';
  ASSERT_TRUE(v3::peek_header(bad_op).has_value());
  EXPECT_EQ(v3::peek_header(bad_op)->op, v3::opcode::err);
  bad_op[1] = '\x0d';
  ASSERT_TRUE(v3::peek_header(bad_op).has_value());
  EXPECT_EQ(v3::peek_header(bad_op)->op, v3::opcode::promote);
}

TEST(WireV3Codec, TruncationAtEveryBoundaryThrowsNeverCrashes) {
  measurement_report m;
  m.client_id = 9;
  m.record = tricky_record();
  query_request q;
  q.pos = here;
  q.network = "NetB";
  std::vector<trace::measurement_record> recs{tricky_record(),
                                              tricky_record()};
  std::vector<query_request> qs{q, q};

  for (const std::string& frame :
       {v3::encode_report_frame(m), v3::encode_report_batch_frame(recs),
        v3::encode_query_frame(q), v3::encode_query_batch_frame(qs)}) {
    // Raw prefixes: the envelope check (declared vs present bytes) throws.
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
      EXPECT_THROW((void)v3::decode_report_frame(frame.substr(0, cut)),
                   std::invalid_argument);
    }
    // Patched prefixes: the header honestly declares the short payload, so
    // the cut lands mid-field and the reader's underrun check throws.
    for (std::size_t cut = v3::frame_header_bytes; cut < frame.size();
         ++cut) {
      std::string t = frame.substr(0, cut);
      patch_length(t, static_cast<std::uint32_t>(cut - v3::frame_header_bytes));
      const auto op = v3::peek_header(t)->op;
      try {
        switch (op) {
          case v3::opcode::report: (void)v3::decode_report_frame(t); break;
          case v3::opcode::reportb:
            (void)v3::decode_report_batch_frame(t);
            break;
          case v3::opcode::query: (void)v3::decode_query_frame(t); break;
          default: (void)v3::decode_query_batch_frame(t); break;
        }
        FAIL() << "patched truncation at " << cut << " decoded";
      } catch (const std::invalid_argument&) {
      }
    }
  }
}

TEST(WireV3Codec, TrailingBytesAfterPayloadRejected) {
  query_request q;
  q.pos = here;
  q.network = "NetB";
  std::string frame = v3::encode_query_frame(q);
  frame += '\x00';
  patch_length(frame, static_cast<std::uint32_t>(frame.size() -
                                                 v3::frame_header_bytes));
  EXPECT_THROW((void)v3::decode_query_frame(frame), std::invalid_argument);
}

TEST(WireV3Codec, HostileBatchCountCannotForceAllocation) {
  // A 10-byte reportb frame claiming max_report_batch records: the count
  // check compares the claim against the actual payload bytes before any
  // reserve, so the lie is caught with zero allocation.
  std::string frame("\xB3\x02\x04\x00\x00\x00", 6);
  const std::uint32_t count = max_report_batch;
  for (int i = 0; i < 4; ++i) {
    frame += static_cast<char>((count >> (8 * i)) & 0xff);
  }
  std::vector<trace::measurement_record> out;
  EXPECT_THROW(v3::decode_report_batch_frame_into(frame, out),
               std::invalid_argument);
  EXPECT_EQ(out.capacity(), 0u);

  // Over the protocol cap is refused outright, whatever the payload size.
  std::string over("\xB3\x04\x04\x00\x00\x00", 6);
  const std::uint32_t qcount = max_query_batch + 1;
  for (int i = 0; i < 4; ++i) {
    over += static_cast<char>((qcount >> (8 * i)) & 0xff);
  }
  std::vector<query_request> qout;
  EXPECT_THROW(v3::decode_query_batch_frame_into(over, qout),
               std::invalid_argument);
  EXPECT_EQ(qout.capacity(), 0u);
}

TEST(WireV3Codec, FieldRangeValidation) {
  measurement_report m;
  m.client_id = 1;
  m.record = tricky_record();
  std::string frame = v3::encode_report_frame(m);
  // kind byte sits right after time/lat/lon/speed (4 f64) + client (u64):
  // flip it past udp_uplink and the decoder must refuse.
  const std::size_t kind_at = v3::frame_header_bytes + 8 /*client*/ + 40;
  frame[kind_at] = '\x07';
  EXPECT_THROW((void)v3::decode_report_frame(frame), std::invalid_argument);
  frame[kind_at] = '\x02';
  frame[kind_at + 1] = '\x02';  // success flag must be 0/1
  EXPECT_THROW((void)v3::decode_report_frame(frame), std::invalid_argument);
}

// ---- server dispatch ------------------------------------------------------

TEST(WireV3Server, BinaryReportAcksAndIngests) {
  server_fixture fx;
  const std::uint64_t frames0 =
      counter_value(obs::names::kServerBinaryFrames);
  measurement_report m;
  m.client_id = 7;
  m.record = testing::make_record(100.0, "NetB", here,
                                  trace::probe_kind::udp_burst, 1e6);
  const std::string reply = fx.server.handle(v3::encode_report_frame(m));
  ASSERT_TRUE(v3::is_frame_start(reply));
  EXPECT_FALSE(v3::decode_ack_frame(reply).batched);
  EXPECT_EQ(fx.server.reports_received(), 1u);
  EXPECT_GT(fx.coord.status_of(fx.grid.zone_of(here)).open_epoch_samples, 0u);

  std::vector<trace::measurement_record> recs(3, m.record);
  const std::string breply =
      fx.server.handle(v3::encode_report_batch_frame(recs));
  const v3::ack_frame ack = v3::decode_ack_frame(breply);
  EXPECT_TRUE(ack.batched);
  EXPECT_EQ(ack.count, 3u);
  EXPECT_EQ(fx.server.reports_received(), 4u);
  EXPECT_EQ(counter_value(obs::names::kServerBinaryFrames) - frames0, 2u);
}

TEST(WireV3Server, BinaryQueryMatchesTextBitExact) {
  server_fixture fx;
  fx.publish_stream("NetB", here);

  query_request q;
  q.pos = here;
  q.network = "NetB";
  q.metric = trace::metric::udp_throughput_bps;
  q.time_s = 2000.0;

  const std::string text = fx.server.handle(encode(q));
  ASSERT_EQ(message_type(text), "EST") << text;
  const estimate_reply via_text = decode_estimate(text);

  const std::string bin = fx.server.handle(v3::encode_query_frame(q));
  const auto via_bin = v3::decode_estimate_frame(bin);
  ASSERT_TRUE(via_bin.has_value());
  // The text path round-trips through %.17g (exact for doubles); the
  // binary path ships raw bits. Both must surface the same estimate.
  EXPECT_EQ(bits(via_bin->mean), bits(via_text.mean));
  EXPECT_EQ(bits(via_bin->stddev), bits(via_text.stddev));
  EXPECT_EQ(via_bin->count, via_text.count);
  EXPECT_EQ(via_bin->zone.ix, via_text.zone.ix);
  EXPECT_EQ(via_bin->zone.iy, via_text.zone.iy);
  EXPECT_EQ(via_bin->network, via_text.network);

  // An unpublished stream answers presence=0, the binary NONE.
  query_request miss = q;
  miss.network = "NetC";
  const auto none =
      v3::decode_estimate_frame(fx.server.handle(v3::encode_query_frame(miss)));
  EXPECT_FALSE(none.has_value());
}

TEST(WireV3Server, BinaryQuerybPositionalWithGaps) {
  server_fixture fx;
  fx.publish_stream("NetB", here);

  query_request hit;
  hit.pos = here;
  hit.network = "NetB";
  hit.metric = trace::metric::udp_throughput_bps;
  hit.time_s = 3000.0;
  query_request miss = hit;
  miss.network = "NetC";
  std::vector<query_request> qs{miss, hit, miss};

  const std::string reply =
      fx.server.handle(v3::encode_query_batch_frame(qs));
  const auto back = v3::decode_estimate_batch_frame(reply);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_FALSE(back[0].has_value());
  ASSERT_TRUE(back[1].has_value());
  EXPECT_EQ(back[1]->network, "NetB");
  EXPECT_FALSE(back[2].has_value());
}

TEST(WireV3Server, ReplyOpcodesAsRequestsDrawUnsupported) {
  server_fixture fx;
  reply_buffer rb;
  v3::encode_ack_frame(rb);
  const std::string ack(rb.view());
  rb.clear();
  v3::encode_estimate_frame(std::nullopt, rb);
  const std::string est(rb.view());
  rb.clear();
  v3::encode_error_frame(err_code::parse, "x", rb);
  const std::string err(rb.view());
  for (const std::string& req : {ack, est, err}) {
    const v3::error_frame e =
        v3::decode_error_frame(fx.server.handle(req));
    EXPECT_EQ(e.code, err_code::unsupported) << e.detail;
  }
}

TEST(WireV3Server, MalformedBinaryFramesDrawTypedErrNeverCrash) {
  server_fixture fx;
  // Envelope lie: header declares more bytes than the frame carries.
  std::string lie("\xB3\x01\xff\x00\x00\x00", 6);
  EXPECT_EQ(v3::decode_error_frame(fx.server.handle(lie)).code,
            err_code::parse);
  // Undefined opcode.
  std::string bad_op("\xB3\x1f\x00\x00\x00\x00", 6);
  EXPECT_EQ(v3::decode_error_frame(fx.server.handle(bad_op)).code,
            err_code::parse);
  // Truncated payload mid-record, honestly declared.
  measurement_report m;
  m.client_id = 1;
  m.record = tricky_record();
  std::string cut = v3::encode_report_frame(m).substr(0, 40);
  patch_length(cut, static_cast<std::uint32_t>(cut.size() -
                                               v3::frame_header_bytes));
  EXPECT_EQ(v3::decode_error_frame(fx.server.handle(cut)).code,
            err_code::parse);
}

TEST(WireV3Server, NonFiniteTimestampRejectedAtCoordinatorSeam) {
  server_fixture fx;
  const std::uint64_t rejected0 =
      counter_value(obs::names::kCoordReportsRejected);
  measurement_report m;
  m.client_id = 7;
  m.record = testing::make_record(100.0, "NetB", here,
                                  trace::probe_kind::udp_burst, 1e6);
  m.record.time_s = std::numeric_limits<double>::quiet_NaN();
  // Binary and text land at the same coordinator::report isfinite seam:
  // the wire accepts the frame (ACK), the record is rejected, not folded.
  const std::string bin_reply = fx.server.handle(v3::encode_report_frame(m));
  EXPECT_EQ(v3::peek_header(bin_reply)->op, v3::opcode::ack);
  m.record.time_s = -std::numeric_limits<double>::infinity();
  EXPECT_EQ(v3::peek_header(fx.server.handle(v3::encode_report_frame(m)))->op,
            v3::opcode::ack);
  EXPECT_EQ(counter_value(obs::names::kCoordReportsRejected) - rejected0, 2u);
  EXPECT_EQ(fx.coord.status_of(fx.grid.zone_of(here)).open_epoch_samples, 0u);
}

TEST(WireV3Server, HelloNegotiationCapsAtAdvertisedVersion) {
  server_fixture fx;
  EXPECT_EQ(decode_hello_reply(fx.server.handle(encode(hello_request{})))
                .version,
            wire_version);
  hello_request old;
  old.version = 2;
  EXPECT_EQ(decode_hello_reply(fx.server.handle(encode(old))).version, 2u);

  // A v2-capped server (interop harness): v3 clients negotiate down to 2
  // and must fall back to text; the in-process handler still accepts
  // binary unconditionally (the TCP session is where the gate lives).
  server_fixture v2fx(2);
  EXPECT_EQ(decode_hello_reply(v2fx.server.handle(encode(hello_request{})))
                .version,
            2u);
  measurement_report m;
  m.client_id = 7;
  m.record = testing::make_record(100.0, "NetB", here,
                                  trace::probe_kind::udp_burst, 1e6);
  EXPECT_EQ(
      v3::peek_header(v2fx.server.handle(v3::encode_report_frame(m)))->op,
      v3::opcode::ack);
}

TEST(WireV3Server, TextRepliesByteIdenticalAcrossAdvertisedVersions) {
  // The v1/v2 interop guarantee: a text client cannot tell a v3 server
  // from a v2-capped one on any reply except HELLO's ver field. Identical
  // coordinators, identical text corpus, byte-compared replies.
  server_fixture v3srv;
  server_fixture v2srv(2);

  std::vector<std::string> corpus;
  checkin_request chk;
  chk.client_id = 5;
  chk.pos = here;
  chk.time_s = 50.0;
  chk.network_index = 0;
  chk.active_in_zone = 2;
  corpus.push_back(encode(chk));
  measurement_report m;
  m.client_id = 5;
  m.record = testing::make_record(60.0, "NetB", here,
                                  trace::probe_kind::ping, 0.12);
  corpus.push_back(encode(m));
  std::vector<trace::measurement_record> recs(4, m.record);
  corpus.push_back(encode_report_batch(recs));
  query_request q;
  q.pos = here;
  q.network = "NetB";
  q.metric = trace::metric::rtt_s;
  q.time_s = 70.0;
  corpus.push_back(encode(q));
  corpus.push_back(encode_query_batch(std::vector<query_request>{q, q}));
  corpus.push_back(encode(alerts_request{0, 16}));
  corpus.push_back("GARBAGE in, typed ERR out");
  corpus.push_back("REPORTB 2\nnot,csv");

  for (const std::string& req : corpus) {
    EXPECT_EQ(v3srv.server.handle(req), v2srv.server.handle(req))
        << "diverged on: " << req;
  }
}

}  // namespace
}  // namespace wiscape::proto

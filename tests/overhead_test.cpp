#include <gtest/gtest.h>

#include "core/overhead.h"
#include "test_util.h"

namespace wiscape::core {
namespace {

const geo::lat_lon here = cellnet::anchors::madison;

TEST(Overhead, TcpCostScalesWithTransferSize) {
  auto rec = testing::make_record(0.0, "NetB", here,
                                  trace::probe_kind::tcp_download, 1e6);
  const auto small = cost_of(rec, 100'000);
  const auto large = cost_of(rec, 1'000'000);
  EXPECT_GT(large.bytes_down, small.bytes_down);
  EXPECT_GT(large.airtime_s, small.airtime_s);
  EXPECT_GT(large.energy_j, small.energy_j);
  EXPECT_NEAR(static_cast<double>(large.bytes_down), 1'000'000.0, 5'000.0);
}

TEST(Overhead, TcpAirtimeFollowsThroughput) {
  auto fast = testing::make_record(0.0, "NetB", here,
                                   trace::probe_kind::tcp_download, 2e6);
  auto slow = testing::make_record(0.0, "NetB", here,
                                   trace::probe_kind::tcp_download, 0.5e6);
  EXPECT_NEAR(cost_of(fast, 1'000'000).airtime_s, 4.0, 0.01);
  EXPECT_NEAR(cost_of(slow, 1'000'000).airtime_s, 16.0, 0.01);
}

TEST(Overhead, PingCostIsTiny) {
  auto rec = testing::make_record(0.0, "NetB", here, trace::probe_kind::ping,
                                  0.12);
  rec.ping_sent = 12;
  rec.ping_failures = 2;
  const auto c = cost_of(rec, 0);
  EXPECT_EQ(c.bytes_up, 12u * 64u);
  EXPECT_EQ(c.bytes_down, 10u * 64u);
  EXPECT_LT(c.bytes_down + c.bytes_up, 2'000u);
}

TEST(Overhead, FailedTcpHasNoAirtime) {
  auto rec = testing::make_record(0.0, "NetB", here,
                                  trace::probe_kind::tcp_download, 0.0);
  rec.success = false;
  rec.throughput_bps = 0.0;
  const auto c = cost_of(rec, 1'000'000);
  EXPECT_DOUBLE_EQ(c.airtime_s, 0.0);
  // Tail energy is still burned: the radio powered up.
  EXPECT_GT(c.energy_j, 0.0);
}

TEST(Overhead, SummaryNormalizesPerClientDay) {
  trace::dataset ds;
  for (int i = 0; i < 100; ++i) {
    ds.add(testing::make_record(i, "NetB", here,
                                trace::probe_kind::tcp_download, 1e6));
  }
  const auto s = summarize_overhead(ds, 1'000'000, 5, 2.0);
  EXPECT_EQ(s.probes, 100u);
  EXPECT_NEAR(s.total_mbytes, 100.0 * 1.016, 2.0);
  EXPECT_NEAR(s.mbytes_per_client_day, s.total_mbytes / 10.0, 1e-9);
  EXPECT_GT(s.energy_j_per_client_day, 0.0);
}

TEST(Overhead, SummaryValidation) {
  trace::dataset ds;
  EXPECT_THROW(summarize_overhead(ds, 1000, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(summarize_overhead(ds, 1000, 1, 0.0), std::invalid_argument);
}

TEST(Overhead, WiscapeBudgetFarBelowContinuousMonitoring) {
  // The paper's core overhead claim, quantified: a WiScape client-day
  // (a handful of small probes) moves orders of magnitude less data than
  // continuously measuring at link rate.
  trace::dataset ds;
  // 100 samples per epoch, ~20 epochs/day, one zone, shared by 50 clients:
  // a heavy day for one client is ~40 probes.
  for (int i = 0; i < 40; ++i) {
    ds.add(testing::make_record(i, "NetB", here,
                                trace::probe_kind::tcp_download, 1e6));
  }
  const auto s = summarize_overhead(ds, 1'000'000, 1, 1.0);
  const double continuous = continuous_monitoring_mbytes_per_day(1e6);
  EXPECT_LT(s.mbytes_per_client_day, continuous / 100.0);
}

TEST(Overhead, ContinuousMonitoringFormula) {
  // 1 Mbps for 18 h = 8.1 GB.
  EXPECT_NEAR(continuous_monitoring_mbytes_per_day(1e6, 18.0), 8100.0, 1.0);
}

}  // namespace
}  // namespace wiscape::core

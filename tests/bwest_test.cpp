#include <gtest/gtest.h>

#include "bwest/ground_truth.h"
#include "bwest/pathload.h"
#include "bwest/wbest.h"
#include "test_util.h"

namespace wiscape::bwest {
namespace {

mobility::gps_fix center_fix(const cellnet::deployment& dep) {
  return {dep.proj().to_lat_lon({150.0, -150.0}), 0.0, 12.0 * 3600};
}

TEST(ClassifyTrend, RisingDelaysAreIncreasing) {
  std::vector<double> owds;
  for (int i = 0; i < 60; ++i) owds.push_back(0.05 + i * 0.002);
  EXPECT_EQ(classify_trend(owds, 0.66, 0.55), owd_trend::increasing);
}

TEST(ClassifyTrend, FlatDelaysNotIncreasing) {
  std::vector<double> owds(60, 0.05);
  EXPECT_EQ(classify_trend(owds, 0.66, 0.55), owd_trend::not_increasing);
}

TEST(ClassifyTrend, NoisyFlatNeverRuledIncreasing) {
  // Noise can land in the inconclusive band, but a flat series must never
  // be classified as an increasing trend.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    stats::rng_stream r(seed);
    std::vector<double> owds;
    // Pathload-sized streams (its trains carry >= 100 packets; we use more
    // so the sqrt(n) median buckets are statistically meaningful).
    for (int i = 0; i < 400; ++i) owds.push_back(0.05 + r.normal(0.0, 0.002));
    EXPECT_NE(classify_trend(owds, 0.66, 0.55), owd_trend::increasing)
        << "seed " << seed;
  }
}

TEST(ClassifyTrend, TooFewSamplesInconclusive) {
  EXPECT_EQ(classify_trend({0.05, 0.06, 0.07}, 0.66, 0.55),
            owd_trend::inconclusive);
}

TEST(GroundTruth, MeasuresNearLinkShare) {
  const auto dep = testing::tiny_deployment();
  probe::probe_engine eng(dep, 4);
  const auto fix = center_fix(dep);
  const auto lc =
      dep.network(0).conditions_at(dep.proj().to_xy(fix.pos), fix.time_s);
  ASSERT_TRUE(lc.in_coverage);

  ground_truth_config cfg;
  cfg.iterations = 3;
  cfg.duration_s = 10.0;
  cfg.offered_rate_bps = 8e6;
  const double truth = ground_truth_udp_bps(eng, 0, fix, cfg);
  EXPECT_GT(truth, 0.4 * lc.capacity_bps);
  EXPECT_LT(truth, 1.5 * lc.capacity_bps);
}

TEST(GroundTruth, Validation) {
  const auto dep = testing::tiny_deployment();
  probe::probe_engine eng(dep, 4);
  ground_truth_config bad;
  bad.iterations = 0;
  EXPECT_THROW(ground_truth_udp_bps(eng, 0, center_fix(dep), bad),
               std::invalid_argument);
  EXPECT_THROW(relative_error(1.0, 0.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(relative_error(0.5e6, 1e6), -0.5);
}

TEST(Wbest, ProducesPositiveEstimates) {
  const auto dep = testing::tiny_deployment();
  probe::probe_engine eng(dep, 4);
  const auto result = wbest_estimate(eng, 0, center_fix(dep));
  ASSERT_TRUE(result.valid);
  EXPECT_GT(result.capacity_bps, 50e3);
  EXPECT_GT(result.available_bps, 0.0);
  EXPECT_LE(result.available_bps, result.capacity_bps);
}

TEST(Wbest, UnderestimatesCellularGroundTruth) {
  // The paper's Sec 3.3.1 headline: WBest underestimates, often severely.
  const auto dep = testing::tiny_deployment();
  probe::probe_engine eng(dep, 4);
  const auto fix = center_fix(dep);

  ground_truth_config gt_cfg;
  gt_cfg.iterations = 3;
  gt_cfg.duration_s = 10.0;
  gt_cfg.offered_rate_bps = 8e6;
  const double truth = ground_truth_udp_bps(eng, 0, fix, gt_cfg);
  ASSERT_GT(truth, 0.0);

  // Average over several runs: individual pair estimates are noisy.
  double sum = 0.0;
  int n = 0;
  for (int i = 0; i < 5; ++i) {
    mobility::gps_fix f = fix;
    f.time_s += i * 60.0;
    const auto r = wbest_estimate(eng, 0, f);
    if (r.valid) {
      sum += r.available_bps;
      ++n;
    }
  }
  ASSERT_GT(n, 0);
  EXPECT_LT(sum / n, truth);  // strictly below ground truth
}

TEST(Pathload, BracketConvergesWithinRange) {
  const auto dep = testing::tiny_deployment();
  probe::probe_engine eng(dep, 4);
  const auto result = pathload_estimate(eng, 0, center_fix(dep));
  ASSERT_TRUE(result.valid);
  EXPECT_GE(result.low_bps, 50e3 - 1.0);
  EXPECT_LE(result.high_bps, 8e6 + 1.0);
  EXPECT_LE(result.low_bps, result.high_bps);
  EXPECT_GT(result.iterations, 2);
}

TEST(Pathload, UnderestimatesCellularGroundTruth) {
  const auto dep = testing::tiny_deployment();
  probe::probe_engine eng(dep, 4);
  const auto fix = center_fix(dep);

  ground_truth_config gt_cfg;
  gt_cfg.iterations = 3;
  gt_cfg.duration_s = 10.0;
  gt_cfg.offered_rate_bps = 8e6;
  const double truth = ground_truth_udp_bps(eng, 0, fix, gt_cfg);

  double sum = 0.0;
  int n = 0;
  for (int i = 0; i < 3; ++i) {
    mobility::gps_fix f = fix;
    f.time_s += i * 120.0;
    const auto r = pathload_estimate(eng, 0, f);
    if (r.valid) {
      sum += r.estimate_bps;
      ++n;
    }
  }
  ASSERT_GT(n, 0);
  EXPECT_LT(sum / n, truth * 1.05);
}

TEST(Pathload, SimpleDownloadBeatsBothBaselines) {
  // WiScape's design choice (Sec 3.3.1): plain downloads estimate better
  // than both tools on cellular links. The UDP probe's relative error
  // should be smaller in magnitude than WBest's.
  const auto dep = testing::tiny_deployment();
  probe::probe_engine eng(dep, 4);
  const auto fix = center_fix(dep);

  ground_truth_config gt_cfg;
  gt_cfg.iterations = 3;
  gt_cfg.duration_s = 10.0;
  gt_cfg.offered_rate_bps = 8e6;
  const double truth = ground_truth_udp_bps(eng, 0, fix, gt_cfg);

  double wiscape_sum = 0.0, wbest_sum = 0.0;
  int n = 0;
  for (int i = 0; i < 5; ++i) {
    mobility::gps_fix f = fix;
    f.time_s += i * 60.0;
    const auto simple = eng.udp_probe(0, f);
    const auto wb = wbest_estimate(eng, 0, f);
    if (!simple.success || !wb.valid) continue;
    wiscape_sum += std::abs(relative_error(simple.throughput_bps, truth));
    wbest_sum += std::abs(relative_error(wb.available_bps, truth));
    ++n;
  }
  ASSERT_GT(n, 0);
  EXPECT_LT(wiscape_sum / n, wbest_sum / n);
}

}  // namespace
}  // namespace wiscape::bwest

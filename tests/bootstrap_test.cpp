#include <gtest/gtest.h>

#include "stats/bootstrap.h"
#include "stats/summary.h"

namespace wiscape::stats {
namespace {

TEST(Bootstrap, IntervalBracketsSampleMean) {
  rng_stream gen(3);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(gen.normal(50.0, 5.0));
  rng_stream rng(7);
  const auto ci = bootstrap_mean_ci(xs, 0.95, rng);
  EXPECT_LT(ci.low, ci.point);
  EXPECT_GT(ci.high, ci.point);
  EXPECT_TRUE(ci.contains(mean(xs)));
}

TEST(Bootstrap, WidthShrinksWithSampleSize) {
  rng_stream gen(3);
  std::vector<double> small, large;
  for (int i = 0; i < 20; ++i) small.push_back(gen.normal(50.0, 5.0));
  for (int i = 0; i < 2000; ++i) large.push_back(gen.normal(50.0, 5.0));
  rng_stream r1(7), r2(7);
  const auto ci_small = bootstrap_mean_ci(small, 0.95, r1);
  const auto ci_large = bootstrap_mean_ci(large, 0.95, r2);
  EXPECT_GT(ci_small.width(), 3.0 * ci_large.width());
}

TEST(Bootstrap, HigherLevelWiderInterval) {
  rng_stream gen(3);
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(gen.normal(0.0, 1.0));
  rng_stream r1(7), r2(7);
  EXPECT_GT(bootstrap_mean_ci(xs, 0.99, r1).width(),
            bootstrap_mean_ci(xs, 0.80, r2).width());
}

TEST(Bootstrap, ApproximateCoverage) {
  // Across many synthetic draws, a 90% CI should contain the true mean
  // roughly 90% of the time (within Monte Carlo slack).
  rng_stream master(11);
  int covered = 0;
  const int trials = 120;
  for (int t = 0; t < trials; ++t) {
    rng_stream gen = master.fork(static_cast<std::uint64_t>(t));
    std::vector<double> xs;
    for (int i = 0; i < 40; ++i) xs.push_back(gen.normal(10.0, 2.0));
    rng_stream rng = master.fork(1000 + static_cast<std::uint64_t>(t));
    if (bootstrap_mean_ci(xs, 0.90, rng, 300).contains(10.0)) ++covered;
  }
  const double coverage = static_cast<double>(covered) / trials;
  EXPECT_GT(coverage, 0.80);
  EXPECT_LT(coverage, 0.99);
}

TEST(Bootstrap, ConstantSampleDegenerateInterval) {
  std::vector<double> xs(30, 7.0);
  rng_stream rng(1);
  const auto ci = bootstrap_mean_ci(xs, 0.95, rng);
  EXPECT_DOUBLE_EQ(ci.low, 7.0);
  EXPECT_DOUBLE_EQ(ci.high, 7.0);
}

TEST(Bootstrap, Validation) {
  rng_stream rng(1);
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_THROW(bootstrap_mean_ci({}, 0.95, rng), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci(xs, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci(xs, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci(xs, 0.9, rng, 5), std::invalid_argument);
}

}  // namespace
}  // namespace wiscape::stats

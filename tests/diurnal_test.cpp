#include <gtest/gtest.h>

#include <cmath>

#include "core/diurnal.h"
#include "stats/rng.h"
#include "test_util.h"

namespace wiscape::core {
namespace {

TEST(Diurnal, ExpectedMatchesHourMean) {
  diurnal_profile p;
  for (int day = 0; day < 10; ++day) {
    p.add(day * 86400.0 + 9.5 * 3600, 100.0);  // 09:xx
    p.add(day * 86400.0 + 18.5 * 3600, 200.0);  // 18:xx
  }
  EXPECT_NEAR(p.expected(9.2 * 3600).value(), 100.0, 1e-9);
  EXPECT_NEAR(p.expected(18.9 * 3600).value(), 200.0, 1e-9);
  EXPECT_FALSE(p.expected(3.0 * 3600).has_value());  // empty hour
}

TEST(Diurnal, HourFoldingAcrossDays) {
  diurnal_profile p;
  // 26:00 == 02:00 next day.
  for (int i = 0; i < 6; ++i) p.add(26.0 * 3600 + i, 50.0);
  EXPECT_NEAR(p.expected(2.5 * 3600).value(), 50.0, 1e-9);
}

TEST(Diurnal, OverallFallback) {
  diurnal_profile p;
  for (int i = 0; i < 6; ++i) p.add(10.0 * 3600 + i, 80.0);
  // 03:00 has no data; fall back to the overall mean.
  EXPECT_NEAR(p.expected_or_overall(3.0 * 3600).value(), 80.0, 1e-9);
  diurnal_profile empty;
  EXPECT_FALSE(empty.expected_or_overall(0.0).has_value());
}

TEST(Diurnal, ZscoreFlagsSurges) {
  diurnal_profile p;
  stats::rng_stream r(3);
  for (int day = 0; day < 30; ++day) {
    p.add(day * 86400.0 + 14.25 * 3600, r.normal(0.113, 0.005));
  }
  // Game-day latency of 420 ms against a 113 +- 5 ms hour: huge z.
  const auto z = p.zscore(14.5 * 3600, 0.420);
  ASSERT_TRUE(z.has_value());
  EXPECT_GT(*z, 20.0);
  // A normal reading is unremarkable.
  EXPECT_LT(std::abs(p.zscore(14.5 * 3600, 0.114).value()), 2.0);
}

TEST(Diurnal, PeakToTroughCapturesDailySwing) {
  diurnal_profile p;
  for (int day = 0; day < 5; ++day) {
    for (int i = 0; i < 6; ++i) {
      p.add(day * 86400.0 + 4.0 * 3600 + i, 100.0);   // quiet 04:00
      p.add(day * 86400.0 + 18.0 * 3600 + i, 150.0);  // busy 18:00
    }
  }
  EXPECT_NEAR(p.peak_to_trough().value(), 1.5, 1e-9);
  diurnal_profile single;
  single.add(0.0, 10.0);
  EXPECT_FALSE(single.peak_to_trough().has_value());
}

TEST(Diurnal, SeriesIngestAndCounts) {
  stats::time_series ts;
  for (int i = 0; i < 48; ++i) ts.add(i * 1800.0, 1.0);
  diurnal_profile p;
  p.add_series(ts);
  EXPECT_EQ(p.total_samples(), 48u);
}

TEST(Diurnal, RealSubstrateShowsDailyCycle) {
  // The cellnet load model is diurnal by construction; the profile should
  // see a peak-to-trough swing in utilization-driven capacity.
  const auto dep = testing::tiny_deployment();
  diurnal_profile p;
  for (int day = 0; day < 3; ++day) {
    for (int h = 0; h < 24; ++h) {
      for (int k = 0; k < 3; ++k) {
        const double t = day * 86400.0 + h * 3600.0 + k * 900.0;
        const auto lc = dep.network(0).conditions_at({100.0, 100.0}, t);
        if (lc.in_coverage) p.add(t, lc.capacity_bps);
      }
    }
  }
  const auto swing = p.peak_to_trough(3);
  ASSERT_TRUE(swing.has_value());
  EXPECT_GT(*swing, 1.01);
  EXPECT_LT(*swing, 1.6);
}

}  // namespace
}  // namespace wiscape::core

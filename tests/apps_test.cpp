#include <gtest/gtest.h>

#include <algorithm>

#include "apps/multihoming.h"
#include "apps/surge.h"
#include "apps/zone_knowledge.h"
#include "test_util.h"

namespace wiscape::apps {
namespace {

const geo::lat_lon here = cellnet::anchors::madison;

// ------------------------------------------------------------------ surge ----

TEST(Surge, SizesWithinPaperRange) {
  surge_config cfg;
  const auto pages = surge_pages(cfg, 42);
  ASSERT_EQ(pages.size(), 1000u);
  for (std::size_t b : pages) {
    EXPECT_GE(b, cfg.min_bytes);
    EXPECT_LE(b, cfg.max_bytes);
  }
}

TEST(Surge, DeterministicInSeed) {
  const auto a = surge_pages({}, 42);
  const auto b = surge_pages({}, 42);
  EXPECT_EQ(a, b);
  const auto c = surge_pages({}, 43);
  EXPECT_NE(a, c);
}

TEST(Surge, HeavyTailPresent) {
  const auto pages = surge_pages({}, 42);
  std::vector<double> sizes(pages.begin(), pages.end());
  std::sort(sizes.begin(), sizes.end());
  const double median = sizes[sizes.size() / 2];
  const double p99 = sizes[sizes.size() * 99 / 100];
  // Heavy tail: p99 at least an order of magnitude above the median.
  EXPECT_GT(p99, 10.0 * median);
  // Median stays in the "typical page" range.
  EXPECT_LT(median, 200'000.0);
}

TEST(Surge, WebsitesMatchExpectedOrdering) {
  const auto sites = well_known_websites(42);
  ASSERT_EQ(sites.size(), 4u);
  auto total = [&](const char* name) {
    for (const auto& s : sites) {
      if (s.name == name) return s.total_bytes();
    }
    return std::size_t{0};
  };
  // cnn is the heaviest mix, microsoft the lightest (Fig 14's ordering).
  EXPECT_GT(total("cnn"), total("microsoft"));
  EXPECT_GT(total("youtube"), total("microsoft"));
  EXPECT_GT(total("amazon"), total("microsoft"));
  for (const auto& s : sites) EXPECT_GT(s.object_bytes.size(), 10u);
}

// --------------------------------------------------------- zone_knowledge ----

trace::dataset training_two_zones() {
  // Zone A: NetB wins. Zone B (4 km east): NetC wins.
  trace::dataset ds;
  stats::rng_stream r(3);
  const geo::lat_lon zone_a = here;
  const geo::lat_lon zone_b = geo::destination(here, 90.0, 4000.0);
  for (int i = 0; i < 50; ++i) {
    ds.add(testing::make_record(i, "NetB", zone_a,
                                trace::probe_kind::tcp_download,
                                r.normal(2e6, 1e5)));
    ds.add(testing::make_record(i, "NetC", zone_a,
                                trace::probe_kind::tcp_download,
                                r.normal(1e6, 1e5)));
    ds.add(testing::make_record(i, "NetB", zone_b,
                                trace::probe_kind::tcp_download,
                                r.normal(0.8e6, 1e5)));
    ds.add(testing::make_record(i, "NetC", zone_b,
                                trace::probe_kind::tcp_download,
                                r.normal(1.9e6, 1e5)));
  }
  return ds;
}

TEST(ZoneKnowledge, PerZoneBestNetwork) {
  const geo::zone_grid grid(geo::projection(here), 250.0);
  const zone_knowledge zk(training_two_zones(), grid, {"NetB", "NetC"});
  EXPECT_EQ(zk.best_network(here), 0u);
  EXPECT_EQ(zk.best_network(geo::destination(here, 90.0, 4000.0)), 1u);
}

TEST(ZoneKnowledge, ExpectedBpsTracksTraining) {
  const geo::zone_grid grid(geo::projection(here), 250.0);
  const zone_knowledge zk(training_two_zones(), grid, {"NetB", "NetC"});
  EXPECT_NEAR(zk.expected_bps(0, here), 2e6, 2e5);
  EXPECT_NEAR(zk.expected_bps(1, here), 1e6, 2e5);
}

TEST(ZoneKnowledge, UnknownZoneFallsBackToGlobalMean) {
  const geo::zone_grid grid(geo::projection(here), 250.0);
  const zone_knowledge zk(training_two_zones(), grid, {"NetB", "NetC"});
  const geo::lat_lon far = geo::destination(here, 0.0, 50'000.0);
  EXPECT_NEAR(zk.expected_bps(0, far), zk.global_mean_bps(0), 1.0);
  EXPECT_GT(zk.global_mean_bps(0), 0.0);
}

TEST(ZoneKnowledge, ThinZonesUseFallback) {
  trace::dataset ds = training_two_zones();
  // A zone with only 2 samples of wildly different value.
  const geo::lat_lon thin = geo::destination(here, 0.0, 4000.0);
  ds.add(testing::make_record(0, "NetB", thin, trace::probe_kind::tcp_download,
                              9e6));
  ds.add(testing::make_record(1, "NetB", thin, trace::probe_kind::tcp_download,
                              9e6));
  const geo::zone_grid grid(geo::projection(here), 250.0);
  const zone_knowledge zk(ds, grid, {"NetB", "NetC"}, 10);
  // min_samples=10: the 9 Mbps outliers must not dominate.
  EXPECT_LT(zk.expected_bps(0, thin), 3e6);
}

TEST(ZoneKnowledge, Validation) {
  const geo::zone_grid grid(geo::projection(here), 250.0);
  EXPECT_THROW(zone_knowledge(trace::dataset{}, grid, {}),
               std::invalid_argument);
  const zone_knowledge zk(training_two_zones(), grid, {"NetB", "NetC"});
  EXPECT_THROW(zk.expected_bps(5, here), std::out_of_range);
  EXPECT_THROW(zk.global_mean_bps(5), std::out_of_range);
}

// ------------------------------------------------------------ multihoming ----

struct app_world {
  cellnet::deployment dep = testing::tiny_deployment();
  probe::probe_engine engine{dep, 6};
  geo::polyline route = geo::straight_route(
      dep.proj().to_lat_lon({-1500.0, 0.0}),
      dep.proj().to_lat_lon({1500.0, 0.0}), 6);
  std::vector<std::size_t> pages;

  app_world() {
    surge_config cfg;
    cfg.pages = 30;
    cfg.max_bytes = 400'000;
    pages = surge_pages(cfg, 9);
  }

  zone_knowledge knowledge() {
    // Train on a quick segment-style dataset over the route.
    probe::probe_engine train_engine(dep, 77);
    trace::dataset ds;
    probe::tcp_probe_params tcp;
    tcp.bytes = 100'000;
    for (int i = 0; i < 40; ++i) {
      const double d = route.length_m() * (i % 10) / 10.0;
      const mobility::gps_fix fix{route.point_at(d), 10.0,
                                  9.0 * 3600 + i * 120.0};
      for (std::size_t n = 0; n < dep.size(); ++n) {
        ds.add(train_engine.tcp_probe(n, fix, tcp));
      }
    }
    return zone_knowledge(ds, geo::zone_grid(dep.proj(), 250.0), dep.names());
  }
};

TEST(Multisim, AllPoliciesCompleteAllPages) {
  app_world w;
  const auto zk = w.knowledge();
  const drive_config drive;
  for (auto policy : {multisim_policy::wiscape, multisim_policy::fixed,
                      multisim_policy::round_robin,
                      multisim_policy::random_pick}) {
    const auto result = run_multisim(w.engine, &zk, policy, 0, w.pages,
                                     w.route, drive, 5);
    EXPECT_EQ(result.pages, w.pages.size());
    EXPECT_EQ(result.page_s.size(), w.pages.size());
    EXPECT_GT(result.total_s, 0.0);
    EXPECT_LT(result.failures, w.pages.size() / 2);
  }
}

TEST(Multisim, WiscapeNotWorseThanWorstFixed) {
  app_world w;
  const auto zk = w.knowledge();
  const drive_config drive;
  const auto ws = run_multisim(w.engine, &zk, multisim_policy::wiscape, 0,
                               w.pages, w.route, drive, 5);
  double worst_fixed = 0.0;
  for (std::size_t n = 0; n < w.dep.size(); ++n) {
    const auto fixed = run_multisim(w.engine, nullptr, multisim_policy::fixed,
                                    n, w.pages, w.route, drive, 5);
    worst_fixed = std::max(worst_fixed, fixed.total_s);
  }
  EXPECT_LE(ws.total_s, worst_fixed * 1.1);
}

TEST(Multisim, Validation) {
  app_world w;
  const drive_config drive;
  EXPECT_THROW(run_multisim(w.engine, nullptr, multisim_policy::wiscape, 0,
                            w.pages, w.route, drive, 5),
               std::invalid_argument);
  EXPECT_THROW(run_multisim(w.engine, nullptr, multisim_policy::fixed, 99,
                            w.pages, w.route, drive, 5),
               std::invalid_argument);
}

TEST(Mar, PoliciesCompleteBatch) {
  app_world w;
  const auto zk = w.knowledge();
  const drive_config drive;
  for (auto policy : {mar_policy::round_robin, mar_policy::weighted_round_robin,
                      mar_policy::wiscape}) {
    const auto result =
        run_mar(w.engine, &zk, policy, w.pages, w.route, drive, 5);
    EXPECT_GT(result.total_s, 0.0);
    EXPECT_EQ(result.interface_busy_s.size(), w.dep.size());
    // Makespan >= any interface's busy time.
    for (double busy : result.interface_busy_s) {
      EXPECT_LE(busy, result.total_s + 1e-9);
    }
  }
}

TEST(Mar, ParallelismBeatsSequentialMultisim) {
  app_world w;
  const auto zk = w.knowledge();
  const drive_config drive;
  const auto mar =
      run_mar(w.engine, &zk, mar_policy::round_robin, w.pages, w.route, drive, 5);
  const auto seq = run_multisim(w.engine, nullptr, multisim_policy::fixed, 0,
                                w.pages, w.route, drive, 5);
  EXPECT_LT(mar.total_s, seq.total_s);
}

TEST(Mar, WiscapeNotWorseThanNaiveRoundRobin) {
  app_world w;
  const auto zk = w.knowledge();
  const drive_config drive;
  const auto ws = run_mar(w.engine, &zk, mar_policy::wiscape, w.pages, w.route,
                          drive, 5);
  const auto rr = run_mar(w.engine, &zk, mar_policy::round_robin, w.pages,
                          w.route, drive, 5);
  EXPECT_LE(ws.total_s, rr.total_s * 1.1);
}

TEST(Mar, Validation) {
  app_world w;
  const drive_config drive;
  EXPECT_THROW(run_mar(w.engine, nullptr, mar_policy::wiscape, w.pages,
                       w.route, drive, 5),
               std::invalid_argument);
  EXPECT_THROW(run_mar(w.engine, nullptr, mar_policy::weighted_round_robin,
                       w.pages, w.route, drive, 5),
               std::invalid_argument);
}

}  // namespace
}  // namespace wiscape::apps

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <thread>

#include "obs/names.h"
#include "obs/registry.h"
#include "proto/messages.h"
#include "proto/server.h"
#include "test_util.h"

namespace wiscape::proto {
namespace {

const geo::lat_lon here = cellnet::anchors::madison;

// Parses a STATS wire reply ("STATS <n>" + n "name value" lines) into a
// name -> value map. The obs registry is process-wide, so tests assert on
// deltas between two dumps rather than absolute values.
std::map<std::string, double> parse_stats(const std::string& reply) {
  std::istringstream in(reply);
  std::string tag;
  std::size_t n = 0;
  in >> tag >> n;
  EXPECT_EQ(tag, "STATS");
  std::map<std::string, double> out;
  std::string name;
  double value = 0.0;
  while (in >> name >> value) out[name] = value;
  EXPECT_EQ(out.size(), n);
  return out;
}

double delta(const std::map<std::string, double>& before,
             const std::map<std::string, double>& after,
             const std::string& name) {
  const auto b = before.find(name);
  const auto a = after.find(name);
  return (a == after.end() ? 0.0 : a->second) -
         (b == before.end() ? 0.0 : b->second);
}

TEST(ProtoCodec, CheckinRoundTrip) {
  checkin_request m;
  m.client_id = 42;
  m.pos = here;
  m.time_s = 1234.567;
  m.network_index = 2;
  m.active_in_zone = 7;
  m.device = "phone";
  const auto back = decode_checkin(encode(m));
  EXPECT_EQ(back.client_id, 42u);
  EXPECT_NEAR(back.pos.lat_deg, here.lat_deg, 1e-6);
  EXPECT_NEAR(back.time_s, 1234.567, 1e-3);
  EXPECT_EQ(back.network_index, 2u);
  EXPECT_EQ(back.active_in_zone, 7u);
  EXPECT_EQ(back.device, "phone");
}

TEST(ProtoCodec, TaskRoundTripAllKinds) {
  for (auto kind : {trace::probe_kind::tcp_download, trace::probe_kind::udp_burst,
                    trace::probe_kind::ping, trace::probe_kind::udp_uplink}) {
    task_assignment m;
    m.kind = kind;
    m.network_index = 1;
    m.tcp_bytes = 500'000;
    m.udp_packets = 80;
    m.ping_count = 12;
    const auto back = decode_task(encode(m));
    EXPECT_EQ(back.kind, kind);
    EXPECT_EQ(back.network_index, 1u);
    EXPECT_EQ(back.tcp_bytes, 500'000u);
    EXPECT_EQ(back.udp_packets, 80u);
    EXPECT_EQ(back.ping_count, 12u);
  }
}

TEST(ProtoCodec, ReportRoundTripCarriesRecord) {
  measurement_report m;
  m.client_id = 9;
  m.record = testing::make_record(99.0, "NetB", here,
                                  trace::probe_kind::udp_burst, 1.25e6);
  m.record.jitter_s = 0.004;
  const auto back = decode_report(encode(m));
  EXPECT_EQ(back.client_id, 9u);
  EXPECT_EQ(back.record.network, "NetB");
  EXPECT_NEAR(back.record.throughput_bps, 1.25e6, 1.0);
  EXPECT_NEAR(back.record.jitter_s, 0.004, 1e-6);
}

TEST(ProtoCodec, MessageTypeTagging) {
  EXPECT_EQ(message_type(encode(checkin_request{})), "CHECKIN");
  EXPECT_EQ(message_type(encode(task_assignment{})), "TASK");
  EXPECT_EQ(message_type(encode_idle()), "IDLE");
  EXPECT_EQ(message_type("garbage line"), "");
}

TEST(ProtoCodec, RejectsMalformedInput) {
  EXPECT_THROW(decode_checkin("TASK kind=udp"), std::invalid_argument);
  EXPECT_THROW(decode_checkin("CHECKIN client=1"), std::invalid_argument);
  EXPECT_THROW(decode_checkin("CHECKIN client=x lat=1 lon=1 t=1 net=0 "
                              "active=1 device=laptop"),
               std::invalid_argument);
  EXPECT_THROW(decode_task("TASK kind=warp net=0 tcp_bytes=0 udp_packets=0 "
                           "ping_count=0"),
               std::invalid_argument);
  EXPECT_THROW(decode_report("REPORT client=1"), std::invalid_argument);
  EXPECT_THROW(decode_report("REPORT client=abc csv=x"),
               std::invalid_argument);
}

TEST(ProtoServer, CheckinYieldsTaskOrIdleAndReportAcks) {
  const auto dep = testing::tiny_deployment();
  geo::zone_grid grid(dep.proj(), 250.0);
  core::coordinator_config cfg;
  cfg.default_samples_per_epoch = 3;
  core::coordinator coord(grid, dep.names(), cfg, 5);
  coordinator_server server(coord);

  checkin_request req;
  req.client_id = 1;
  req.pos = dep.proj().to_lat_lon({100.0, 100.0});
  req.time_s = 1000.0;
  req.network_index = 0;
  req.active_in_zone = 1;

  int tasks = 0;
  for (int i = 0; i < 30; ++i) {
    req.time_s += 10.0;
    const std::string reply = server.handle(encode(req));
    const auto type = message_type(reply);
    ASSERT_TRUE(type == "TASK" || type == "IDLE") << reply;
    if (type != "TASK") continue;
    ++tasks;
    // Report a matching fake measurement back.
    measurement_report rep;
    rep.client_id = 1;
    rep.record = testing::make_record(req.time_s, dep.names()[0], req.pos,
                                      decode_task(reply).kind, 1e6);
    EXPECT_EQ(server.handle(encode(rep)), "ACK");
  }
  EXPECT_GT(tasks, 0);
  EXPECT_EQ(server.tasks_issued(), static_cast<std::uint64_t>(tasks));
  EXPECT_EQ(server.reports_received(), static_cast<std::uint64_t>(tasks));
  // The coordinator actually ingested the reports.
  EXPECT_GT(coord.status_of(grid.zone_of(req.pos)).open_epoch_samples, 0u);
}

TEST(ProtoServer, AnswersUnknownRequestsWithErr) {
  const auto dep = testing::tiny_deployment();
  core::coordinator coord(geo::zone_grid(dep.proj(), 250.0), dep.names(),
                          {}, 5);
  coordinator_server server(coord);
  EXPECT_EQ(message_type(server.handle("HELLO")), "ERR");
  EXPECT_EQ(message_type(server.handle(encode_idle())), "ERR");
  EXPECT_EQ(server.errors(), 2u);
}

TEST(ProtoServer, MapsMalformedLinesToErrReplies) {
  // Regression: handle() used to propagate std::invalid_argument out of the
  // decoder; a line-protocol server must answer every request, so malformed
  // CHECKIN/REPORT lines come back as "ERR <reason>" instead.
  const auto dep = testing::tiny_deployment();
  core::coordinator coord(geo::zone_grid(dep.proj(), 250.0), dep.names(),
                          {}, 5);
  coordinator_server server(coord);

  for (const std::string bad : {
           "CHECKIN client=1",                               // missing fields
           "CHECKIN client=x lat=1 lon=1 t=1 net=0 active=1 device=laptop",
           "CHECKIN client=1 lat=bogus lon=1 t=1 net=0 active=1 device=a",
           "REPORT client=1",                                // missing csv
           "REPORT client=abc csv=x",                        // bad client id
       }) {
    const std::string reply = server.handle(bad);
    EXPECT_EQ(message_type(reply), "ERR") << bad << " -> " << reply;
    EXPECT_GT(reply.size(), 4u) << "ERR reply should carry a reason";
  }
  EXPECT_EQ(server.errors(), 5u);
  // Nothing malformed was counted as real traffic.
  EXPECT_EQ(server.reports_received(), 0u);
  EXPECT_EQ(server.tasks_issued(), 0u);
  // The server still works after the garbage.
  checkin_request req;
  req.pos = dep.proj().to_lat_lon({0.0, 0.0});
  req.time_s = 100.0;
  const auto type = message_type(server.handle(encode(req)));
  EXPECT_TRUE(type == "TASK" || type == "IDLE");
}

TEST(ProtoServer, ExtremeReportFieldsAreContained) {
  // Regression (review of ISSUE 4): REPORT carries unvalidated doubles and a
  // free-form network name; absurd coordinates (zone outside the store's
  // packed cell range) must not throw through the server. The record is
  // rejected inside the coordinator and the line still gets its ACK.
  const auto dep = testing::tiny_deployment();
  core::coordinator coord(geo::zone_grid(dep.proj(), 250.0), dep.names(),
                          {}, 5);
  coordinator_server server(coord);

  measurement_report rep;
  rep.client_id = 1;
  rep.record = testing::make_record(10.0, dep.names()[0],
                                    geo::lat_lon{5e8, -5e8},
                                    trace::probe_kind::udp_burst, 1e6);
  EXPECT_EQ(server.handle(encode(rep)), "ACK");
  EXPECT_EQ(server.errors(), 0u);
  // Nothing landed in the table, and the server still answers.
  EXPECT_TRUE(coord.table_for_test().keys().empty());
  rep.record = testing::make_record(20.0, dep.names()[0],
                                    dep.proj().to_lat_lon({0.0, 0.0}),
                                    trace::probe_kind::udp_burst, 1e6);
  EXPECT_EQ(server.handle(encode(rep)), "ACK");
  EXPECT_EQ(coord.table_for_test().keys().empty(), false);
}

TEST(ProtoCodec, MetricRoundTripAllValues) {
  // Enum growth must not silently desync client and server: every metric
  // round-trips through its wire string.
  for (const trace::metric m :
       {trace::metric::tcp_throughput_bps, trace::metric::udp_throughput_bps,
        trace::metric::loss_rate, trace::metric::jitter_s,
        trace::metric::rtt_s, trace::metric::uplink_throughput_bps}) {
    const std::string wire = trace::to_string(m);
    EXPECT_FALSE(wire.empty());
    EXPECT_EQ(trace::metric_from_string(wire), m);
  }
  EXPECT_THROW(trace::metric_from_string("no_such_metric"),
               std::invalid_argument);
}

TEST(ProtoCodec, ProbeKindRoundTripAllValues) {
  for (const trace::probe_kind k :
       {trace::probe_kind::tcp_download, trace::probe_kind::udp_burst,
        trace::probe_kind::ping, trace::probe_kind::udp_uplink}) {
    const std::string wire = trace::to_string(k);
    EXPECT_FALSE(wire.empty());
    EXPECT_EQ(trace::probe_kind_from_string(wire), k);
  }
  EXPECT_THROW(trace::probe_kind_from_string("warp"), std::invalid_argument);
}

TEST(ProtoServer, ConcurrentModeServesShardedCoordinator) {
  const auto dep = testing::tiny_deployment();
  geo::zone_grid grid(dep.proj(), 250.0);
  core::sharded_config cfg;
  cfg.coordinator.default_samples_per_epoch = 3;
  cfg.num_shards = 2;
  core::sharded_coordinator coord(grid, dep.names(), cfg, 5);
  coordinator_server server(coord);
  ASSERT_TRUE(server.concurrent());

  checkin_request req;
  req.client_id = 1;
  req.pos = dep.proj().to_lat_lon({100.0, 100.0});
  req.time_s = 1000.0;
  int tasks = 0;
  for (int i = 0; i < 30; ++i) {
    req.time_s += 10.0;
    const std::string reply = server.handle(encode(req));
    const auto type = message_type(reply);
    ASSERT_TRUE(type == "TASK" || type == "IDLE") << reply;
    if (type != "TASK") continue;
    ++tasks;
    measurement_report rep;
    rep.client_id = 1;
    rep.record = testing::make_record(req.time_s, dep.names()[0], req.pos,
                                      decode_task(reply).kind, 1e6);
    EXPECT_EQ(server.handle(encode(rep)), "ACK");
  }
  EXPECT_GT(tasks, 0);
  coord.flush();
  EXPECT_EQ(server.tasks_issued(), static_cast<std::uint64_t>(tasks));
  EXPECT_EQ(coord.reports_ingested(), static_cast<std::uint64_t>(tasks));
  EXPECT_GT(coord.status_of(grid.zone_of(req.pos)).open_epoch_samples, 0u);
}

TEST(ProtoEndToEnd, RemoteAgentDrivesFullLoop) {
  // The whole Sec 3.4 loop over the wire: remote agents check in through a
  // string transport, execute real probes, and report back; the coordinator
  // accumulates estimates exactly as with in-process agents.
  const auto dep = testing::tiny_deployment();
  probe::probe_engine engine(dep, 8);
  geo::zone_grid grid(dep.proj(), 250.0);
  core::coordinator_config cfg;
  cfg.default_samples_per_epoch = 5;
  cfg.epochs.default_epoch_s = 300.0;
  core::coordinator coord(grid, dep.names(), cfg, 5);
  coordinator_server server(coord);

  auto transport = [&server](const std::string& line) {
    return server.handle(line);
  };
  remote_agent agent_b(engine, transport, 101);
  remote_agent agent_phone(engine, transport, 102, probe::phone_device());

  const geo::lat_lon loc = dep.proj().to_lat_lon({150.0, -150.0});
  int ran = 0;
  for (int i = 0; i < 120; ++i) {
    const mobility::gps_fix fix{loc, 0.0, 8.0 * 3600 + i * 30.0};
    if (const auto rec = agent_b.step(fix, 0, 2)) {
      ++ran;
      EXPECT_EQ(rec->device, "laptop");
    }
    if (const auto rec = agent_phone.step(fix, 1, 2)) {
      ++ran;
      EXPECT_EQ(rec->device, "phone");
    }
  }
  EXPECT_GT(ran, 5);
  EXPECT_EQ(server.reports_received(), static_cast<std::uint64_t>(ran));

  // Estimates were published under both networks.
  int published = 0;
  for (const auto& key : coord.table_for_test().keys()) {
    published += coord.table_for_test().latest(key).has_value() ? 1 : 0;
  }
  EXPECT_GT(published, 0);
}

TEST(ProtoServer, ReportBatchAcksAndIngests) {
  // REPORTB against the sequential coordinator: one frame, n records, one
  // "ACK <n>" reply, all ingested exactly as n single REPORTs would be.
  const auto dep = testing::tiny_deployment();
  geo::zone_grid grid(dep.proj(), 250.0);
  core::coordinator coord(grid, dep.names(), {}, 5);
  coordinator_server server(coord);
  const auto before = parse_stats(server.handle("STATS"));

  const geo::lat_lon pos = dep.proj().to_lat_lon({50.0, 50.0});
  std::vector<trace::measurement_record> recs;
  for (int i = 0; i < 25; ++i) {
    recs.push_back(testing::make_record(1000.0 + i * 10.0, dep.names()[0],
                                        pos, trace::probe_kind::udp_burst,
                                        1e6));
  }
  EXPECT_EQ(server.handle(encode_report_batch(recs)), "ACK 25");
  EXPECT_EQ(server.reports_received(), 25u);
  EXPECT_GT(coord.status_of(grid.zone_of(pos)).open_epoch_samples, 0u);

  const auto after = parse_stats(server.handle("STATS"));
  using namespace obs::names;
  EXPECT_EQ(delta(before, after, kServerReports), 25.0);
  EXPECT_EQ(delta(before, after, kServerReportBatches), 1.0);
  EXPECT_EQ(delta(before, after, kCoordReportsAccepted), 25.0);
  EXPECT_EQ(delta(before, after,
                  std::string(kServerBatchLatency) + ".count"),
            1.0);
  // lines = the one REPORTB frame + the closing STATS itself.
  EXPECT_EQ(delta(before, after, kServerLines), 2.0);
}

TEST(ProtoServer, ReportBatchIsAllOrNothingOnBadRecord) {
  const auto dep = testing::tiny_deployment();
  geo::zone_grid grid(dep.proj(), 250.0);
  core::coordinator coord(grid, dep.names(), {}, 5);
  coordinator_server server(coord);

  const geo::lat_lon pos = dep.proj().to_lat_lon({50.0, 50.0});
  std::vector<trace::measurement_record> recs;
  for (int i = 0; i < 3; ++i) {
    recs.push_back(testing::make_record(1000.0 + i, dep.names()[0], pos,
                                        trace::probe_kind::udp_burst, 1e6));
  }
  std::string frame = encode_report_batch(recs);
  frame += "\nnot,a,valid,record";  // 4th line breaks the declared count
  EXPECT_EQ(message_type(server.handle(frame)), "ERR");
  EXPECT_EQ(server.reports_received(), 0u);
  EXPECT_EQ(coord.status_of(grid.zone_of(pos)).open_epoch_samples, 0u);
  EXPECT_EQ(server.errors(), 1u);
}

TEST(ProtoServer, ReportBatchFlowsThroughShardedPipeline) {
  // REPORTB against the 2-shard concurrent server: the batch is routed per
  // shard and drained; after flush the tables saw every record.
  const auto dep = testing::tiny_deployment();
  geo::zone_grid grid(dep.proj(), 250.0);
  core::sharded_config cfg;
  cfg.coordinator.epochs.default_epoch_s = 120.0;
  cfg.num_shards = 2;
  core::sharded_coordinator coord(grid, dep.names(), cfg, 5);
  coordinator_server server(coord);
  const auto before = parse_stats(server.handle("STATS"));

  stats::rng_stream rng(7);
  constexpr int kFrames = 8;
  constexpr int kPerFrame = 40;
  for (int f = 0; f < kFrames; ++f) {
    std::vector<trace::measurement_record> recs;
    for (int i = 0; i < kPerFrame; ++i) {
      recs.push_back(testing::make_record(
          1000.0 + f * 100.0 + i, dep.names()[0],
          dep.proj().to_lat_lon({250.0 * rng.uniform_int(-2, 2),
                                 250.0 * rng.uniform_int(-2, 2)}),
          trace::probe_kind::udp_burst, 1e6));
    }
    EXPECT_EQ(server.handle(encode_report_batch(recs)),
              "ACK " + std::to_string(kPerFrame));
  }
  coord.flush();
  constexpr std::uint64_t kTotal = kFrames * kPerFrame;
  EXPECT_EQ(server.reports_received(), kTotal);
  EXPECT_EQ(coord.reports_received(), kTotal);
  EXPECT_EQ(coord.reports_ingested(), kTotal);

  const auto after = parse_stats(server.handle("STATS"));
  using namespace obs::names;
  EXPECT_EQ(delta(before, after, kServerReports), double(kTotal));
  EXPECT_EQ(delta(before, after, kServerReportBatches), double(kFrames));
  EXPECT_EQ(delta(before, after, kShardedRoutedTotal), double(kTotal));
  EXPECT_EQ(delta(before, after, kCoordReportsAccepted), double(kTotal));

  // Stopped pipeline refuses the whole frame.
  coord.stop();
  std::vector<trace::measurement_record> one{testing::make_record(
      9000.0, dep.names()[0], dep.proj().to_lat_lon({0.0, 0.0}),
      trace::probe_kind::udp_burst, 1e6)};
  EXPECT_EQ(message_type(server.handle(encode_report_batch(one))), "ERR");
}

TEST(ProtoServer, LongGarbageLineEchoIsClipped) {
  // A multi-megabyte garbage line must not be reflected verbatim into the
  // ERR reply (or the obs error path).
  const auto dep = testing::tiny_deployment();
  core::coordinator coord(geo::zone_grid(dep.proj(), 250.0), dep.names(),
                          {}, 5);
  coordinator_server server(coord);

  const std::string garbage = "NOISE " + std::string(4 << 20, 'x');
  const std::string reply = server.handle(garbage);
  EXPECT_EQ(message_type(reply), "ERR");
  EXPECT_LT(reply.size(), 256u) << "ERR reply must clip the echoed line";

  const std::string bad_checkin =
      "CHECKIN client=1 lat=" + std::string(1 << 20, '9') +
      " lon=1 t=1 net=0 active=1 device=a";
  const std::string reply2 = server.handle(bad_checkin);
  EXPECT_EQ(message_type(reply2), "ERR");
  EXPECT_LT(reply2.size(), 256u);
}

TEST(ProtoServer, StatsReflectsReportsAndErrLines) {
  // Regression for the STATS command: a known sequence of ACKed reports and
  // ERR replies must show up, exactly counted, in the metrics dump.
  const auto dep = testing::tiny_deployment();
  geo::zone_grid grid(dep.proj(), 250.0);
  core::coordinator coord(grid, dep.names(), {}, 5);
  coordinator_server server(coord);

  const auto before = parse_stats(server.handle("STATS"));

  constexpr int kGood = 7;
  constexpr int kMalformed = 3;
  const geo::lat_lon pos = dep.proj().to_lat_lon({50.0, 50.0});
  for (int i = 0; i < kGood; ++i) {
    measurement_report rep;
    rep.client_id = 1;
    rep.record = testing::make_record(1000.0 + i * 10.0, dep.names()[0], pos,
                                      trace::probe_kind::udp_burst, 1e6);
    ASSERT_EQ(server.handle(encode(rep)), "ACK");
  }
  for (int i = 0; i < kMalformed; ++i) {
    ASSERT_EQ(message_type(server.handle("REPORT client=1")), "ERR");
  }
  // v2 note: "HELLO there" is now a recognised-but-malformed HELLO (parse
  // error); a genuinely unknown verb is what counts as unsupported.
  ASSERT_EQ(message_type(server.handle("BOGUS there")), "ERR");

  const auto after = parse_stats(server.handle("STATS"));
  using namespace obs::names;
  EXPECT_EQ(delta(before, after, kServerReports), kGood);
  EXPECT_EQ(delta(before, after, kServerErrParse), kMalformed);
  EXPECT_EQ(delta(before, after, kServerErrUnsupported), 1.0);
  // lines = good + malformed + unsupported + the closing STATS itself.
  EXPECT_EQ(delta(before, after, kServerLines), kGood + kMalformed + 1 + 1);
  EXPECT_EQ(delta(before, after, kServerStats), 1.0);
  // The coordinator layer saw exactly the successful records.
  EXPECT_EQ(delta(before, after, kCoordReportsAccepted), kGood);
  EXPECT_EQ(delta(before, after, kCoordReportsRejected), 0.0);
  // Per-command latency histograms observed each ACKed report.
  EXPECT_EQ(delta(before, after,
                  std::string(kServerReportLatency) + ".count"),
            kGood + kMalformed);
}

TEST(ProtoServer, StatsAccountsForAllReportsInShardedStress) {
  // Acceptance check from ISSUE 2: after a multi-producer run against a
  // 4-shard pipeline, the STATS dump must account for 100% of submitted
  // lines: drained (applied to shard tables) + still queued + rejected.
  const auto dep = testing::tiny_deployment();
  geo::zone_grid grid(dep.proj(), 250.0);
  core::sharded_config cfg;
  cfg.coordinator.epochs.default_epoch_s = 120.0;
  cfg.num_shards = 4;
  core::sharded_coordinator coord(grid, dep.names(), cfg, 5);
  coordinator_server server(coord);
  const auto before = parse_stats(server.handle("STATS"));

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  constexpr int kMalformedEvery = 10;  // every 10th line is garbage
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      stats::rng_stream rng(100 + p);
      for (int i = 0; i < kPerProducer; ++i) {
        if (i % kMalformedEvery == 0) {
          EXPECT_EQ(message_type(server.handle("REPORT client=oops")), "ERR");
          continue;
        }
        measurement_report rep;
        rep.client_id = p + 1;
        rep.record = testing::make_record(
            1000.0 + i, dep.names()[0],
            dep.proj().to_lat_lon({250.0 * rng.uniform_int(-2, 2),
                                   250.0 * rng.uniform_int(-2, 2)}),
            trace::probe_kind::udp_burst, 1e6);
        EXPECT_EQ(server.handle(encode(rep)), "ACK");
      }
    });
  }
  for (auto& th : producers) th.join();
  coord.flush();

  const auto after = parse_stats(server.handle("STATS"));
  using namespace obs::names;
  constexpr double kSubmitted = kProducers * kPerProducer;
  const double rejected = delta(before, after, kServerErrParse);
  const double routed = delta(before, after, kShardedRoutedTotal);
  const double queued = delta(before, after, kQueueEnqueued) -
                        delta(before, after, kQueueDequeued);
  double drained = 0.0;
  for (int s = 0; s < 4; ++s) {
    drained += delta(before, after,
                     std::string(kShardPrefix) + std::to_string(s) +
                         "." + kShardDrainedSuffix);
  }
  EXPECT_EQ(rejected, kProducers * (kPerProducer / kMalformedEvery));
  EXPECT_EQ(routed, kSubmitted - rejected);
  // 100% accounting: every submitted line is drained, queued or rejected.
  EXPECT_EQ(drained + queued + rejected, kSubmitted);
  EXPECT_EQ(queued, 0.0);  // flushed
  // The server and pipeline layers agree with each other.
  EXPECT_EQ(delta(before, after, kServerReports), routed);
  EXPECT_EQ(delta(before, after, kCoordReportsAccepted), drained);
  // Work actually went through the batched drain path.
  EXPECT_GE(delta(before, after, kShardedDrainBatches), 4.0);
  EXPECT_EQ(delta(before, after,
                  std::string(kShardedDrainLatency) + ".count"),
            delta(before, after, kShardedDrainBatches));
}

// ---------------------------------------------------------------------------
// Wire protocol v2: the read side (QUERY/QUERYB/ALERTS/HELLO) + typed errors.
// ---------------------------------------------------------------------------

TEST(ProtoCodecV2, HelloRoundTripAndNegotiation) {
  hello_request req;
  req.version = 7;
  EXPECT_EQ(decode_hello(encode(req)).version, 7u);

  hello_reply rep;
  rep.version = 2;
  rep.min_version = 1;
  const auto back = decode_hello_reply(encode(rep));
  EXPECT_EQ(back.version, 2u);
  EXPECT_EQ(back.min_version, 1u);

  EXPECT_THROW(decode_hello("HELLO"), std::invalid_argument);  // missing ver
  EXPECT_THROW(decode_hello("HELLO ver=abc"), std::invalid_argument);
  EXPECT_THROW(decode_hello_reply("HELLO ver=2"), std::invalid_argument);
}

TEST(ProtoCodecV2, QueryAndEstimateRoundTripBitExact) {
  query_request q;
  q.pos = here;
  q.network = "NetB";
  q.metric = trace::metric::rtt_s;
  q.time_s = 43000.125;
  const auto qb = decode_query(encode(q));
  EXPECT_NEAR(qb.pos.lat_deg, here.lat_deg, 1e-6);
  EXPECT_EQ(qb.network, "NetB");
  EXPECT_EQ(qb.metric, trace::metric::rtt_s);
  EXPECT_NEAR(qb.time_s, 43000.125, 1e-3);

  // t is optional; omitted means "clock unknown".
  query_request no_t = q;
  no_t.time_s = -1.0;
  EXPECT_EQ(decode_query(encode(no_t)).time_s, -1.0);

  // Estimates carry doubles at %.17g: the wire round trip is bit-exact.
  estimate_reply est;
  est.zone = geo::zone_id{-3, 17};
  est.network = "NetB";
  est.metric = trace::metric::tcp_throughput_bps;
  est.count = 12345678901ull;
  est.mean = 1.0 / 3.0;
  est.stddev = 2.0 / 7.0;
  est.epoch_index = 41;
  est.staleness_s = 0.1 + 0.2;  // deliberately non-representable
  est.confidence = 0.99999999999999989;
  const auto eb = decode_estimate(encode(est));
  EXPECT_EQ(eb.zone, est.zone);
  EXPECT_EQ(eb.network, "NetB");
  EXPECT_EQ(eb.metric, est.metric);
  EXPECT_EQ(eb.count, est.count);
  EXPECT_EQ(eb.mean, est.mean);
  EXPECT_EQ(eb.stddev, est.stddev);
  EXPECT_EQ(eb.epoch_index, 41u);
  EXPECT_EQ(eb.staleness_s, est.staleness_s);
  EXPECT_EQ(eb.confidence, est.confidence);
}

TEST(ProtoCodecV2, QueryBatchAllOrNothing) {
  std::vector<query_request> qs;
  for (int i = 0; i < 3; ++i) {
    query_request q;
    q.pos = here;
    q.network = i % 2 ? "NetC" : "NetB";
    q.metric = trace::metric::loss_rate;
    qs.push_back(q);
  }
  const std::string frame = encode_query_batch(qs);
  EXPECT_EQ(message_type(frame), "QUERYB");
  const auto back = decode_query_batch(frame);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[1].network, "NetC");

  // One bad payload line poisons the whole frame (all-or-nothing).
  std::string poisoned = frame;
  poisoned.replace(poisoned.find("lat="), 4, "bat=");
  EXPECT_THROW(decode_query_batch(poisoned), std::invalid_argument);
  // Count mismatches in either direction are rejected.
  EXPECT_THROW(decode_query_batch("QUERYB 2\n" + encode(qs[0])),
               std::invalid_argument);
  EXPECT_THROW(decode_query_batch("QUERYB 90000"), std::invalid_argument);
}

TEST(ProtoCodecV2, EstimateBatchPreservesPositionsAndGaps) {
  estimate_reply est;
  est.zone = geo::zone_id{1, 2};
  est.network = "NetB";
  est.metric = trace::metric::jitter_s;
  est.mean = 0.25;
  std::vector<std::optional<estimate_reply>> replies{std::nullopt, est,
                                                     std::nullopt};
  const std::string frame = encode_estimate_batch(replies);
  EXPECT_EQ(message_type(frame), "ESTB");
  const auto back = decode_estimate_batch(frame);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_FALSE(back[0].has_value());
  ASSERT_TRUE(back[1].has_value());
  EXPECT_EQ(back[1]->mean, 0.25);
  EXPECT_FALSE(back[2].has_value());
}

TEST(ProtoCodecV2, AlertsRoundTrip) {
  alerts_request req;
  req.since = 41;
  req.max = 5;
  const auto rb = decode_alerts_request(encode(req));
  EXPECT_EQ(rb.since, 41u);
  EXPECT_EQ(rb.max, 5u);
  // max is optional and defaults.
  EXPECT_EQ(decode_alerts_request("ALERTS since=0").max, 256u);
  EXPECT_THROW(decode_alerts_request("ALERTS max=5"), std::invalid_argument);

  alerts_reply rep;
  rep.next_seq = 44;
  rep.dropped = 2;
  alert_event ev;
  ev.seq = 43;
  ev.zone = geo::zone_id{5, -5};
  ev.network = "NetC";
  ev.metric = trace::metric::rtt_s;
  ev.epoch_start_s = 1800.0;
  ev.previous_mean = 0.1;
  ev.new_mean = 1.0 / 3.0;
  ev.previous_stddev = 0.01;
  rep.alerts.push_back(ev);
  const auto back = decode_alerts_reply(encode(rep));
  EXPECT_EQ(back.next_seq, 44u);
  EXPECT_EQ(back.dropped, 2u);
  ASSERT_EQ(back.alerts.size(), 1u);
  EXPECT_EQ(back.alerts[0].seq, 43u);
  EXPECT_EQ(back.alerts[0].zone, ev.zone);
  EXPECT_EQ(back.alerts[0].new_mean, ev.new_mean);  // %.17g bit-exact
}

TEST(ProtoCodecV2, ErrorCodesAreTableDrivenAndClipped) {
  for (auto code : {err_code::parse, err_code::unsupported, err_code::stopped,
                    err_code::version, err_code::internal}) {
    const std::string_view token = to_string(code);
    const auto back = err_code_from_string(token);
    ASSERT_TRUE(back.has_value()) << token;
    EXPECT_EQ(*back, code);
    const std::string line = encode_error(code, "why");
    EXPECT_EQ(message_type(line), "ERR");
    EXPECT_EQ(line, "ERR " + std::string(token) + " why");
  }
  EXPECT_FALSE(err_code_from_string("nonsense").has_value());
  // Hostile detail is clipped, never echoed verbatim.
  const std::string huge = encode_error(err_code::parse,
                                        std::string(1 << 16, 'x'));
  EXPECT_LT(huge.size(), 256u);
}

TEST(ProtoServerV2, HelloNegotiatesAndGatesOldClients) {
  const auto dep = testing::tiny_deployment();
  core::coordinator coord(geo::zone_grid(dep.proj(), 250.0), dep.names(), {},
                          5);
  coordinator_server server(coord);

  // Newer client: capped to ours. Older-but-supported: their version.
  auto rep = decode_hello_reply(server.handle("HELLO ver=9"));
  EXPECT_EQ(rep.version, wire_version);
  EXPECT_EQ(rep.min_version, wire_min_version);
  rep = decode_hello_reply(server.handle("HELLO ver=1"));
  EXPECT_EQ(rep.version, 1u);

  // Below the minimum: typed version error.
  const std::string err = server.handle("HELLO ver=0");
  EXPECT_EQ(message_type(err), "ERR");
  EXPECT_EQ(err.rfind("ERR version", 0), 0u) << err;
}

TEST(ProtoServerV2, QueryServesWhatTheViewServes) {
  const auto dep = testing::tiny_deployment();
  const geo::zone_grid grid(dep.proj(), 250.0);
  core::coordinator_config cfg;
  cfg.epochs.default_epoch_s = 120.0;
  cfg.default_samples_per_epoch = 10;
  core::coordinator coord(grid, dep.names(), cfg, 5);
  coordinator_server server(coord);

  const geo::lat_lon pos = dep.proj().to_lat_lon({80.0, -40.0});
  query_request q;
  q.pos = pos;
  q.network = dep.names()[0];
  q.metric = trace::metric::udp_throughput_bps;

  // Before anything is published: NONE, not an error.
  EXPECT_EQ(server.handle(encode(q)), "NONE");

  // Ingest enough over several epochs to freeze estimates.
  for (int i = 0; i < 400; ++i) {
    measurement_report rep;
    rep.client_id = 1;
    rep.record = testing::make_record(1000.0 + i * 2.0, dep.names()[0], pos,
                                      trace::probe_kind::udp_burst,
                                      2e6 * (1.0 + 0.01 * i));
    ASSERT_EQ(server.handle(encode(rep)), "ACK");
  }

  const double now_s = 3000.0;
  q.time_s = now_s;
  const std::string reply = server.handle(encode(q));
  ASSERT_EQ(message_type(reply), "EST") << reply;
  const auto est = decode_estimate(reply);

  const core::estimate_view view(coord);
  const auto want =
      view.lookup(grid.zone_of(pos), q.network, q.metric, now_s);
  ASSERT_TRUE(want.has_value());
  EXPECT_EQ(est.zone, grid.zone_of(pos));
  EXPECT_EQ(est.network, q.network);
  EXPECT_EQ(est.metric, q.metric);
  EXPECT_EQ(est.count, want->count);
  EXPECT_EQ(est.mean, want->mean);          // %.17g: wire is bit-exact
  EXPECT_EQ(est.stddev, want->stddev);
  EXPECT_EQ(est.epoch_index, want->epoch_index);
  EXPECT_EQ(est.staleness_s, want->staleness_s);
  EXPECT_EQ(est.confidence, want->confidence);

  // The batched flavour answers positionally, gaps as NONE.
  query_request missing = q;
  missing.network = "NoSuchNet";
  const std::vector<query_request> batch{q, missing, q};
  const auto replies = decode_estimate_batch(
      server.handle(encode_query_batch(batch)));
  ASSERT_EQ(replies.size(), 3u);
  ASSERT_TRUE(replies[0].has_value());
  EXPECT_FALSE(replies[1].has_value());
  ASSERT_TRUE(replies[2].has_value());
  EXPECT_EQ(replies[0]->mean, want->mean);
}

TEST(ProtoServerV2, AlertsDrainOverTheWire) {
  const auto dep = testing::tiny_deployment();
  const geo::zone_grid grid(dep.proj(), 250.0);
  core::coordinator_config cfg;
  cfg.epochs.default_epoch_s = 60.0;
  core::coordinator coord(grid, dep.names(), cfg, 5);
  coordinator_server server(coord);

  // A hard mean shift across epochs raises >2-sigma alerts.
  const geo::lat_lon pos = dep.proj().to_lat_lon({10.0, 10.0});
  for (int i = 0; i < 600; ++i) {
    const double level = i < 300 ? 1e6 : 8e6;
    measurement_report rep;
    rep.client_id = 1;
    rep.record = testing::make_record(
        1000.0 + i * 1.0, dep.names()[0], pos,
        trace::probe_kind::tcp_download, level * (1.0 + 0.01 * (i % 7)));
    ASSERT_EQ(server.handle(encode(rep)), "ACK");
  }
  ASSERT_FALSE(coord.alerts().empty());

  std::uint64_t cursor = 0;
  std::size_t served = 0;
  std::uint64_t prev_seq = 0;
  for (int round = 0; round < 100; ++round) {
    alerts_request req;
    req.since = cursor;
    req.max = 2;
    const auto rep = decode_alerts_reply(server.handle(encode(req)));
    if (rep.alerts.empty()) break;
    for (const auto& a : rep.alerts) {
      EXPECT_GT(a.seq, prev_seq);
      prev_seq = a.seq;
    }
    served += rep.alerts.size();
    cursor = rep.next_seq;
  }
  EXPECT_EQ(served, coord.alerts().size());

  // Requests clamp to the frame cap rather than erroring.
  alerts_request req;
  req.since = 0;
  req.max = 1 << 30;
  const auto rep = decode_alerts_reply(server.handle(encode(req)));
  EXPECT_LE(rep.alerts.size(), max_alert_batch);
}

TEST(ProtoServerV2, RemoteQueryClientSpeaksTheProtocol) {
  const auto dep = testing::tiny_deployment();
  const geo::zone_grid grid(dep.proj(), 250.0);
  core::coordinator_config cfg;
  cfg.epochs.default_epoch_s = 120.0;
  core::coordinator coord(grid, dep.names(), cfg, 5);
  coordinator_server server(coord);
  remote_query_client client(
      [&](const std::string& line) { return server.handle(line); });

  EXPECT_EQ(client.hello().version, wire_version);
  EXPECT_THROW(client.hello(0), std::runtime_error);

  query_request q;
  q.pos = dep.proj().to_lat_lon({0.0, 0.0});
  q.network = dep.names()[0];
  q.metric = trace::metric::rtt_s;
  EXPECT_FALSE(client.query(q).has_value());  // nothing published yet

  for (int i = 0; i < 300; ++i) {
    measurement_report rep;
    rep.client_id = 1;
    rep.record = testing::make_record(1000.0 + i * 2.0, dep.names()[0], q.pos,
                                      trace::probe_kind::ping, 0.08);
    server.handle(encode(rep));
  }
  const auto est = client.query(q);
  ASSERT_TRUE(est.has_value());
  EXPECT_GT(est->count, 0u);

  const std::vector<query_request> batch{q, q};
  const auto replies = client.query_batch(batch);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_TRUE(replies[0].has_value());

  const auto alerts = client.alerts(0);
  EXPECT_EQ(alerts.dropped, 0u);
}

TEST(ProtoServerV2, StatsSurvivesHostileMetricNames) {
  // The STATS encoder must keep its line/token framing even if some
  // component registers a name with embedded whitespace or control bytes.
  auto& reg = obs::registry::global();
  reg.get_counter("test.hostile\nname with spaces\tand\rctl").inc(3);

  const std::string dump = encode_stats();
  std::istringstream in(dump);
  std::string header;
  std::size_t n = 0;
  in >> header >> n;
  EXPECT_EQ(header, "STATS");
  std::string line;
  std::getline(in, line);  // rest of header line
  std::size_t lines = 0;
  bool hostile_seen = false;
  while (std::getline(in, line)) {
    ++lines;
    // Every payload line is exactly "name value".
    const auto space = line.find(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.find(' ', space + 1), std::string::npos) << line;
    if (line.rfind("test.hostile_name_with_spaces_and_ctl ", 0) == 0) {
      hostile_seen = true;
      EXPECT_EQ(line.substr(space + 1), "3");
    }
  }
  EXPECT_EQ(lines, n) << "frame header count disagrees with payload";
  EXPECT_TRUE(hostile_seen) << dump.substr(0, 400);
}

TEST(ProtoServerV2, QueryCountersAndLatenciesAreAccounted) {
  const auto dep = testing::tiny_deployment();
  core::coordinator coord(geo::zone_grid(dep.proj(), 250.0), dep.names(), {},
                          5);
  coordinator_server server(coord);
  const auto before = parse_stats(server.handle("STATS"));

  query_request q;
  q.pos = dep.proj().to_lat_lon({0.0, 0.0});
  q.network = dep.names()[0];
  q.metric = trace::metric::rtt_s;
  server.handle(encode(q));
  server.handle(encode(q));
  server.handle(encode_query_batch(std::vector<query_request>{q, q, q}));
  alerts_request areq;
  server.handle(encode(areq));
  server.handle("HELLO ver=2");
  server.handle("HELLO ver=0");  // version-gated

  const auto after = parse_stats(server.handle("STATS"));
  using namespace obs::names;
  EXPECT_EQ(delta(before, after, kServerQueries), 5.0);  // 2 single + 3 batched
  EXPECT_EQ(delta(before, after, kServerQueryBatches), 1.0);
  EXPECT_EQ(delta(before, after, kServerAlertsRequests), 1.0);
  EXPECT_EQ(delta(before, after, kServerHellos), 1.0);
  EXPECT_EQ(delta(before, after, kServerErrVersion), 1.0);
  EXPECT_EQ(delta(before, after, std::string(kServerQueryLatency) + ".count"),
            2.0);
  EXPECT_EQ(
      delta(before, after, std::string(kServerQueryBatchLatency) + ".count"),
      1.0);
  EXPECT_EQ(delta(before, after, std::string(kServerAlertsLatency) + ".count"),
            1.0);
}

}  // namespace
}  // namespace wiscape::proto

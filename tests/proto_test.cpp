#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <thread>

#include "obs/names.h"
#include "proto/messages.h"
#include "proto/server.h"
#include "test_util.h"

namespace wiscape::proto {
namespace {

const geo::lat_lon here = cellnet::anchors::madison;

// Parses a STATS wire reply ("STATS <n>" + n "name value" lines) into a
// name -> value map. The obs registry is process-wide, so tests assert on
// deltas between two dumps rather than absolute values.
std::map<std::string, double> parse_stats(const std::string& reply) {
  std::istringstream in(reply);
  std::string tag;
  std::size_t n = 0;
  in >> tag >> n;
  EXPECT_EQ(tag, "STATS");
  std::map<std::string, double> out;
  std::string name;
  double value = 0.0;
  while (in >> name >> value) out[name] = value;
  EXPECT_EQ(out.size(), n);
  return out;
}

double delta(const std::map<std::string, double>& before,
             const std::map<std::string, double>& after,
             const std::string& name) {
  const auto b = before.find(name);
  const auto a = after.find(name);
  return (a == after.end() ? 0.0 : a->second) -
         (b == before.end() ? 0.0 : b->second);
}

TEST(ProtoCodec, CheckinRoundTrip) {
  checkin_request m;
  m.client_id = 42;
  m.pos = here;
  m.time_s = 1234.567;
  m.network_index = 2;
  m.active_in_zone = 7;
  m.device = "phone";
  const auto back = decode_checkin(encode(m));
  EXPECT_EQ(back.client_id, 42u);
  EXPECT_NEAR(back.pos.lat_deg, here.lat_deg, 1e-6);
  EXPECT_NEAR(back.time_s, 1234.567, 1e-3);
  EXPECT_EQ(back.network_index, 2u);
  EXPECT_EQ(back.active_in_zone, 7u);
  EXPECT_EQ(back.device, "phone");
}

TEST(ProtoCodec, TaskRoundTripAllKinds) {
  for (auto kind : {trace::probe_kind::tcp_download, trace::probe_kind::udp_burst,
                    trace::probe_kind::ping, trace::probe_kind::udp_uplink}) {
    task_assignment m;
    m.kind = kind;
    m.network_index = 1;
    m.tcp_bytes = 500'000;
    m.udp_packets = 80;
    m.ping_count = 12;
    const auto back = decode_task(encode(m));
    EXPECT_EQ(back.kind, kind);
    EXPECT_EQ(back.network_index, 1u);
    EXPECT_EQ(back.tcp_bytes, 500'000u);
    EXPECT_EQ(back.udp_packets, 80u);
    EXPECT_EQ(back.ping_count, 12u);
  }
}

TEST(ProtoCodec, ReportRoundTripCarriesRecord) {
  measurement_report m;
  m.client_id = 9;
  m.record = testing::make_record(99.0, "NetB", here,
                                  trace::probe_kind::udp_burst, 1.25e6);
  m.record.jitter_s = 0.004;
  const auto back = decode_report(encode(m));
  EXPECT_EQ(back.client_id, 9u);
  EXPECT_EQ(back.record.network, "NetB");
  EXPECT_NEAR(back.record.throughput_bps, 1.25e6, 1.0);
  EXPECT_NEAR(back.record.jitter_s, 0.004, 1e-6);
}

TEST(ProtoCodec, MessageTypeTagging) {
  EXPECT_EQ(message_type(encode(checkin_request{})), "CHECKIN");
  EXPECT_EQ(message_type(encode(task_assignment{})), "TASK");
  EXPECT_EQ(message_type(encode_idle()), "IDLE");
  EXPECT_EQ(message_type("garbage line"), "");
}

TEST(ProtoCodec, RejectsMalformedInput) {
  EXPECT_THROW(decode_checkin("TASK kind=udp"), std::invalid_argument);
  EXPECT_THROW(decode_checkin("CHECKIN client=1"), std::invalid_argument);
  EXPECT_THROW(decode_checkin("CHECKIN client=x lat=1 lon=1 t=1 net=0 "
                              "active=1 device=laptop"),
               std::invalid_argument);
  EXPECT_THROW(decode_task("TASK kind=warp net=0 tcp_bytes=0 udp_packets=0 "
                           "ping_count=0"),
               std::invalid_argument);
  EXPECT_THROW(decode_report("REPORT client=1"), std::invalid_argument);
  EXPECT_THROW(decode_report("REPORT client=abc csv=x"),
               std::invalid_argument);
}

TEST(ProtoServer, CheckinYieldsTaskOrIdleAndReportAcks) {
  const auto dep = testing::tiny_deployment();
  geo::zone_grid grid(dep.proj(), 250.0);
  core::coordinator_config cfg;
  cfg.default_samples_per_epoch = 3;
  core::coordinator coord(grid, dep.names(), cfg, 5);
  coordinator_server server(coord);

  checkin_request req;
  req.client_id = 1;
  req.pos = dep.proj().to_lat_lon({100.0, 100.0});
  req.time_s = 1000.0;
  req.network_index = 0;
  req.active_in_zone = 1;

  int tasks = 0;
  for (int i = 0; i < 30; ++i) {
    req.time_s += 10.0;
    const std::string reply = server.handle(encode(req));
    const auto type = message_type(reply);
    ASSERT_TRUE(type == "TASK" || type == "IDLE") << reply;
    if (type != "TASK") continue;
    ++tasks;
    // Report a matching fake measurement back.
    measurement_report rep;
    rep.client_id = 1;
    rep.record = testing::make_record(req.time_s, dep.names()[0], req.pos,
                                      decode_task(reply).kind, 1e6);
    EXPECT_EQ(server.handle(encode(rep)), "ACK");
  }
  EXPECT_GT(tasks, 0);
  EXPECT_EQ(server.tasks_issued(), static_cast<std::uint64_t>(tasks));
  EXPECT_EQ(server.reports_received(), static_cast<std::uint64_t>(tasks));
  // The coordinator actually ingested the reports.
  EXPECT_GT(coord.status_of(grid.zone_of(req.pos)).open_epoch_samples, 0u);
}

TEST(ProtoServer, AnswersUnknownRequestsWithErr) {
  const auto dep = testing::tiny_deployment();
  core::coordinator coord(geo::zone_grid(dep.proj(), 250.0), dep.names(),
                          {}, 5);
  coordinator_server server(coord);
  EXPECT_EQ(message_type(server.handle("HELLO")), "ERR");
  EXPECT_EQ(message_type(server.handle(encode_idle())), "ERR");
  EXPECT_EQ(server.errors(), 2u);
}

TEST(ProtoServer, MapsMalformedLinesToErrReplies) {
  // Regression: handle() used to propagate std::invalid_argument out of the
  // decoder; a line-protocol server must answer every request, so malformed
  // CHECKIN/REPORT lines come back as "ERR <reason>" instead.
  const auto dep = testing::tiny_deployment();
  core::coordinator coord(geo::zone_grid(dep.proj(), 250.0), dep.names(),
                          {}, 5);
  coordinator_server server(coord);

  for (const std::string bad : {
           "CHECKIN client=1",                               // missing fields
           "CHECKIN client=x lat=1 lon=1 t=1 net=0 active=1 device=laptop",
           "CHECKIN client=1 lat=bogus lon=1 t=1 net=0 active=1 device=a",
           "REPORT client=1",                                // missing csv
           "REPORT client=abc csv=x",                        // bad client id
       }) {
    const std::string reply = server.handle(bad);
    EXPECT_EQ(message_type(reply), "ERR") << bad << " -> " << reply;
    EXPECT_GT(reply.size(), 4u) << "ERR reply should carry a reason";
  }
  EXPECT_EQ(server.errors(), 5u);
  // Nothing malformed was counted as real traffic.
  EXPECT_EQ(server.reports_received(), 0u);
  EXPECT_EQ(server.tasks_issued(), 0u);
  // The server still works after the garbage.
  checkin_request req;
  req.pos = dep.proj().to_lat_lon({0.0, 0.0});
  req.time_s = 100.0;
  const auto type = message_type(server.handle(encode(req)));
  EXPECT_TRUE(type == "TASK" || type == "IDLE");
}

TEST(ProtoServer, ExtremeReportFieldsAreContained) {
  // Regression (review of ISSUE 4): REPORT carries unvalidated doubles and a
  // free-form network name; absurd coordinates (zone outside the store's
  // packed cell range) must not throw through the server. The record is
  // rejected inside the coordinator and the line still gets its ACK.
  const auto dep = testing::tiny_deployment();
  core::coordinator coord(geo::zone_grid(dep.proj(), 250.0), dep.names(),
                          {}, 5);
  coordinator_server server(coord);

  measurement_report rep;
  rep.client_id = 1;
  rep.record = testing::make_record(10.0, dep.names()[0],
                                    geo::lat_lon{5e8, -5e8},
                                    trace::probe_kind::udp_burst, 1e6);
  EXPECT_EQ(server.handle(encode(rep)), "ACK");
  EXPECT_EQ(server.errors(), 0u);
  // Nothing landed in the table, and the server still answers.
  EXPECT_TRUE(coord.table().keys().empty());
  rep.record = testing::make_record(20.0, dep.names()[0],
                                    dep.proj().to_lat_lon({0.0, 0.0}),
                                    trace::probe_kind::udp_burst, 1e6);
  EXPECT_EQ(server.handle(encode(rep)), "ACK");
  EXPECT_EQ(coord.table().keys().empty(), false);
}

TEST(ProtoCodec, MetricRoundTripAllValues) {
  // Enum growth must not silently desync client and server: every metric
  // round-trips through its wire string.
  for (const trace::metric m :
       {trace::metric::tcp_throughput_bps, trace::metric::udp_throughput_bps,
        trace::metric::loss_rate, trace::metric::jitter_s,
        trace::metric::rtt_s, trace::metric::uplink_throughput_bps}) {
    const std::string wire = trace::to_string(m);
    EXPECT_FALSE(wire.empty());
    EXPECT_EQ(trace::metric_from_string(wire), m);
  }
  EXPECT_THROW(trace::metric_from_string("no_such_metric"),
               std::invalid_argument);
}

TEST(ProtoCodec, ProbeKindRoundTripAllValues) {
  for (const trace::probe_kind k :
       {trace::probe_kind::tcp_download, trace::probe_kind::udp_burst,
        trace::probe_kind::ping, trace::probe_kind::udp_uplink}) {
    const std::string wire = trace::to_string(k);
    EXPECT_FALSE(wire.empty());
    EXPECT_EQ(trace::probe_kind_from_string(wire), k);
  }
  EXPECT_THROW(trace::probe_kind_from_string("warp"), std::invalid_argument);
}

TEST(ProtoServer, ConcurrentModeServesShardedCoordinator) {
  const auto dep = testing::tiny_deployment();
  geo::zone_grid grid(dep.proj(), 250.0);
  core::sharded_config cfg;
  cfg.coordinator.default_samples_per_epoch = 3;
  cfg.num_shards = 2;
  core::sharded_coordinator coord(grid, dep.names(), cfg, 5);
  coordinator_server server(coord);
  ASSERT_TRUE(server.concurrent());

  checkin_request req;
  req.client_id = 1;
  req.pos = dep.proj().to_lat_lon({100.0, 100.0});
  req.time_s = 1000.0;
  int tasks = 0;
  for (int i = 0; i < 30; ++i) {
    req.time_s += 10.0;
    const std::string reply = server.handle(encode(req));
    const auto type = message_type(reply);
    ASSERT_TRUE(type == "TASK" || type == "IDLE") << reply;
    if (type != "TASK") continue;
    ++tasks;
    measurement_report rep;
    rep.client_id = 1;
    rep.record = testing::make_record(req.time_s, dep.names()[0], req.pos,
                                      decode_task(reply).kind, 1e6);
    EXPECT_EQ(server.handle(encode(rep)), "ACK");
  }
  EXPECT_GT(tasks, 0);
  coord.flush();
  EXPECT_EQ(server.tasks_issued(), static_cast<std::uint64_t>(tasks));
  EXPECT_EQ(coord.reports_ingested(), static_cast<std::uint64_t>(tasks));
  EXPECT_GT(coord.status_of(grid.zone_of(req.pos)).open_epoch_samples, 0u);
}

TEST(ProtoEndToEnd, RemoteAgentDrivesFullLoop) {
  // The whole Sec 3.4 loop over the wire: remote agents check in through a
  // string transport, execute real probes, and report back; the coordinator
  // accumulates estimates exactly as with in-process agents.
  const auto dep = testing::tiny_deployment();
  probe::probe_engine engine(dep, 8);
  geo::zone_grid grid(dep.proj(), 250.0);
  core::coordinator_config cfg;
  cfg.default_samples_per_epoch = 5;
  cfg.epochs.default_epoch_s = 300.0;
  core::coordinator coord(grid, dep.names(), cfg, 5);
  coordinator_server server(coord);

  auto transport = [&server](const std::string& line) {
    return server.handle(line);
  };
  remote_agent agent_b(engine, transport, 101);
  remote_agent agent_phone(engine, transport, 102, probe::phone_device());

  const geo::lat_lon loc = dep.proj().to_lat_lon({150.0, -150.0});
  int ran = 0;
  for (int i = 0; i < 120; ++i) {
    const mobility::gps_fix fix{loc, 0.0, 8.0 * 3600 + i * 30.0};
    if (const auto rec = agent_b.step(fix, 0, 2)) {
      ++ran;
      EXPECT_EQ(rec->device, "laptop");
    }
    if (const auto rec = agent_phone.step(fix, 1, 2)) {
      ++ran;
      EXPECT_EQ(rec->device, "phone");
    }
  }
  EXPECT_GT(ran, 5);
  EXPECT_EQ(server.reports_received(), static_cast<std::uint64_t>(ran));

  // Estimates were published under both networks.
  int published = 0;
  for (const auto& key : coord.table().keys()) {
    published += coord.table().latest(key).has_value() ? 1 : 0;
  }
  EXPECT_GT(published, 0);
}

TEST(ProtoServer, ReportBatchAcksAndIngests) {
  // REPORTB against the sequential coordinator: one frame, n records, one
  // "ACK <n>" reply, all ingested exactly as n single REPORTs would be.
  const auto dep = testing::tiny_deployment();
  geo::zone_grid grid(dep.proj(), 250.0);
  core::coordinator coord(grid, dep.names(), {}, 5);
  coordinator_server server(coord);
  const auto before = parse_stats(server.handle("STATS"));

  const geo::lat_lon pos = dep.proj().to_lat_lon({50.0, 50.0});
  std::vector<trace::measurement_record> recs;
  for (int i = 0; i < 25; ++i) {
    recs.push_back(testing::make_record(1000.0 + i * 10.0, dep.names()[0],
                                        pos, trace::probe_kind::udp_burst,
                                        1e6));
  }
  EXPECT_EQ(server.handle(encode_report_batch(recs)), "ACK 25");
  EXPECT_EQ(server.reports_received(), 25u);
  EXPECT_GT(coord.status_of(grid.zone_of(pos)).open_epoch_samples, 0u);

  const auto after = parse_stats(server.handle("STATS"));
  using namespace obs::names;
  EXPECT_EQ(delta(before, after, kServerReports), 25.0);
  EXPECT_EQ(delta(before, after, kServerReportBatches), 1.0);
  EXPECT_EQ(delta(before, after, kCoordReportsAccepted), 25.0);
  EXPECT_EQ(delta(before, after,
                  std::string(kServerBatchLatency) + ".count"),
            1.0);
  // lines = the one REPORTB frame + the closing STATS itself.
  EXPECT_EQ(delta(before, after, kServerLines), 2.0);
}

TEST(ProtoServer, ReportBatchIsAllOrNothingOnBadRecord) {
  const auto dep = testing::tiny_deployment();
  geo::zone_grid grid(dep.proj(), 250.0);
  core::coordinator coord(grid, dep.names(), {}, 5);
  coordinator_server server(coord);

  const geo::lat_lon pos = dep.proj().to_lat_lon({50.0, 50.0});
  std::vector<trace::measurement_record> recs;
  for (int i = 0; i < 3; ++i) {
    recs.push_back(testing::make_record(1000.0 + i, dep.names()[0], pos,
                                        trace::probe_kind::udp_burst, 1e6));
  }
  std::string frame = encode_report_batch(recs);
  frame += "\nnot,a,valid,record";  // 4th line breaks the declared count
  EXPECT_EQ(message_type(server.handle(frame)), "ERR");
  EXPECT_EQ(server.reports_received(), 0u);
  EXPECT_EQ(coord.status_of(grid.zone_of(pos)).open_epoch_samples, 0u);
  EXPECT_EQ(server.errors(), 1u);
}

TEST(ProtoServer, ReportBatchFlowsThroughShardedPipeline) {
  // REPORTB against the 2-shard concurrent server: the batch is routed per
  // shard and drained; after flush the tables saw every record.
  const auto dep = testing::tiny_deployment();
  geo::zone_grid grid(dep.proj(), 250.0);
  core::sharded_config cfg;
  cfg.coordinator.epochs.default_epoch_s = 120.0;
  cfg.num_shards = 2;
  core::sharded_coordinator coord(grid, dep.names(), cfg, 5);
  coordinator_server server(coord);
  const auto before = parse_stats(server.handle("STATS"));

  stats::rng_stream rng(7);
  constexpr int kFrames = 8;
  constexpr int kPerFrame = 40;
  for (int f = 0; f < kFrames; ++f) {
    std::vector<trace::measurement_record> recs;
    for (int i = 0; i < kPerFrame; ++i) {
      recs.push_back(testing::make_record(
          1000.0 + f * 100.0 + i, dep.names()[0],
          dep.proj().to_lat_lon({250.0 * rng.uniform_int(-2, 2),
                                 250.0 * rng.uniform_int(-2, 2)}),
          trace::probe_kind::udp_burst, 1e6));
    }
    EXPECT_EQ(server.handle(encode_report_batch(recs)),
              "ACK " + std::to_string(kPerFrame));
  }
  coord.flush();
  constexpr std::uint64_t kTotal = kFrames * kPerFrame;
  EXPECT_EQ(server.reports_received(), kTotal);
  EXPECT_EQ(coord.reports_received(), kTotal);
  EXPECT_EQ(coord.reports_ingested(), kTotal);

  const auto after = parse_stats(server.handle("STATS"));
  using namespace obs::names;
  EXPECT_EQ(delta(before, after, kServerReports), double(kTotal));
  EXPECT_EQ(delta(before, after, kServerReportBatches), double(kFrames));
  EXPECT_EQ(delta(before, after, kShardedRoutedTotal), double(kTotal));
  EXPECT_EQ(delta(before, after, kCoordReportsAccepted), double(kTotal));

  // Stopped pipeline refuses the whole frame.
  coord.stop();
  std::vector<trace::measurement_record> one{testing::make_record(
      9000.0, dep.names()[0], dep.proj().to_lat_lon({0.0, 0.0}),
      trace::probe_kind::udp_burst, 1e6)};
  EXPECT_EQ(message_type(server.handle(encode_report_batch(one))), "ERR");
}

TEST(ProtoServer, LongGarbageLineEchoIsClipped) {
  // A multi-megabyte garbage line must not be reflected verbatim into the
  // ERR reply (or the obs error path).
  const auto dep = testing::tiny_deployment();
  core::coordinator coord(geo::zone_grid(dep.proj(), 250.0), dep.names(),
                          {}, 5);
  coordinator_server server(coord);

  const std::string garbage = "NOISE " + std::string(4 << 20, 'x');
  const std::string reply = server.handle(garbage);
  EXPECT_EQ(message_type(reply), "ERR");
  EXPECT_LT(reply.size(), 256u) << "ERR reply must clip the echoed line";

  const std::string bad_checkin =
      "CHECKIN client=1 lat=" + std::string(1 << 20, '9') +
      " lon=1 t=1 net=0 active=1 device=a";
  const std::string reply2 = server.handle(bad_checkin);
  EXPECT_EQ(message_type(reply2), "ERR");
  EXPECT_LT(reply2.size(), 256u);
}

TEST(ProtoServer, StatsReflectsReportsAndErrLines) {
  // Regression for the STATS command: a known sequence of ACKed reports and
  // ERR replies must show up, exactly counted, in the metrics dump.
  const auto dep = testing::tiny_deployment();
  geo::zone_grid grid(dep.proj(), 250.0);
  core::coordinator coord(grid, dep.names(), {}, 5);
  coordinator_server server(coord);

  const auto before = parse_stats(server.handle("STATS"));

  constexpr int kGood = 7;
  constexpr int kMalformed = 3;
  const geo::lat_lon pos = dep.proj().to_lat_lon({50.0, 50.0});
  for (int i = 0; i < kGood; ++i) {
    measurement_report rep;
    rep.client_id = 1;
    rep.record = testing::make_record(1000.0 + i * 10.0, dep.names()[0], pos,
                                      trace::probe_kind::udp_burst, 1e6);
    ASSERT_EQ(server.handle(encode(rep)), "ACK");
  }
  for (int i = 0; i < kMalformed; ++i) {
    ASSERT_EQ(message_type(server.handle("REPORT client=1")), "ERR");
  }
  ASSERT_EQ(message_type(server.handle("HELLO there")), "ERR");

  const auto after = parse_stats(server.handle("STATS"));
  using namespace obs::names;
  EXPECT_EQ(delta(before, after, kServerReports), kGood);
  EXPECT_EQ(delta(before, after, kServerErrParse), kMalformed);
  EXPECT_EQ(delta(before, after, kServerErrUnsupported), 1.0);
  // lines = good + malformed + unsupported + the closing STATS itself.
  EXPECT_EQ(delta(before, after, kServerLines), kGood + kMalformed + 1 + 1);
  EXPECT_EQ(delta(before, after, kServerStats), 1.0);
  // The coordinator layer saw exactly the successful records.
  EXPECT_EQ(delta(before, after, kCoordReportsAccepted), kGood);
  EXPECT_EQ(delta(before, after, kCoordReportsRejected), 0.0);
  // Per-command latency histograms observed each ACKed report.
  EXPECT_EQ(delta(before, after,
                  std::string(kServerReportLatency) + ".count"),
            kGood + kMalformed);
}

TEST(ProtoServer, StatsAccountsForAllReportsInShardedStress) {
  // Acceptance check from ISSUE 2: after a multi-producer run against a
  // 4-shard pipeline, the STATS dump must account for 100% of submitted
  // lines: drained (applied to shard tables) + still queued + rejected.
  const auto dep = testing::tiny_deployment();
  geo::zone_grid grid(dep.proj(), 250.0);
  core::sharded_config cfg;
  cfg.coordinator.epochs.default_epoch_s = 120.0;
  cfg.num_shards = 4;
  core::sharded_coordinator coord(grid, dep.names(), cfg, 5);
  coordinator_server server(coord);
  const auto before = parse_stats(server.handle("STATS"));

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  constexpr int kMalformedEvery = 10;  // every 10th line is garbage
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      stats::rng_stream rng(100 + p);
      for (int i = 0; i < kPerProducer; ++i) {
        if (i % kMalformedEvery == 0) {
          EXPECT_EQ(message_type(server.handle("REPORT client=oops")), "ERR");
          continue;
        }
        measurement_report rep;
        rep.client_id = p + 1;
        rep.record = testing::make_record(
            1000.0 + i, dep.names()[0],
            dep.proj().to_lat_lon({250.0 * rng.uniform_int(-2, 2),
                                   250.0 * rng.uniform_int(-2, 2)}),
            trace::probe_kind::udp_burst, 1e6);
        EXPECT_EQ(server.handle(encode(rep)), "ACK");
      }
    });
  }
  for (auto& th : producers) th.join();
  coord.flush();

  const auto after = parse_stats(server.handle("STATS"));
  using namespace obs::names;
  constexpr double kSubmitted = kProducers * kPerProducer;
  const double rejected = delta(before, after, kServerErrParse);
  const double routed = delta(before, after, kShardedRoutedTotal);
  const double queued = delta(before, after, kQueueEnqueued) -
                        delta(before, after, kQueueDequeued);
  double drained = 0.0;
  for (int s = 0; s < 4; ++s) {
    drained += delta(before, after,
                     std::string(kShardPrefix) + std::to_string(s) +
                         "." + kShardDrainedSuffix);
  }
  EXPECT_EQ(rejected, kProducers * (kPerProducer / kMalformedEvery));
  EXPECT_EQ(routed, kSubmitted - rejected);
  // 100% accounting: every submitted line is drained, queued or rejected.
  EXPECT_EQ(drained + queued + rejected, kSubmitted);
  EXPECT_EQ(queued, 0.0);  // flushed
  // The server and pipeline layers agree with each other.
  EXPECT_EQ(delta(before, after, kServerReports), routed);
  EXPECT_EQ(delta(before, after, kCoordReportsAccepted), drained);
  // Work actually went through the batched drain path.
  EXPECT_GE(delta(before, after, kShardedDrainBatches), 4.0);
  EXPECT_EQ(delta(before, after,
                  std::string(kShardedDrainLatency) + ".count"),
            delta(before, after, kShardedDrainBatches));
}

}  // namespace
}  // namespace wiscape::proto

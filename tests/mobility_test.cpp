#include <gtest/gtest.h>

#include <cmath>

#include "cellnet/presets.h"
#include "mobility/fleet.h"
#include "mobility/route_gen.h"
#include "mobility/schedule.h"

namespace wiscape::mobility {
namespace {

const geo::lat_lon origin = cellnet::anchors::madison;

geo::polyline test_route() {
  return geo::straight_route(origin, geo::destination(origin, 90.0, 5000.0), 4);
}

TEST(FoldDistance, TriangleWave) {
  EXPECT_DOUBLE_EQ(fold_distance(0.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(fold_distance(50.0, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(fold_distance(100.0, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(fold_distance(150.0, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(fold_distance(200.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(fold_distance(250.0, 100.0), 50.0);
}

TEST(FoldDistance, DegenerateLength) {
  EXPECT_DOUBLE_EQ(fold_distance(42.0, 0.0), 0.0);
}

TEST(DaySchedule, OutOfServiceReturnsNullopt) {
  const auto route = test_route();
  const day_schedule sched(route, transit_bus_params(), stats::rng_stream(1),
                           0.0);
  EXPECT_FALSE(sched.fix_at(5.0 * 3600).has_value());   // before 6am
  EXPECT_TRUE(sched.fix_at(12.0 * 3600).has_value());   // midday
  EXPECT_FALSE(sched.fix_at(24.5 * 3600).has_value());  // next day
}

TEST(DaySchedule, PositionsStayOnRoute) {
  const auto route = test_route();
  const day_schedule sched(route, transit_bus_params(), stats::rng_stream(1),
                           0.0);
  for (double t = 6.5 * 3600; t < 23.0 * 3600; t += 1800.0) {
    const auto fix = sched.fix_at(t);
    ASSERT_TRUE(fix.has_value());
    // Distance from the route's straight line should be ~0.
    const double along = geo::distance_m(route.point_at(0.0), fix->pos);
    EXPECT_LE(along, route.length_m() + 1.0);
  }
}

TEST(DaySchedule, SpeedsWithinConfiguredRange) {
  const auto route = test_route();
  auto params = transit_bus_params();
  const day_schedule sched(route, params, stats::rng_stream(2), 0.0);
  int moving = 0, stopped = 0;
  for (double t = 6.1 * 3600; t < 23.9 * 3600; t += 60.0) {
    const auto fix = sched.fix_at(t);
    ASSERT_TRUE(fix.has_value());
    if (fix->speed_mps > 0.0) {
      ++moving;
      EXPECT_GE(fix->speed_mps, params.min_speed_mps - 1e-9);
      EXPECT_LE(fix->speed_mps, params.max_speed_mps + 1e-9);
    } else {
      ++stopped;
    }
  }
  EXPECT_GT(moving, 0);
  EXPECT_GT(stopped, 0);  // dwell at stops shows up
}

TEST(DaySchedule, NoStopsMeansNeverStopped) {
  const auto route = test_route();
  const day_schedule sched(route, drive_loop_params(), stats::rng_stream(3),
                           0.0);
  for (double t = 8.5 * 3600; t < 19.5 * 3600; t += 600.0) {
    const auto fix = sched.fix_at(t);
    ASSERT_TRUE(fix.has_value());
    EXPECT_GT(fix->speed_mps, 0.0);
  }
}

TEST(DaySchedule, MovementIsContinuous) {
  const auto route = test_route();
  const day_schedule sched(route, transit_bus_params(), stats::rng_stream(4),
                           0.0);
  auto prev = sched.fix_at(12.0 * 3600);
  ASSERT_TRUE(prev.has_value());
  for (double t = 12.0 * 3600 + 10.0; t < 12.5 * 3600; t += 10.0) {
    const auto fix = sched.fix_at(t);
    ASSERT_TRUE(fix.has_value());
    // In 10 s a bus moves at most max_speed * 10 ~ 130 m.
    EXPECT_LE(geo::distance_m(prev->pos, fix->pos), 140.0);
    prev = fix;
  }
}

TEST(DaySchedule, Validation) {
  const auto route = test_route();
  motion_params bad = transit_bus_params();
  bad.min_speed_mps = 0.0;
  EXPECT_THROW(day_schedule(route, bad, stats::rng_stream(1), 0.0),
               std::invalid_argument);
  motion_params inverted = transit_bus_params();
  inverted.service_start_s = 10 * 3600;
  inverted.service_end_s = 9 * 3600;
  EXPECT_THROW(day_schedule(route, inverted, stats::rng_stream(1), 0.0),
               std::invalid_argument);
}

TEST(Fleet, Validation) {
  EXPECT_THROW(fleet({}, 2, transit_bus_params(), stats::rng_stream(1)),
               std::invalid_argument);
  std::vector<geo::polyline> routes{test_route()};
  EXPECT_THROW(fleet(std::move(routes), 0, transit_bus_params(),
                     stats::rng_stream(1)),
               std::invalid_argument);
}

TEST(Fleet, RouteAssignmentDeterministicAndVarying) {
  std::vector<geo::polyline> routes;
  for (int i = 0; i < 6; ++i) {
    routes.push_back(geo::straight_route(
        origin, geo::destination(origin, i * 60.0, 3000.0), 2));
  }
  fleet f(std::move(routes), 3, transit_bus_params(), stats::rng_stream(9));
  // Deterministic.
  EXPECT_EQ(f.route_of(0, 0), f.route_of(0, 0));
  // Varies across days for at least one vehicle.
  bool varies = false;
  for (int day = 1; day < 20 && !varies; ++day) {
    varies = f.route_of(0, day) != f.route_of(0, 0);
  }
  EXPECT_TRUE(varies);
}

TEST(Fleet, FixDeterministicAcrossInstances) {
  auto make = [] {
    std::vector<geo::polyline> routes{test_route()};
    return fleet(std::move(routes), 2, transit_bus_params(),
                 stats::rng_stream(9));
  };
  fleet a = make();
  fleet b = make();
  const double t = 13.0 * 3600;
  const auto fa = a.fix_at(1, t);
  const auto fb = b.fix_at(1, t);
  ASSERT_TRUE(fa.has_value());
  ASSERT_TRUE(fb.has_value());
  EXPECT_DOUBLE_EQ(fa->pos.lat_deg, fb->pos.lat_deg);
  EXPECT_DOUBLE_EQ(fa->speed_mps, fb->speed_mps);
}

TEST(Fleet, CacheSurvivesDayChanges) {
  std::vector<geo::polyline> routes{test_route()};
  fleet f(std::move(routes), 1, transit_bus_params(), stats::rng_stream(9));
  const auto day0 = f.fix_at(0, 12.0 * 3600);
  const auto day1 = f.fix_at(0, 36.0 * 3600);
  const auto day0_again = f.fix_at(0, 12.0 * 3600);
  ASSERT_TRUE(day0.has_value());
  ASSERT_TRUE(day1.has_value());
  ASSERT_TRUE(day0_again.has_value());
  EXPECT_DOUBLE_EQ(day0->pos.lat_deg, day0_again->pos.lat_deg);
}

TEST(Fleet, OutOfRangeVehicleThrows) {
  std::vector<geo::polyline> routes{test_route()};
  fleet f(std::move(routes), 1, transit_bus_params(), stats::rng_stream(9));
  EXPECT_THROW(f.fix_at(5, 1000.0), std::out_of_range);
}

TEST(StaticNode, FixedPositionZeroSpeed) {
  static_node node{origin};
  const auto fix = node.fix_at(123.0);
  EXPECT_EQ(fix.pos, origin);
  EXPECT_DOUBLE_EQ(fix.speed_mps, 0.0);
  EXPECT_DOUBLE_EQ(fix.time_s, 123.0);
}

TEST(RouteGen, CityRoutesCountAndSpan) {
  geo::projection proj(origin);
  const auto routes =
      make_city_routes(proj, 8000.0, 8000.0, 10, stats::rng_stream(4));
  EXPECT_EQ(routes.size(), 10u);
  for (const auto& r : routes) {
    EXPECT_GE(r.waypoints().size(), 7u);
    EXPECT_GT(r.length_m(), 2000.0);
  }
}

TEST(RouteGen, CityRoutesStayInsideExtent) {
  geo::projection proj(origin);
  const auto routes =
      make_city_routes(proj, 8000.0, 6000.0, 8, stats::rng_stream(4));
  for (const auto& r : routes) {
    for (const auto& wp : r.waypoints()) {
      const auto p = proj.to_xy(wp);
      EXPECT_LE(std::abs(p.x_m), 4000.0 + 1.0);
      EXPECT_LE(std::abs(p.y_m), 3000.0 + 1.0);
    }
  }
}

TEST(RouteGen, Validation) {
  geo::projection proj(origin);
  EXPECT_THROW(make_city_routes(proj, 100.0, 100.0, 0, stats::rng_stream(1)),
               std::invalid_argument);
  EXPECT_THROW(make_city_routes(proj, -1.0, 100.0, 2, stats::rng_stream(1)),
               std::invalid_argument);
  EXPECT_THROW(make_drive_loop(proj, origin, 0.0), std::invalid_argument);
  EXPECT_THROW(
      make_road(origin, geo::destination(origin, 90.0, 100.0), 10.0,
                stats::rng_stream(1), 1),
      std::invalid_argument);
}

TEST(RouteGen, RoadApproximatesAnchors) {
  const auto end = geo::destination(origin, 90.0, 20000.0);
  const auto road = make_road(origin, end, 150.0, stats::rng_stream(3));
  // Lateral wiggle lengthens the road a little; it must stay the same order.
  EXPECT_NEAR(road.length_m(), 20000.0, 5000.0);
  EXPECT_GE(road.length_m(), 20000.0);
  EXPECT_NEAR(geo::distance_m(road.waypoints().front(), origin), 0.0, 1.0);
  EXPECT_NEAR(geo::distance_m(road.waypoints().back(), end), 0.0, 1.0);
}

TEST(RouteGen, DriveLoopStaysWithinRadius) {
  geo::projection proj(origin);
  const auto loop = make_drive_loop(proj, origin, 250.0);
  for (const auto& wp : loop.waypoints()) {
    EXPECT_LE(geo::distance_m(wp, origin), 250.0 * 1.2);
  }
  // Closed loop.
  EXPECT_NEAR(geo::distance_m(loop.waypoints().front(), loop.waypoints().back()),
              0.0, 1.0);
}

}  // namespace
}  // namespace wiscape::mobility

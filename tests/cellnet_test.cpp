#include <gtest/gtest.h>

#include <cmath>

#include "cellnet/cellular_network.h"
#include "cellnet/deployment.h"
#include "cellnet/presets.h"
#include "cellnet/temporal_field.h"
#include "stats/running_stats.h"
#include "stats/summary.h"
#include "test_util.h"

namespace wiscape::cellnet {
namespace {

TEST(TemporalField, ZeroMeanCorrectScale) {
  const temporal_field f(stats::rng_stream(3), 0.05, 3600.0);
  stats::running_stats rs;
  for (int i = 0; i < 40000; ++i) rs.add(f.at(i * 100.0));
  EXPECT_NEAR(rs.mean(), 0.0, 0.01);
  EXPECT_NEAR(rs.stddev(), 0.05, 0.015);
}

TEST(TemporalField, DeterministicGivenSeed) {
  const temporal_field a(stats::rng_stream(3), 0.05, 3600.0);
  const temporal_field b(stats::rng_stream(3), 0.05, 3600.0);
  EXPECT_DOUBLE_EQ(a.at(12345.0), b.at(12345.0));
}

TEST(TemporalField, CorrelationDecaysWithLag) {
  stats::rng_stream seeds(5);
  std::vector<double> v0, v_near, v_far;
  for (int k = 0; k < 300; ++k) {
    const temporal_field f(seeds.fork(static_cast<std::uint64_t>(k)), 1.0,
                           1000.0);
    v0.push_back(f.at(0.0));
    v_near.push_back(f.at(100.0));
    v_far.push_back(f.at(50000.0));
  }
  EXPECT_GT(stats::pearson_correlation(v0, v_near), 0.7);
  EXPECT_LT(std::abs(stats::pearson_correlation(v0, v_far)), 0.3);
}

TEST(TemporalField, Validation) {
  EXPECT_THROW(temporal_field(stats::rng_stream(1), -0.1, 100.0),
               std::invalid_argument);
  EXPECT_THROW(temporal_field(stats::rng_stream(1), 0.1, 0.0),
               std::invalid_argument);
}

TEST(CellularNetwork, BuildsTowerGridCoveringExtent) {
  const auto dep = testing::tiny_deployment();
  const auto& net = dep.network(0);
  EXPECT_GT(net.stations().size(), 4u);
  // Towers should pad slightly beyond the extent.
  double max_x = 0.0;
  for (const auto& s : net.stations()) {
    max_x = std::max(max_x, std::abs(s.pos.x_m));
  }
  EXPECT_GT(max_x, dep.area().width_m / 2.0 * 0.8);
}

TEST(CellularNetwork, DeterministicConditions) {
  const auto a = testing::tiny_deployment(3);
  const auto b = testing::tiny_deployment(3);
  const geo::xy p{300.0, -200.0};
  const auto ca = a.network(0).conditions_at(p, 5000.0);
  const auto cb = b.network(0).conditions_at(p, 5000.0);
  EXPECT_DOUBLE_EQ(ca.capacity_bps, cb.capacity_bps);
  EXPECT_DOUBLE_EQ(ca.rtt_s, cb.rtt_s);
  EXPECT_EQ(ca.serving_station, cb.serving_station);
}

TEST(CellularNetwork, CoverageInCoreOfExtent) {
  const auto dep = testing::tiny_deployment();
  int covered = 0;
  const int n = 100;
  stats::rng_stream r(8);
  for (int i = 0; i < n; ++i) {
    const geo::xy p{r.uniform(-1500.0, 1500.0), r.uniform(-1500.0, 1500.0)};
    if (dep.network(0).conditions_at(p, 1000.0).in_coverage) ++covered;
  }
  EXPECT_GT(covered, 90);
}

TEST(CellularNetwork, ConditionsFieldsAreSane) {
  const auto dep = testing::tiny_deployment();
  const auto lc = dep.network(0).conditions_at({100.0, 100.0}, 43200.0);
  ASSERT_TRUE(lc.in_coverage);
  EXPECT_GT(lc.capacity_bps, 50e3);
  EXPECT_LE(lc.capacity_bps, 3.1e6 * 1.2);
  EXPECT_GT(lc.rtt_s, 0.05);
  EXPECT_LT(lc.rtt_s, 1.0);
  EXPECT_GE(lc.loss_prob, 0.0);
  EXPECT_LE(lc.loss_prob, 0.5);
  EXPECT_GE(lc.utilization, 0.02);
  EXPECT_LE(lc.utilization, 0.97);
  EXPECT_GE(lc.serving_station, 0);
}

TEST(CellularNetwork, UtilizationBounded) {
  const auto dep = testing::tiny_deployment();
  stats::rng_stream r(4);
  for (int i = 0; i < 200; ++i) {
    const geo::xy p{r.uniform(-1800.0, 1800.0), r.uniform(-1800.0, 1800.0)};
    const double u = dep.network(0).utilization_at(p, r.uniform(0.0, 86400.0));
    EXPECT_GE(u, 0.02);
    EXPECT_LE(u, 0.97);
  }
}

TEST(CellularNetwork, HigherUtilizationMeansHigherRtt) {
  // Compare the same point's RTT at low vs artificially-evented high load.
  auto dep = testing::tiny_deployment();
  auto& net = dep.network(0);
  const geo::xy p{0.0, 0.0};
  const double t = 3.0 * 3600;  // early morning: low diurnal load
  const auto before = net.conditions_at(p, t);
  net.add_event({p, 800.0, t - 10.0, t + 10.0, 0.7});
  const auto during = net.conditions_at(p, t);
  ASSERT_TRUE(before.in_coverage);
  ASSERT_TRUE(during.in_coverage);
  EXPECT_GT(during.utilization, before.utilization + 0.3);
  EXPECT_GT(during.rtt_s, 1.3 * before.rtt_s);
  EXPECT_LT(during.capacity_bps, before.capacity_bps);
}

TEST(CellularNetwork, EventTapersWithDistance) {
  auto dep = testing::tiny_deployment();
  auto& net = dep.network(0);
  const double t0 = 3.0 * 3600;
  net.add_event({{0.0, 0.0}, 500.0, t0, t0 + 3600.0, 0.5});
  // Average over the event window so per-second burst noise and per-tower
  // drift do not mask the taper.
  auto mean_u = [&](geo::xy p) {
    double sum = 0.0;
    const int n = 60;
    for (int i = 0; i < n; ++i) sum += net.utilization_at(p, t0 + i * 60.0);
    return sum / n;
  };
  const double u_center = mean_u({0.0, 0.0});
  const double u_ring = mean_u({700.0, 0.0});
  const double u_far = mean_u({1900.0, 0.0});
  EXPECT_GT(u_center, u_ring + 0.05);
  // Far point may sit on a different tower with its own drift; just check
  // the event is not inflating it to the cap.
  EXPECT_LT(u_far, 0.9);
}

TEST(CellularNetwork, EventOnlyDuringWindow) {
  auto dep = testing::tiny_deployment();
  auto& net = dep.network(0);
  net.add_event({{0.0, 0.0}, 500.0, 1000.0, 2000.0, 0.5});
  const double u_before = net.utilization_at({0.0, 0.0}, 500.0);
  const double u_during = net.utilization_at({0.0, 0.0}, 1500.0);
  const double u_after = net.utilization_at({0.0, 0.0}, 2500.0);
  EXPECT_GT(u_during, u_before + 0.3);
  EXPECT_LT(std::abs(u_after - u_before), 0.2);
}

TEST(CellularNetwork, TroubleSpotCausesOutagesInside) {
  auto dep = testing::tiny_deployment();
  auto& net = dep.network(0);
  net.add_trouble_spot({{0.0, 0.0}, 400.0, 0.5, 0.2});
  int outages_in = 0, outages_out = 0;
  for (int w = 0; w < 200; ++w) {
    const double t = w * 600.0 + 1.0;
    if (net.in_outage({0.0, 0.0}, t)) ++outages_in;
    if (net.in_outage({3000.0, 3000.0}, t)) ++outages_out;
  }
  EXPECT_NEAR(outages_in, 100, 35);
  EXPECT_EQ(outages_out, 0);
}

TEST(CellularNetwork, OutageWindowsAreStable) {
  auto dep = testing::tiny_deployment();
  auto& net = dep.network(0);
  net.add_trouble_spot({{0.0, 0.0}, 400.0, 0.5, 0.2});
  // All queries within the same 600 s window agree.
  for (int w = 0; w < 50; ++w) {
    const double base = w * 600.0;
    const bool first = net.in_outage({0.0, 0.0}, base + 1.0);
    EXPECT_EQ(net.in_outage({0.0, 0.0}, base + 300.0), first);
    EXPECT_EQ(net.in_outage({0.0, 0.0}, base + 599.0), first);
  }
}

TEST(CellularNetwork, Validation) {
  operator_config cfg;
  EXPECT_THROW(cellular_network(cfg, extent{0.0, 100.0}),
               std::invalid_argument);
  cfg.tower_spacing_m = 0.0;
  EXPECT_THROW(cellular_network(cfg, extent{100.0, 100.0}),
               std::invalid_argument);
}

TEST(Deployment, LookupByNameAndIndex) {
  const auto dep = testing::tiny_deployment();
  EXPECT_EQ(dep.size(), 2u);
  EXPECT_EQ(dep.network("NetB").config().name, "NetB");
  EXPECT_EQ(dep.network(1).config().name, "NetC");
  EXPECT_EQ(dep.index_of("NetC"), 1);
  EXPECT_EQ(dep.index_of("NetZ"), -1);
  EXPECT_THROW(dep.network("NetZ"), std::invalid_argument);
  EXPECT_THROW(dep.network(5), std::out_of_range);
}

TEST(Deployment, RejectsDuplicateNames) {
  geo::projection proj(anchors::madison);
  std::vector<operator_config> ops(2);
  ops[0].name = "NetB";
  ops[1].name = "NetB";
  EXPECT_THROW(deployment(proj, extent{1000.0, 1000.0}, std::move(ops)),
               std::invalid_argument);
}

TEST(Deployment, ConditionsAtGeographicFix) {
  const auto dep = testing::tiny_deployment();
  const auto lc = dep.conditions_at(0, anchors::madison, 1000.0);
  EXPECT_TRUE(lc.in_coverage);
}

TEST(Presets, OperatorCountsMatchTable2) {
  EXPECT_EQ(operator_count(region_preset::madison), 3);
  EXPECT_EQ(operator_count(region_preset::new_jersey), 2);
  EXPECT_EQ(operator_count(region_preset::corridor), 2);
  EXPECT_EQ(operator_count(region_preset::segment), 3);
}

TEST(Presets, MadisonDeploymentShape) {
  const auto dep = make_deployment(region_preset::madison, 42);
  EXPECT_EQ(dep.size(), 3u);
  EXPECT_EQ(dep.names(),
            (std::vector<std::string>{"NetA", "NetB", "NetC"}));
  // ~155 sq km.
  EXPECT_NEAR(dep.area().width_m * dep.area().height_m, 155e6, 4e6);
}

TEST(Presets, OperatorsHaveDistinctSeeds) {
  const auto ops = preset_operators(region_preset::madison, 42);
  EXPECT_NE(ops[0].seed, ops[1].seed);
  EXPECT_NE(ops[1].seed, ops[2].seed);
  // And differ from the segment preset's.
  const auto seg = preset_operators(region_preset::segment, 42);
  EXPECT_NE(ops[0].seed, seg[0].seed);
}

TEST(Presets, NjDriftFasterThanMadison) {
  const auto wi = preset_operators(region_preset::madison, 42);
  const auto nj = preset_operators(region_preset::new_jersey, 42);
  EXPECT_LT(nj[0].load.drift_tau_s, wi[1].load.drift_tau_s);
  EXPECT_GT(nj[0].load.drift_sigma, wi[1].load.drift_sigma);
}

TEST(Presets, DeterministicAcrossCalls) {
  const auto a = make_deployment(region_preset::new_jersey, 7);
  const auto b = make_deployment(region_preset::new_jersey, 7);
  const geo::xy p{500.0, 500.0};
  EXPECT_DOUBLE_EQ(a.network(0).conditions_at(p, 100.0).capacity_bps,
                   b.network(0).conditions_at(p, 100.0).capacity_bps);
}

TEST(WifiComparison, DeploymentPairsCellularWithMesh) {
  const auto dep = make_wifi_comparison_deployment(42);
  ASSERT_EQ(dep.size(), 2u);
  EXPECT_EQ(dep.names()[0], "NetB");
  EXPECT_EQ(dep.names()[1], "WiFiMesh");
  // The mesh is much denser than the cellular grid.
  EXPECT_GT(dep.network("WiFiMesh").stations().size(),
            4 * dep.network("NetB").stations().size());
}

TEST(WifiComparison, MeshChurnsFasterAndHarder) {
  const auto wifi = wifi_mesh_config(42);
  const auto cell = preset_operators(region_preset::madison, 42)[1];
  EXPECT_GT(wifi.load.drift_sigma, 3.0 * cell.load.drift_sigma);
  EXPECT_LT(wifi.load.drift_tau_s, cell.load.drift_tau_s / 10.0);
  EXPECT_GT(wifi.fading_sigma, 2.0 * cell.fading_sigma);
}

TEST(WifiComparison, MeshUtilizationVariesMoreOverMinutes) {
  const auto dep = make_wifi_comparison_deployment(42);
  stats::running_stats cell_u, wifi_u;
  const geo::xy p{300.0, 300.0};
  for (int i = 0; i < 240; ++i) {
    const double t = 10.0 * 3600 + i * 30.0;
    cell_u.add(dep.network(0).utilization_at(p, t));
    wifi_u.add(dep.network(1).utilization_at(p, t));
  }
  EXPECT_GT(wifi_u.stddev(), 2.0 * cell_u.stddev());
}

}  // namespace
}  // namespace wiscape::cellnet


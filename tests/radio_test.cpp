#include <gtest/gtest.h>

#include <cmath>

#include "radio/fading.h"
#include "radio/propagation.h"
#include "radio/technology.h"
#include "stats/running_stats.h"
#include "stats/summary.h"

namespace wiscape::radio {
namespace {

TEST(Technology, ProfilesMatchTable1) {
  const auto& hspa = profile_for(technology::hspa);
  EXPECT_DOUBLE_EQ(hspa.downlink_cap_bps, 7.2e6);
  EXPECT_DOUBLE_EQ(hspa.uplink_cap_bps, 1.2e6);
  const auto& evdo = profile_for(technology::evdo_rev_a);
  EXPECT_DOUBLE_EQ(evdo.downlink_cap_bps, 3.1e6);
  EXPECT_DOUBLE_EQ(evdo.uplink_cap_bps, 1.8e6);
}

TEST(Technology, FromStringRoundTrip) {
  EXPECT_EQ(technology_from_string("hspa"), technology::hspa);
  EXPECT_EQ(technology_from_string("evdo_rev_a"), technology::evdo_rev_a);
  EXPECT_THROW(technology_from_string("lte"), std::invalid_argument);
}

TEST(Pathloss, MonotoneInDistance) {
  const pathloss_model pl;
  double prev = pl.loss_db(1.0);
  for (double d : {10.0, 100.0, 1000.0, 10000.0}) {
    const double loss = pl.loss_db(d);
    EXPECT_GT(loss, prev);
    prev = loss;
  }
}

TEST(Pathloss, TenXDistanceAddsTenNdB) {
  const pathloss_model pl{.pl0_db = 38.0, .exponent = 3.3, .d0_m = 1.0};
  EXPECT_NEAR(pl.loss_db(1000.0) - pl.loss_db(100.0), 33.0, 1e-9);
}

TEST(Pathloss, NearFieldClampsAtReference) {
  const pathloss_model pl;
  EXPECT_DOUBLE_EQ(pl.loss_db(0.01), pl.loss_db(pl.d0_m));
}

TEST(Shadowing, ZeroMeanUnitScale) {
  const shadowing_field f(stats::rng_stream(3), 6.0, 500.0);
  stats::running_stats rs;
  stats::rng_stream r(9);
  for (int i = 0; i < 20000; ++i) {
    rs.add(f.at({r.uniform(-20000.0, 20000.0), r.uniform(-20000.0, 20000.0)}));
  }
  EXPECT_NEAR(rs.mean(), 0.0, 0.4);
  EXPECT_NEAR(rs.stddev(), 6.0, 1.0);
}

TEST(Shadowing, DeterministicGivenSeed) {
  const shadowing_field a(stats::rng_stream(3), 6.0, 500.0);
  const shadowing_field b(stats::rng_stream(3), 6.0, 500.0);
  EXPECT_DOUBLE_EQ(a.at({123.0, -456.0}), b.at({123.0, -456.0}));
}

TEST(Shadowing, NearbyPointsCorrelatedFarPointsNot) {
  const double corr_m = 800.0;
  stats::rng_stream seeds(1);
  // Average correlation over many field realizations.
  std::vector<double> v0, v_near, v_far;
  for (int k = 0; k < 200; ++k) {
    const shadowing_field f(seeds.fork(static_cast<std::uint64_t>(k)), 6.0,
                            corr_m);
    v0.push_back(f.at({0.0, 0.0}));
    v_near.push_back(f.at({80.0, 0.0}));
    v_far.push_back(f.at({8000.0, 0.0}));
  }
  EXPECT_GT(stats::pearson_correlation(v0, v_near), 0.8);
  EXPECT_LT(std::abs(stats::pearson_correlation(v0, v_far)), 0.3);
}

TEST(Shadowing, Validation) {
  EXPECT_THROW(shadowing_field(stats::rng_stream(1), -1.0, 100.0),
               std::invalid_argument);
  EXPECT_THROW(shadowing_field(stats::rng_stream(1), 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(shadowing_field(stats::rng_stream(1), 1.0, 100.0, 0),
               std::invalid_argument);
}

TEST(CompositeShadowing, SumsComponents) {
  const composite_shadowing cs(stats::rng_stream(7), 5.0, 1500.0, 1.0, 100.0);
  const geo::xy p{321.0, 654.0};
  EXPECT_DOUBLE_EQ(cs.at(p), cs.macro().at(p) + cs.micro().at(p));
}

TEST(LinkBudget, ReceivedPowerArithmetic) {
  EXPECT_DOUBLE_EQ(received_power_dbm(43.0, 130.0, 3.0), -84.0);
  EXPECT_DOUBLE_EQ(sinr_db(-84.0, -96.0), 12.0);
}

TEST(SpectralEfficiency, TracksShannonAndCaps) {
  // At 0 dB SINR Shannon gives 1 bps/Hz.
  EXPECT_NEAR(spectral_efficiency(0.0, 1.0), 1.0, 1e-9);
  // Efficiency scales linearly.
  EXPECT_NEAR(spectral_efficiency(0.0, 0.5), 0.5, 1e-9);
  // Very high SINR hits the cap.
  EXPECT_DOUBLE_EQ(spectral_efficiency(60.0, 1.0, 4.8), 4.8);
  // Deep fade: tiny but nonnegative.
  EXPECT_GE(spectral_efficiency(-30.0, 1.0), 0.0);
  EXPECT_LT(spectral_efficiency(-30.0, 1.0), 0.01);
}

TEST(Fading, MeanOneOverTime) {
  fading_process f(stats::rng_stream(5), 0.3, 2.0);
  stats::running_stats rs;
  for (int i = 0; i < 50000; ++i) rs.add(f.gain_at(i * 0.5));
  EXPECT_NEAR(rs.mean(), 1.0, 0.05);
}

TEST(Fading, AlwaysPositive) {
  fading_process f(stats::rng_stream(5), 0.5, 1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(f.gain_at(i * 0.1), 0.0);
}

TEST(Fading, CorrelatedWithinTauDecorrelatedBeyond) {
  // Sample pairs (g(t), g(t+dt)) across many independent processes.
  std::vector<double> a_short, b_short, a_long, b_long;
  stats::rng_stream seeds(2);
  for (int k = 0; k < 400; ++k) {
    fading_process f(seeds.fork(static_cast<std::uint64_t>(k)), 0.3, 2.0);
    const double g0 = f.gain_at(0.0);
    const double g1 = f.gain_at(0.2);    // well inside tau
    const double g2 = f.gain_at(40.0);   // many taus later
    a_short.push_back(g0);
    b_short.push_back(g1);
    a_long.push_back(g0);
    b_long.push_back(g2);
  }
  EXPECT_GT(stats::pearson_correlation(a_short, b_short), 0.7);
  EXPECT_LT(std::abs(stats::pearson_correlation(a_long, b_long)), 0.25);
}

TEST(Fading, ZeroSigmaIsConstantOne) {
  fading_process f(stats::rng_stream(5), 0.0, 1.0);
  EXPECT_NEAR(f.gain_at(0.0), 1.0, 1e-12);
  EXPECT_NEAR(f.gain_at(100.0), 1.0, 1e-12);
}

TEST(Fading, Validation) {
  EXPECT_THROW(fading_process(stats::rng_stream(1), -0.1, 1.0),
               std::invalid_argument);
  EXPECT_THROW(fading_process(stats::rng_stream(1), 0.1, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace wiscape::radio

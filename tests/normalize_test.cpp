// Device categories and cross-category normalization (paper Sec 3.3).
#include <gtest/gtest.h>

#include "core/normalize.h"
#include "probe/engine.h"
#include "stats/summary.h"
#include "test_util.h"

namespace wiscape::core {
namespace {

const geo::lat_lon here = cellnet::anchors::madison;

trace::measurement_record device_record(double t, geo::lat_lon pos,
                                        const char* device, double bps) {
  auto r = testing::make_record(t, "NetB", pos,
                                trace::probe_kind::udp_burst, bps);
  r.device = device;
  return r;
}

TEST(DeviceProfile, PhoneProbesSlowerThanLaptop) {
  const auto dep = testing::tiny_deployment();
  probe::probe_engine eng(dep, 4);
  const mobility::gps_fix fix{dep.proj().to_lat_lon({150.0, -150.0}), 0.0,
                              12.0 * 3600};
  stats::running_stats laptop, phone;
  for (int i = 0; i < 20; ++i) {
    mobility::gps_fix f = fix;
    f.time_s += i * 300.0;
    const auto l = eng.udp_probe(0, f, {}, probe::laptop_device());
    const auto p = eng.udp_probe(0, f, {}, probe::phone_device());
    if (l.success) laptop.add(l.throughput_bps);
    if (p.success) phone.add(p.throughput_bps);
  }
  ASSERT_GT(laptop.count(), 15u);
  ASSERT_GT(phone.count(), 15u);
  EXPECT_LT(phone.mean(), laptop.mean());
  EXPECT_GT(phone.mean(), 0.5 * laptop.mean());  // degraded, not dead
}

TEST(DeviceProfile, RecordsCarryCategory) {
  const auto dep = testing::tiny_deployment();
  probe::probe_engine eng(dep, 4);
  const mobility::gps_fix fix{dep.proj().to_lat_lon({150.0, -150.0}), 0.0,
                              12.0 * 3600};
  EXPECT_EQ(eng.ping_probe(0, fix).device, "laptop");
  EXPECT_EQ(eng.ping_probe(0, fix, {}, probe::phone_device()).device, "phone");
}

TEST(DeviceProfile, PhoneRssiReadsLower) {
  const auto dep = testing::tiny_deployment();
  probe::probe_engine eng(dep, 4);
  const mobility::gps_fix fix{dep.proj().to_lat_lon({150.0, -150.0}), 0.0,
                              12.0 * 3600};
  stats::running_stats laptop, phone;
  for (int i = 0; i < 30; ++i) {
    mobility::gps_fix f = fix;
    f.time_s += i * 60.0;
    laptop.add(eng.ping_probe(0, f).rssi_dbm);
    phone.add(eng.ping_probe(0, f, {}, probe::phone_device()).rssi_dbm);
  }
  EXPECT_NEAR(laptop.mean() - phone.mean(), 2.5, 1.2);
}

TEST(Normalize, RecoversImposedScale) {
  const geo::zone_grid grid(geo::projection(here), 250.0);
  trace::dataset ds;
  stats::rng_stream r(5);
  // Three zones; phone measures exactly 0.7x the laptop truth.
  for (int z = 0; z < 3; ++z) {
    const auto pos = geo::destination(here, 90.0, z * 3000.0);
    const double truth = 1e6 + z * 4e5;
    for (int i = 0; i < 50; ++i) {
      ds.add(device_record(i, pos, "laptop", r.normal(truth, truth * 0.05)));
      ds.add(device_record(i, pos, "phone",
                           r.normal(0.7 * truth, truth * 0.05)));
    }
  }
  const auto est = estimate_category_scale(
      ds, grid, trace::metric::udp_throughput_bps, "phone", "laptop");
  EXPECT_EQ(est.zones_used, 3u);
  EXPECT_NEAR(est.scale, 1.0 / 0.7, 0.08);
  EXPECT_LT(est.ratio_spread, 0.1);
}

TEST(Normalize, NoSharedZonesReturnsIdentity) {
  const geo::zone_grid grid(geo::projection(here), 250.0);
  trace::dataset ds;
  for (int i = 0; i < 50; ++i) {
    ds.add(device_record(i, here, "laptop", 1e6));
  }
  const auto est = estimate_category_scale(
      ds, grid, trace::metric::udp_throughput_bps, "phone", "laptop");
  EXPECT_EQ(est.zones_used, 0u);
  EXPECT_DOUBLE_EQ(est.scale, 1.0);
}

TEST(Normalize, ApplyScaleLiftsAndRelabels) {
  trace::dataset ds;
  ds.add(device_record(0.0, here, "phone", 700e3));
  ds.add(device_record(1.0, here, "laptop", 1e6));
  const auto out = apply_category_scale(
      ds, trace::metric::udp_throughput_bps, "phone", 1.0 / 0.7, "laptop");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.records()[0].device, "laptop");
  EXPECT_NEAR(out.records()[0].throughput_bps, 1e6, 1e3);
  EXPECT_NEAR(out.records()[1].throughput_bps, 1e6, 1.0);  // untouched
}

TEST(Normalize, EndToEndProbeCategoriesMerge) {
  // Collect both categories at one spot, estimate the scale from the data,
  // lift the phone samples, and check the merged mean matches laptop-only.
  const auto dep = testing::tiny_deployment();
  probe::probe_engine eng(dep, 4);
  const auto loc = dep.proj().to_lat_lon({150.0, -150.0});
  trace::dataset ds;
  for (int i = 0; i < 60; ++i) {
    const mobility::gps_fix f{loc, 0.0, 8.0 * 3600 + i * 300.0};
    ds.add(eng.udp_probe(0, f, {}, probe::laptop_device()));
    ds.add(eng.udp_probe(0, f, {}, probe::phone_device()));
  }
  const geo::zone_grid grid(dep.proj(), 250.0);
  const auto est = estimate_category_scale(
      ds, grid, trace::metric::udp_throughput_bps, "phone", "laptop");
  ASSERT_GT(est.zones_used, 0u);
  EXPECT_GT(est.scale, 1.0);  // phones read low, so the lift is upward

  const auto lifted = apply_category_scale(
      ds, trace::metric::udp_throughput_bps, "phone", est.scale, "laptop");
  // After lifting, all records are one category and their mean matches the
  // laptop-only mean within a few percent.
  std::vector<double> laptop_only, merged;
  for (const auto& r : ds.records()) {
    if (r.success && r.device == "laptop") {
      laptop_only.push_back(r.throughput_bps);
    }
  }
  for (const auto& r : lifted.records()) {
    if (r.success) merged.push_back(r.throughput_bps);
  }
  EXPECT_NEAR(stats::mean(merged), stats::mean(laptop_only),
              stats::mean(laptop_only) * 0.05);
}

}  // namespace
}  // namespace wiscape::core

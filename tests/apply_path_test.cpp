// The dense interned estimate store's load-bearing promise (ISSUE 4): the
// open-addressing zone_table with O(1) epoch fast-forward publishes
// bit-for-bit the estimates, alerts and open-epoch state of the seed's
// string-keyed unordered_map walk -- including across huge sample gaps and
// mid-stream epoch-duration changes. The seed implementation is frozen
// verbatim below as `legacy::` and used as the reference.
#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "cellnet/presets.h"
#include "core/coordinator.h"
#include "core/network_interner.h"
#include "core/zone_table.h"
#include "geo/zone_grid.h"
#include "obs/names.h"
#include "obs/registry.h"
#include "stats/rng.h"
#include "trace/record.h"

namespace wiscape::core {
namespace {

// ---------------------------------------------------------------------------
// The seed zone_table (pre-ISSUE-4), frozen verbatim: unordered_map keyed by
// the string estimate_key, one loop iteration per elapsed epoch.
namespace legacy {

class zone_table {
 public:
  explicit zone_table(double change_sigma_factor = 2.0)
      : sigma_factor_(change_sigma_factor) {}

  void add_sample(const estimate_key& key, double time_s, double value,
                  double epoch_duration_s) {
    if (!(epoch_duration_s > 0.0)) {
      throw std::invalid_argument("epoch duration must be positive");
    }
    stream& s = streams_[key];
    if (s.open_start_s < 0.0) {
      s.open_start_s =
          std::floor(time_s / epoch_duration_s) * epoch_duration_s;
    }
    while (time_s >= s.open_start_s + epoch_duration_s) {
      rollover(key, s);
      s.open_start_s += epoch_duration_s;
    }
    s.open.add(value);
  }

  std::optional<epoch_estimate> latest(const estimate_key& key) const {
    const auto it = streams_.find(key);
    if (it == streams_.end() || it->second.frozen.empty()) return std::nullopt;
    return it->second.frozen.back();
  }

  std::size_t open_epoch_samples(const estimate_key& key) const {
    const auto it = streams_.find(key);
    return it == streams_.end() ? 0 : it->second.open.count();
  }

  std::vector<epoch_estimate> history(const estimate_key& key) const {
    const auto it = streams_.find(key);
    return it == streams_.end() ? std::vector<epoch_estimate>{}
                                : it->second.frozen;
  }

  const std::vector<change_alert>& alerts() const noexcept { return alerts_; }

  std::vector<estimate_key> keys() const {
    std::vector<estimate_key> out;
    out.reserve(streams_.size());
    for (const auto& [k, _] : streams_) out.push_back(k);
    return out;
  }

  void restore(const estimate_key& key, const epoch_estimate& estimate) {
    streams_[key].frozen.push_back(estimate);
  }

 private:
  struct stream {
    stats::running_stats open;
    double open_start_s = -1.0;
    std::vector<epoch_estimate> frozen;
  };

  void rollover(const estimate_key& key, stream& s) {
    if (s.open.empty()) return;
    epoch_estimate e;
    e.epoch_start_s = s.open_start_s;
    e.mean = s.open.mean();
    e.stddev = s.open.stddev();
    e.samples = s.open.count();
    if (!s.frozen.empty()) {
      const epoch_estimate& prev = s.frozen.back();
      const double threshold = sigma_factor_ * prev.stddev;
      if (threshold > 0.0 && std::abs(e.mean - prev.mean) > threshold) {
        alerts_.push_back(
            {key, e.epoch_start_s, prev.mean, e.mean, prev.stddev});
      }
    }
    s.frozen.push_back(e);
    s.open.reset();
  }

  double sigma_factor_;
  std::unordered_map<estimate_key, stream, estimate_key_hash> streams_;
  std::vector<change_alert> alerts_;
};

}  // namespace legacy

// ---------------------------------------------------------------------------

struct apply {
  estimate_key key;
  double time_s;
  double value;
  double duration_s;
};

void expect_same_estimate(const epoch_estimate& a, const epoch_estimate& b,
                          const char* what) {
  EXPECT_EQ(a.epoch_start_s, b.epoch_start_s) << what;
  EXPECT_EQ(a.mean, b.mean) << what;
  EXPECT_EQ(a.stddev, b.stddev) << what;
  EXPECT_EQ(a.samples, b.samples) << what;
}

// Replays a corpus through both implementations and requires bit-for-bit
// identical observable state: per-key history, latest, open-epoch sample
// counts, and the alert stream (content and order).
void expect_equivalent(const std::vector<apply>& corpus,
                       const std::vector<std::string>& networks = {}) {
  legacy::zone_table want(2.0);
  zone_table got(2.0, networks);
  for (const auto& a : corpus) {
    want.add_sample(a.key, a.time_s, a.value, a.duration_s);
    got.add_sample(a.key, a.time_s, a.value, a.duration_s);
  }
  const auto keys = want.keys();
  EXPECT_EQ(keys.size(), got.keys().size());
  for (const auto& key : keys) {
    const auto wh = want.history(key);
    const auto gh = got.history(key);
    ASSERT_EQ(wh.size(), gh.size()) << key.network;
    for (std::size_t i = 0; i < wh.size(); ++i) {
      expect_same_estimate(wh[i], gh[i], key.network.c_str());
    }
    EXPECT_EQ(want.open_epoch_samples(key), got.open_epoch_samples(key));
    const auto wl = want.latest(key);
    const auto gl = got.latest(key);
    ASSERT_EQ(wl.has_value(), gl.has_value());
    if (wl) expect_same_estimate(*wl, *gl, "latest");
  }
  const auto& wa = want.alerts();
  const auto& ga = got.alerts();
  ASSERT_EQ(wa.size(), ga.size());
  for (std::size_t i = 0; i < wa.size(); ++i) {
    EXPECT_EQ(wa[i].key, ga[i].key);
    EXPECT_EQ(wa[i].epoch_start_s, ga[i].epoch_start_s);
    EXPECT_EQ(wa[i].previous_mean, ga[i].previous_mean);
    EXPECT_EQ(wa[i].new_mean, ga[i].new_mean);
    EXPECT_EQ(wa[i].previous_stddev, ga[i].previous_stddev);
  }
}

estimate_key key_of(int ix, int iy, const std::string& net,
                    trace::metric m = trace::metric::tcp_throughput_bps) {
  return {geo::zone_id{ix, iy}, net, m};
}

// ---------------------------------------------------------------------------
// Randomized equivalence corpora

TEST(ApplyPathEquivalence, RandomizedStreamsMatchSeedBitForBit) {
  for (const std::uint64_t seed : {7ull, 21ull, 99ull}) {
    stats::rng_stream rng(seed);
    const std::vector<std::string> nets = {"NetB", "NetC", "NetD"};
    const trace::metric metrics[] = {trace::metric::tcp_throughput_bps,
                                     trace::metric::rtt_s,
                                     trace::metric::loss_rate};
    std::vector<apply> corpus;
    double t = 1000.0;
    for (int i = 0; i < 4000; ++i) {
      // Mostly small forward steps, occasionally a multi-epoch gap.
      t += rng.chance(0.02) ? 120.0 * static_cast<double>(rng.uniform_int(3, 40))
                            : static_cast<double>(rng.uniform_int(0, 30));
      corpus.push_back({key_of(rng.uniform_int(-2, 2), rng.uniform_int(-2, 2),
                               nets[static_cast<std::size_t>(
                                   rng.uniform_int(0, 2))],
                               metrics[static_cast<std::size_t>(
                                   rng.uniform_int(0, 2))]),
                        t, rng.normal(1.5e6, 4e5), 120.0});
    }
    expect_equivalent(corpus, {"NetB", "NetC"});
  }
}

TEST(ApplyPathEquivalence, MidStreamDurationChangesMatchSeed) {
  // Epoch re-estimation changes a zone's duration while streams are mid
  // epoch; the fast-forward must reproduce the seed's iterated boundaries,
  // which are NOT multiples of the new duration.
  stats::rng_stream rng(13);
  std::vector<apply> corpus;
  double t = 10.0;
  double d = 120.0;
  for (int i = 0; i < 3000; ++i) {
    if (i % 250 == 249) d = (d == 120.0) ? 100.0 : (d == 100.0 ? 360.0 : 120.0);
    t += rng.chance(0.03) ? d * static_cast<double>(rng.uniform_int(2, 25))
                          : static_cast<double>(rng.uniform_int(0, 20));
    corpus.push_back(
        {key_of(0, 0, rng.chance(0.5) ? "NetB" : "NetC"), t,
         rng.normal(10.0, 3.0), d});
  }
  expect_equivalent(corpus, {"NetB", "NetC"});
}

TEST(ApplyPathEquivalence, UnknownNetworksAndOutOfOrderTimesMatchSeed) {
  // Operators never passed to the constructor intern on first sight; stale
  // (backwards) timestamps just land in the open epoch, as in the seed.
  std::vector<apply> corpus;
  const std::vector<std::string> nets = {"NetB", "mvno-x", "roam/7", ""};
  double t = 500.0;
  stats::rng_stream rng(3);
  for (int i = 0; i < 1200; ++i) {
    t += static_cast<double>(rng.uniform_int(-40, 60));
    corpus.push_back({key_of(1, -1, nets[static_cast<std::size_t>(
                                 rng.uniform_int(0, 3))]),
                      t, rng.normal(5.0, 1.0), 60.0});
  }
  expect_equivalent(corpus, {"NetB"});
}

// The exact boundary-pinning case from the design note: duration change
// 120 -> 100 leaves the epoch boundary at 920 for a sample at t=1000 (the
// iterated walk from 120), not at floor(1000/100)*100 = 1000.
TEST(ApplyPathEquivalence, DurationChangeBoundaryIsIteratedNotSnapped) {
  const auto key = key_of(0, 0, "NetB");
  std::vector<apply> corpus = {
      {key, 10.0, 1.0, 120.0},    // opens epoch [0, 120)
      {key, 130.0, 2.0, 120.0},   // rollover; open epoch starts at 120
      {key, 1000.0, 3.0, 100.0},  // duration changed: walk 120 -> 920
      {key, 1020.0, 4.0, 100.0},  // rollover publishes [920, 1020)
  };
  expect_equivalent(corpus);

  zone_table t(2.0);
  for (const auto& a : corpus) t.add_sample(a.key, a.time_s, a.value, a.duration_s);
  const auto hist = t.history(key);
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0].epoch_start_s, 0.0);
  EXPECT_EQ(hist[1].epoch_start_s, 120.0);
  EXPECT_EQ(hist[2].epoch_start_s, 920.0);  // not 1000: no floor-snapping
}

// ---------------------------------------------------------------------------
// Gap fast-forward

TEST(ApplyPathGap, MillionEpochGapMatchesSeedBitForBit) {
  const auto key = key_of(3, -4, "NetB", trace::metric::rtt_s);
  const double d = 60.0;
  std::vector<apply> corpus;
  stats::rng_stream rng(17);
  double t = 120.0;
  for (int i = 0; i < 50; ++i) {
    t += static_cast<double>(rng.uniform_int(0, 15));
    corpus.push_back({key, t, rng.normal(0.1, 0.02), d});
  }
  t += 1e6 * d;  // a million empty epochs
  for (int i = 0; i < 50; ++i) {
    t += static_cast<double>(rng.uniform_int(0, 15));
    corpus.push_back({key, t, rng.normal(0.4, 0.02), d});
  }
  expect_equivalent(corpus, {"NetB"});
}

TEST(ApplyPathGap, TrillionEpochGapAppliesInConstantTime) {
  // 10^12 elapsed epochs would take hours with the seed's per-epoch loop;
  // the fused jump must land on the exact same boundary the iterated walk
  // would reach (all quantities are exactly representable: integral d, and
  // the boundary stays a multiple of d below 2^53).
  zone_table t(2.0, {"NetB"});
  const auto key = key_of(0, 0, "NetB");
  const double d = 60.0;
  t.add_sample(key, 30.0, 1.0, d);  // opens epoch [0, 60)
  const double far = 1e12 * d + 30.0;
  const auto t0 = std::chrono::steady_clock::now();
  t.add_sample(key, far, 2.0, d);
  const double took =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(took, 0.5) << "gap apply was not O(1)";
  // Roll the far epoch over and check its start: the open epoch containing
  // `far` must start at the closed-form boundary floor(far/d)*d.
  t.add_sample(key, far + d, 3.0, d);
  const auto hist = t.history(key);
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(hist[0].epoch_start_s, 0.0);
  EXPECT_EQ(hist[1].epoch_start_s, std::floor(far / d) * d);
  EXPECT_EQ(hist[1].samples, 1u);
}

TEST(ApplyPathGap, GapFastForwardCounterIncrements) {
  auto& gap = obs::registry::global().get_counter(
      obs::names::kZoneTableGapFastForwards);
  const std::uint64_t before = gap.value();
  zone_table t(2.0);
  const auto key = key_of(0, 0, "NetB");
  t.add_sample(key, 0.0, 1.0, 60.0);
  t.add_sample(key, 60.0 * 5000.0, 2.0, 60.0);
  EXPECT_GE(gap.value(), before + 1);
}

// ---------------------------------------------------------------------------
// network_interner

TEST(NetworkInterner, FirstSeenOrderAndStability) {
  network_interner in;
  EXPECT_EQ(in.size(), 0u);
  EXPECT_EQ(in.id_of("NetB"), 0u);
  EXPECT_EQ(in.id_of("NetC"), 1u);
  EXPECT_EQ(in.id_of("NetB"), 0u);  // stable on re-lookup
  EXPECT_EQ(in.try_id("NetC"), 1u);
  EXPECT_EQ(in.try_id("NetZ"), network_interner::npos);
  EXPECT_EQ(in.size(), 2u);
  EXPECT_EQ(in.name_of(0), "NetB");
  EXPECT_EQ(in.name_of(1), "NetC");
  EXPECT_THROW(in.name_of(2), std::out_of_range);
}

TEST(NetworkInterner, ConstructorSeedsFixedPrefixAndCollapsesDuplicates) {
  const std::vector<std::string> nets = {"NetB", "NetC", "NetB", "NetD"};
  network_interner a(nets), b(nets);
  // Identical assignment on both (the cross-shard agreement the wire cache
  // depends on); the duplicate collapses to its first id.
  for (const auto& n : nets) EXPECT_EQ(a.try_id(n), b.try_id(n));
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.try_id("NetB"), 0u);
  EXPECT_EQ(a.try_id("NetC"), 1u);
  EXPECT_EQ(a.try_id("NetD"), 2u);
}

TEST(NetworkInterner, CapacityCapThrows) {
  network_interner in;
  for (std::size_t i = 0; i < network_interner::max_networks; ++i) {
    in.id_of("net" + std::to_string(i));
  }
  EXPECT_EQ(in.size(), network_interner::max_networks);
  EXPECT_THROW(in.id_of("one-too-many"), std::length_error);
  // try_id stays non-throwing at capacity.
  EXPECT_EQ(in.try_id("one-too-many"), network_interner::npos);
  // try_intern saturates to npos instead of throwing (the wire-facing
  // contract: a flood of distinct names must reject, not unwind) and keeps
  // resolving already-interned names.
  EXPECT_EQ(in.try_intern("one-too-many"), network_interner::npos);
  EXPECT_EQ(in.try_intern("net0"), 0u);
  EXPECT_EQ(in.size(), network_interner::max_networks);
}

TEST(NetworkInterner, TryInternAssignsIdsBelowCapacity) {
  network_interner in;
  EXPECT_EQ(in.try_intern("NetB"), 0u);
  EXPECT_EQ(in.try_intern("NetC"), 1u);
  EXPECT_EQ(in.try_intern("NetB"), 0u);  // stable on re-intern
  EXPECT_EQ(in.size(), 2u);
}

// ---------------------------------------------------------------------------
// zone_table surface

TEST(ZoneTableStore, HistoryViewAliasesStorageAndMatchesCopy) {
  zone_table t(2.0, {"NetB"});
  const auto key = key_of(0, 0, "NetB");
  for (int i = 0; i < 10; ++i) {
    t.add_sample(key, 60.0 * static_cast<double>(i), 1.0 + i, 60.0);
  }
  const auto view = t.history_view(key);
  const auto copy = t.history(key);
  ASSERT_EQ(view.size(), copy.size());
  for (std::size_t i = 0; i < view.size(); ++i) {
    expect_same_estimate(view[i], copy[i], "view");
  }
  // Same storage on re-query while the table is untouched.
  EXPECT_EQ(t.history_view(key).data(), view.data());
  // Unknown key / unknown network: empty view, no interning side effect.
  EXPECT_TRUE(t.history_view(key_of(9, 9, "NetB")).empty());
  EXPECT_TRUE(t.history_view(key_of(0, 0, "nope")).empty());
  EXPECT_EQ(t.interner().try_id("nope"), network_interner::npos);
}

TEST(ZoneTableStore, PackedZoneRangeGuardThrows) {
  zone_table t;
  const int big = 1 << 23;
  EXPECT_THROW(
      t.add_sample(key_of(big, 0, "NetB"), 0.0, 1.0, 60.0),
      std::invalid_argument);
  EXPECT_THROW(
      t.add_sample(key_of(0, -big - 1, "NetB"), 0.0, 1.0, 60.0),
      std::invalid_argument);
  // The extremes of the representable range are fine.
  t.add_sample(key_of(big - 1, -big, "NetB"), 0.0, 1.0, 60.0);
  EXPECT_EQ(t.open_epoch_samples(key_of(big - 1, -big, "NetB")), 1u);
}

TEST(ZoneTableStore, OutOfRangeNetworkIdThrowsInsteadOfAliasing) {
  // Regression: pack_group used to mask network_id & 0xFFF, so feeding
  // network_interner::npos (0xFFFF) to the id-keyed write path silently
  // landed the sample on valid id 4095's streams. It must throw instead.
  zone_table t(2.0, {"NetB"});
  const geo::zone_id z{0, 0};
  const auto m = trace::metric::tcp_throughput_bps;
  t.add_sample(z, 0, m, 0.0, 1.0, 60.0);
  EXPECT_THROW(t.add_sample(z, network_interner::npos, m, 1.0, 2.0, 60.0),
               std::invalid_argument);
  EXPECT_THROW(
      t.add_sample(z, static_cast<std::uint16_t>(network_interner::max_networks),
                   m, 1.0, 2.0, 60.0),
      std::invalid_argument);
  // No phantom stream was created, and the real stream is untouched.
  EXPECT_EQ(t.keys().size(), 1u);
  EXPECT_EQ(t.open_epoch_samples(z, 0, m), 1u);
  // Read paths saturate silently for out-of-range ids.
  EXPECT_EQ(t.open_epoch_samples(z, network_interner::npos, m), 0u);
  EXPECT_TRUE(t.history_view(z, network_interner::npos, m).empty());
}

TEST(ZoneTableStore, RestoreThenAppendMatchesLegacy) {
  legacy::zone_table want;
  zone_table got;
  const auto key = key_of(2, 2, "NetC", trace::metric::loss_rate);
  const epoch_estimate est{120.0, 0.25, 0.04, 17};
  want.restore(key, est);
  got.restore(key, est);
  for (double t = 400.0; t < 1000.0; t += 35.0) {
    want.add_sample(key, t, 0.3, 120.0);
    got.add_sample(key, t, 0.3, 120.0);
  }
  const auto wh = want.history(key);
  const auto gh = got.history(key);
  ASSERT_EQ(wh.size(), gh.size());
  for (std::size_t i = 0; i < wh.size(); ++i) {
    expect_same_estimate(wh[i], gh[i], "restore");
  }
  EXPECT_EQ(want.alerts().size(), got.alerts().size());
}

TEST(ZoneTableStore, ManyStreamsSurviveTableGrowth) {
  // Push well past the initial 64-slot index so every stream survives
  // several rehashes with its history intact.
  zone_table t(2.0);
  legacy::zone_table want(2.0);
  for (int ix = 0; ix < 20; ++ix) {
    for (int iy = 0; iy < 20; ++iy) {
      const auto key = key_of(ix, iy, iy % 2 ? "NetB" : "NetC");
      for (int e = 0; e < 3; ++e) {
        const double time = 60.0 * static_cast<double>(e);
        const double v = ix * 100.0 + iy + e;
        t.add_sample(key, time, v, 60.0);
        want.add_sample(key, time, v, 60.0);
      }
    }
  }
  for (int ix = 0; ix < 20; ++ix) {
    for (int iy = 0; iy < 20; ++iy) {
      const auto key = key_of(ix, iy, iy % 2 ? "NetB" : "NetC");
      const auto wh = want.history(key);
      const auto gh = t.history(key);
      ASSERT_EQ(wh.size(), gh.size());
      for (std::size_t i = 0; i < wh.size(); ++i) {
        expect_same_estimate(wh[i], gh[i], "growth");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Coordinator-level fold: metrics_of() must preserve the seed's per-record
// metric fold order (alert order is observable), and the wire-cached
// network_id must be validated, not trusted.

TEST(ApplyPathCoordinator, ReportFoldMatchesLegacyAllMetricsWalk) {
  geo::projection proj(cellnet::anchors::madison);
  geo::zone_grid grid(proj, 250.0);
  coordinator_config cfg;
  cfg.epochs.default_epoch_s = 120.0;
  coordinator coord(grid, {"NetB", "NetC"}, cfg, 42);

  // The seed fold: for each record, walk all six metrics in declaration
  // order and apply those whose kind matches.
  legacy::zone_table want(cfg.change_sigma_factor);
  static constexpr trace::metric all_metrics[] = {
      trace::metric::tcp_throughput_bps, trace::metric::udp_throughput_bps,
      trace::metric::loss_rate, trace::metric::jitter_s, trace::metric::rtt_s,
      trace::metric::uplink_throughput_bps};

  stats::rng_stream rng(8);
  for (int i = 0; i < 2000; ++i) {
    trace::measurement_record rec;
    rec.time_s = 1000.0 + 3.0 * static_cast<double>(i);
    rec.network = rng.chance(0.5) ? "NetB" : "NetC";
    rec.pos = proj.to_lat_lon(
        {300.0 * static_cast<double>(rng.uniform_int(-2, 2)),
         300.0 * static_cast<double>(rng.uniform_int(-2, 2))});
    rec.kind = static_cast<trace::probe_kind>(rng.uniform_int(0, 3));
    rec.success = !rng.chance(0.1);
    const double base = i < 1000 ? 1.0e6 : 3.0e6;
    rec.throughput_bps = base * (1.0 + 0.05 * rng.normal());
    rec.loss_rate = 0.02 * (1.0 + 0.5 * rng.normal());
    rec.jitter_s = 0.004 * (1.0 + 0.5 * rng.normal());
    rec.rtt_s = 0.1 * (1.0 + 0.2 * rng.normal());
    // Poison the cached id on some records: a foreign id must be ignored
    // (validated against the name), never change the fold.
    if (rng.chance(0.3)) {
      rec.network_id = static_cast<std::uint16_t>(rng.uniform_int(0, 5));
    }

    coord.report(rec);
    if (rec.success) {
      const geo::zone_id z = grid.zone_of(rec.pos);
      for (const trace::metric m : all_metrics) {
        if (trace::kind_for(m) != rec.kind) continue;
        want.add_sample({z, rec.network, m}, rec.time_s,
                        trace::value_of(rec, m), cfg.epochs.default_epoch_s);
      }
    }
  }

  const auto keys = want.keys();
  ASSERT_FALSE(keys.empty());
  EXPECT_EQ(coord.table_for_test().keys().size(), keys.size());
  for (const auto& key : keys) {
    const auto wh = want.history(key);
    const auto gh = coord.table_for_test().history(key);
    ASSERT_EQ(wh.size(), gh.size()) << key.network;
    for (std::size_t i = 0; i < wh.size(); ++i) {
      expect_same_estimate(wh[i], gh[i], "fold");
    }
    EXPECT_EQ(want.open_epoch_samples(key),
              coord.table_for_test().open_epoch_samples(key));
  }
  // Alert streams agree alert-for-alert (order included).
  const auto& wa = want.alerts();
  const auto& ga = coord.table_for_test().alerts();
  ASSERT_EQ(wa.size(), ga.size());
  ASSERT_FALSE(wa.empty()) << "corpus raised no alerts; weak test";
  for (std::size_t i = 0; i < wa.size(); ++i) {
    EXPECT_EQ(wa[i].key, ga[i].key);
    EXPECT_EQ(wa[i].new_mean, ga[i].new_mean);
  }
}

TEST(ApplyPathCoordinator, MetricsOfMatchesKindFor) {
  for (const auto kind :
       {trace::probe_kind::tcp_download, trace::probe_kind::udp_burst,
        trace::probe_kind::ping, trace::probe_kind::udp_uplink}) {
    for (const trace::metric m : trace::metrics_of(kind)) {
      EXPECT_EQ(trace::kind_for(m), kind);
    }
  }
  EXPECT_EQ(trace::metrics_of(trace::probe_kind::udp_burst).size(), 3u);
}

TEST(ApplyPath, NonFiniteAndSaturatedTimestampsTerminate) {
  // Regression (found by the scenario fuzz corpus): a +inf timestamp made
  // cross_epochs spin forever -- open_start + duration == open_start at fp
  // saturation, so the rollover walk never advanced. add_sample must
  // terminate for ANY double, because the coordinator boundary is the only
  // validation layer and direct zone_table users have none.
  core::zone_table table(2.0, {"NetB"});
  const geo::zone_id z{1, 1};
  const auto nid = table.interner().id_of("NetB");
  for (const double poison :
       {std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN(), 1.0e308, -1.0e308}) {
    table.add_sample(z, nid, trace::metric::rtt_s, poison, 0.1, 300.0);
    // A normal-time sample on the now-poisoned stream must also terminate.
    table.add_sample(z, nid, trace::metric::rtt_s, 100.0, 0.1, 300.0);
  }
  // And the coordinator boundary rejects non-finite timestamps outright.
  geo::projection proj(cellnet::anchors::madison);
  geo::zone_grid grid(proj, 250.0);
  coordinator coord(grid, {"NetB"}, {}, 1);
  obs::counter& rejected =
      obs::registry::global().get_counter(obs::names::kCoordReportsRejected);
  const std::uint64_t rejected0 = rejected.value();
  trace::measurement_record rec;
  rec.network = "NetB";
  rec.pos = proj.to_lat_lon({10.0, 10.0});
  rec.kind = trace::probe_kind::ping;
  rec.success = true;
  rec.rtt_s = 0.1;
  rec.time_s = std::numeric_limits<double>::infinity();
  coord.report(rec);
  rec.time_s = std::numeric_limits<double>::quiet_NaN();
  coord.report(rec);
  EXPECT_EQ(rejected.value(), rejected0 + 2);
}

}  // namespace
}  // namespace wiscape::core

// Equivalence, robustness and regression suite for the zero-allocation wire
// & CSV parsers (ISSUE 3 tentpole).
//
// The old istringstream/unordered_map/stod decoder is preserved here
// verbatim as `legacy::` and used as the reference implementation: every
// line the old parser accepted must decode to an identical struct through
// the new std::string_view + std::from_chars fast path, and every
// encode(...) overload must produce byte-identical output. On top of the
// equivalence property: a malformed-line corpus (ERR, never a crash or a
// silent misparse), the u64 precision regression (client ids above 2^53
// used to travel through a double), snprintf truncation guards, and the
// REPORTB batch framing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "proto/messages.h"
#include "stats/rng.h"
#include "trace/csv.h"
#include "test_util.h"

namespace wiscape {
namespace {

// ---- the seed decoder/encoder, frozen as the reference --------------------
namespace legacy {

std::unordered_map<std::string, std::string> fields_of(
    const std::string& line, const std::string& expected_type) {
  std::istringstream is(line);
  std::string tag;
  if (!(is >> tag) || tag != expected_type) {
    throw std::invalid_argument("expected " + expected_type + " message");
  }
  std::unordered_map<std::string, std::string> out;
  std::string token;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("malformed field '" + token + "'");
    }
    out[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return out;
}

const std::string& need(
    const std::unordered_map<std::string, std::string>& fields,
    const std::string& key) {
  const auto it = fields.find(key);
  if (it == fields.end()) {
    throw std::invalid_argument("missing field '" + key + "'");
  }
  return it->second;
}

double need_double(const std::unordered_map<std::string, std::string>& fields,
                   const std::string& key) {
  const std::string& s = need(fields, key);
  std::size_t used = 0;
  const double v = std::stod(s, &used);
  if (used != s.size()) throw std::invalid_argument(s);
  return v;
}

std::uint64_t need_u64(
    const std::unordered_map<std::string, std::string>& fields,
    const std::string& key) {
  // The seed parser's u64-through-double path: loses precision above 2^53.
  return static_cast<std::uint64_t>(need_double(fields, key));
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

double to_double(const std::string& s) {
  std::size_t used = 0;
  const double v = std::stod(s, &used);
  if (used != s.size()) throw std::invalid_argument(s);
  return v;
}

trace::measurement_record from_csv(const std::string& line) {
  const auto f = split(line, ',');
  if (f.size() != 16) throw std::invalid_argument("CSV needs 16 fields");
  trace::measurement_record r;
  r.time_s = to_double(f[0]);
  r.network = f[1];
  r.pos = {to_double(f[2]), to_double(f[3])};
  r.speed_mps = to_double(f[4]);
  r.kind = trace::probe_kind_from_string(f[5]);
  r.success = static_cast<int>(to_double(f[6])) != 0;
  r.throughput_bps = to_double(f[7]);
  r.loss_rate = to_double(f[8]);
  r.jitter_s = to_double(f[9]);
  r.rtt_s = to_double(f[10]);
  r.ping_sent = static_cast<int>(to_double(f[11]));
  r.ping_failures = static_cast<int>(to_double(f[12]));
  r.rssi_dbm = to_double(f[13]);
  r.device = f[14];
  r.client_id = static_cast<std::uint64_t>(to_double(f[15]));
  return r;
}

std::string to_csv(const trace::measurement_record& r) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "%.3f,%s,%.6f,%.6f,%.2f,%s,%d,%.1f,%.6f,%.6f,%.6f,%d,%d,%.1f,%s,%llu",
                r.time_s, r.network.c_str(), r.pos.lat_deg, r.pos.lon_deg,
                r.speed_mps, trace::to_string(r.kind).c_str(),
                r.success ? 1 : 0, r.throughput_bps, r.loss_rate, r.jitter_s,
                r.rtt_s, r.ping_sent, r.ping_failures, r.rssi_dbm,
                r.device.c_str(),
                static_cast<unsigned long long>(r.client_id));
  return buf;
}

std::string encode(const proto::checkin_request& m) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "CHECKIN client=%llu lat=%.6f lon=%.6f t=%.3f net=%u "
                "active=%u device=%s",
                static_cast<unsigned long long>(m.client_id), m.pos.lat_deg,
                m.pos.lon_deg, m.time_s, m.network_index, m.active_in_zone,
                m.device.c_str());
  return buf;
}

std::string encode(const proto::task_assignment& m) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "TASK kind=%s net=%u tcp_bytes=%llu udp_packets=%u "
                "ping_count=%u",
                trace::to_string(m.kind).c_str(), m.network_index,
                static_cast<unsigned long long>(m.tcp_bytes), m.udp_packets,
                m.ping_count);
  return buf;
}

proto::checkin_request decode_checkin(const std::string& line) {
  const auto f = fields_of(line, "CHECKIN");
  proto::checkin_request m;
  m.client_id = need_u64(f, "client");
  m.pos = {need_double(f, "lat"), need_double(f, "lon")};
  m.time_s = need_double(f, "t");
  m.network_index = static_cast<std::uint32_t>(need_u64(f, "net"));
  m.active_in_zone = static_cast<std::uint32_t>(need_u64(f, "active"));
  m.device = need(f, "device");
  return m;
}

proto::task_assignment decode_task(const std::string& line) {
  const auto f = fields_of(line, "TASK");
  proto::task_assignment m;
  m.kind = trace::probe_kind_from_string(need(f, "kind"));
  m.network_index = static_cast<std::uint32_t>(need_u64(f, "net"));
  m.tcp_bytes = need_u64(f, "tcp_bytes");
  m.udp_packets = static_cast<std::uint32_t>(need_u64(f, "udp_packets"));
  m.ping_count = static_cast<std::uint32_t>(need_u64(f, "ping_count"));
  return m;
}

}  // namespace legacy

// Exact struct comparison: the equivalence claim is bit-for-bit, including
// doubles (stod and from_chars are both correctly rounded).
void expect_same_record(const trace::measurement_record& a,
                        const trace::measurement_record& b) {
  EXPECT_EQ(a.time_s, b.time_s);
  EXPECT_EQ(a.network, b.network);
  EXPECT_EQ(a.pos.lat_deg, b.pos.lat_deg);
  EXPECT_EQ(a.pos.lon_deg, b.pos.lon_deg);
  EXPECT_EQ(a.speed_mps, b.speed_mps);
  EXPECT_EQ(a.device, b.device);
  EXPECT_EQ(a.client_id, b.client_id);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.throughput_bps, b.throughput_bps);
  EXPECT_EQ(a.loss_rate, b.loss_rate);
  EXPECT_EQ(a.jitter_s, b.jitter_s);
  EXPECT_EQ(a.rtt_s, b.rtt_s);
  EXPECT_EQ(a.ping_sent, b.ping_sent);
  EXPECT_EQ(a.ping_failures, b.ping_failures);
  EXPECT_EQ(a.rssi_dbm, b.rssi_dbm);
}

/// Randomized but reproducible record covering every field, kind, and a
/// spread of magnitudes. Client ids stay below 2^53 here so the legacy
/// reference is not hit by its own precision bug.
trace::measurement_record random_record(stats::rng_stream& rng, int i) {
  trace::measurement_record r;
  r.time_s = 1000.0 + 3600.0 * rng.uniform();
  r.network = rng.chance(0.5) ? "NetB" : (rng.chance(0.5) ? "NetC" : "NetA");
  r.pos = {43.0 + rng.uniform(), -89.5 + rng.uniform()};
  r.speed_mps = 40.0 * rng.uniform();
  r.device = rng.chance(0.5) ? "laptop" : "phone";
  r.client_id = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30)) *
                    (rng.chance(0.2) ? 1u << 20 : 1u) +
                static_cast<std::uint64_t>(i);
  r.kind = static_cast<trace::probe_kind>(rng.uniform_int(0, 3));
  r.success = rng.chance(0.9);
  r.throughput_bps = 1e6 * rng.uniform();
  r.loss_rate = rng.uniform();
  r.jitter_s = 0.01 * rng.uniform();
  r.rtt_s = 0.2 * rng.uniform();
  r.ping_sent = static_cast<int>(rng.uniform_int(0, 10));
  r.ping_failures = static_cast<int>(rng.uniform_int(0, 5));
  r.rssi_dbm = -60.0 - 40.0 * rng.uniform();
  return r;
}

// ---- golden-vector / property equivalence ---------------------------------

TEST(WireParseEquivalence, CsvRoundTripMatchesLegacyOnRandomRecords) {
  stats::rng_stream rng(77);
  for (int i = 0; i < 500; ++i) {
    const trace::measurement_record rec = random_record(rng, i);
    const std::string line = trace::to_csv(rec);
    EXPECT_EQ(line, legacy::to_csv(rec)) << "encoder drifted from seed bytes";
    expect_same_record(trace::from_csv(line), legacy::from_csv(line));
  }
}

TEST(WireParseEquivalence, CheckinMatchesLegacyOnRandomRequests) {
  stats::rng_stream rng(78);
  for (int i = 0; i < 300; ++i) {
    proto::checkin_request m;
    m.client_id = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
    m.pos = {43.0 + rng.uniform(), -89.5 + rng.uniform()};
    m.time_s = 1e5 * rng.uniform();
    m.network_index = static_cast<std::uint32_t>(rng.uniform_int(0, 5));
    m.active_in_zone = static_cast<std::uint32_t>(rng.uniform_int(1, 40));
    m.device = rng.chance(0.5) ? "laptop" : "phone";
    const std::string line = proto::encode(m);
    EXPECT_EQ(line, legacy::encode(m));
    const auto ours = proto::decode_checkin(line);
    const auto ref = legacy::decode_checkin(line);
    EXPECT_EQ(ours.client_id, ref.client_id);
    EXPECT_EQ(ours.pos.lat_deg, ref.pos.lat_deg);
    EXPECT_EQ(ours.pos.lon_deg, ref.pos.lon_deg);
    EXPECT_EQ(ours.time_s, ref.time_s);
    EXPECT_EQ(ours.network_index, ref.network_index);
    EXPECT_EQ(ours.active_in_zone, ref.active_in_zone);
    EXPECT_EQ(ours.device, ref.device);
  }
}

TEST(WireParseEquivalence, TaskMatchesLegacyOnRandomAssignments) {
  stats::rng_stream rng(79);
  for (int i = 0; i < 300; ++i) {
    proto::task_assignment m;
    m.kind = static_cast<trace::probe_kind>(rng.uniform_int(0, 3));
    m.network_index = static_cast<std::uint32_t>(rng.uniform_int(0, 5));
    m.tcp_bytes = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
    m.udp_packets = static_cast<std::uint32_t>(rng.uniform_int(0, 500));
    m.ping_count = static_cast<std::uint32_t>(rng.uniform_int(0, 50));
    const std::string line = proto::encode(m);
    EXPECT_EQ(line, legacy::encode(m));
    const auto ours = proto::decode_task(line);
    const auto ref = legacy::decode_task(line);
    EXPECT_EQ(ours.kind, ref.kind);
    EXPECT_EQ(ours.network_index, ref.network_index);
    EXPECT_EQ(ours.tcp_bytes, ref.tcp_bytes);
    EXPECT_EQ(ours.udp_packets, ref.udp_packets);
    EXPECT_EQ(ours.ping_count, ref.ping_count);
  }
}

TEST(WireParseEquivalence, GoldenVectorsDecodeLikeLegacy) {
  // Handwritten lines the old parser accepted: reordered fields, unknown
  // extra keys, extra whitespace between tokens.
  const std::vector<std::string> golden = {
      "CHECKIN client=42 lat=43.073000 lon=-89.401000 t=1234.567 net=2 "
      "active=7 device=phone",
      "CHECKIN device=laptop active=1 net=0 t=0.000 lon=0.000000 "
      "lat=0.000000 client=0",
      "CHECKIN client=1 lat=1.5 lon=-2.5 t=9.25 net=1 active=3 "
      "device=tablet future_key=ignored",
      "CHECKIN  client=7   lat=0.125 lon=0.25\tt=8 net=0 active=2 device=x",
  };
  for (const auto& line : golden) {
    const auto ours = proto::decode_checkin(line);
    const auto ref = legacy::decode_checkin(line);
    EXPECT_EQ(ours.client_id, ref.client_id) << line;
    EXPECT_EQ(ours.pos.lat_deg, ref.pos.lat_deg) << line;
    EXPECT_EQ(ours.pos.lon_deg, ref.pos.lon_deg) << line;
    EXPECT_EQ(ours.time_s, ref.time_s) << line;
    EXPECT_EQ(ours.network_index, ref.network_index) << line;
    EXPECT_EQ(ours.active_in_zone, ref.active_in_zone) << line;
    EXPECT_EQ(ours.device, ref.device) << line;
  }
}

// ---- malformed-line corpus ------------------------------------------------

TEST(WireParseMalformed, CheckinCorpusThrowsNeverCrashes) {
  const std::vector<std::string> corpus = {
      "",                                                    // empty line
      "CHECKIN",                                             // no fields
      "TASK kind=udp",                                       // wrong type
      "CHECKIN client=1",                                    // missing fields
      "CHECKIN client= lat=1 lon=1 t=1 net=0 active=1 device=a",  // empty val
      "CHECKIN k= lat=1 lon=1 t=1 net=0 active=1 device=a client=1",
      "CHECKIN =v client=1 lat=1 lon=1 t=1 net=0 active=1 device=a",
      "CHECKIN client=1 client=2 lat=1 lon=1 t=1 net=0 active=1 device=a",
      "CHECKIN client=1 lat=1 lat=1 lon=1 t=1 net=0 active=1 device=a",
      "CHECKIN client=x lat=1 lon=1 t=1 net=0 active=1 device=a",
      "CHECKIN client=1 lat=\xff\xfe lon=1 t=1 net=0 active=1 device=a",
      "CHECKIN client=1 lat=1e999 lon=1 t=1 net=0 active=1 device=a",
      "CHECKIN client=99999999999999999999999999 lat=1 lon=1 t=1 net=0 "
      "active=1 device=a",
      "CHECKIN client=1 lat=1.5x lon=1 t=1 net=0 active=1 device=a",
      "CHECKIN client=-1 lat=1 lon=1 t=1 net=0 active=1 device=a",
      "CHECKIN noequals client=1 lat=1 lon=1 t=1 net=0 active=1 device=a",
      "\x01\x02\x03\xff",
  };
  for (const auto& line : corpus) {
    EXPECT_THROW(proto::decode_checkin(line), std::invalid_argument) << line;
  }
}

TEST(WireParseMalformed, CsvCorpusThrowsNeverCrashes) {
  const std::string valid = trace::to_csv(
      testing::make_record(1.0, "NetB", {43.0, -89.4},
                           trace::probe_kind::udp_burst, 1e6));
  ASSERT_NO_THROW(trace::from_csv(valid));
  const std::vector<std::string> corpus = {
      "",                    // 1 empty field
      ",,,,,,,,,,,,,,,",     // 16 empty fields
      valid + ",extra",      // 17 fields
      valid.substr(0, valid.rfind(',')),  // 15 fields
      "x" + valid,           // bad time_s
      "1.0,NetB,43,-89,0,warp,1,1,0,0,0,0,0,-70,laptop,1",    // bad kind
      "1.0,NetB,43,-89,0,udp,yes,1,0,0,0,0,0,-70,laptop,1",   // bad success
      "1.0,NetB,43,-89,0,udp,1,1,0,0,0,0.5,0,-70,laptop,1",   // frac ping_sent
      "1.0,NetB,43,-89,0,udp,1,1,0,0,0,0,0,-70,laptop,1e9",   // exp client_id
      "1.0,NetB,43,-89,0,udp,1,1,0,0,0,0,0,-70,laptop,-3",    // neg client_id
      "1.0,NetB,43,-89,0,udp,1,1e999,0,0,0,0,0,-70,laptop,1",  // overflow
      "1.0,NetB,43,-89,0,udp,1,1,0,0,0,0,0,-70,laptop,"
      "99999999999999999999999999",                            // u64 overflow
      "1.0,NetB,\xff\xfe,-89,0,udp,1,1,0,0,0,0,0,-70,laptop,1",
  };
  for (const auto& line : corpus) {
    EXPECT_THROW(trace::from_csv(line), std::invalid_argument) << line;
  }
}

TEST(WireParseMalformed, ReportAndBatchCorpusThrows) {
  const std::string csv = trace::to_csv(
      testing::make_record(1.0, "NetB", {43.0, -89.4},
                           trace::probe_kind::udp_burst, 1e6));
  const std::vector<std::string> corpus = {
      "REPORT client=1",                     // missing csv
      "REPORT client=abc csv=" + csv,        // bad id
      "REPORT client=1abc csv=" + csv,       // trailing junk in id (the old
                                             // stoull silently read "1")
      "REPORT client= csv=" + csv,           // empty id
      "REPORT client=-1 csv=" + csv,         // negative id
      "REPORTB",                             // no count
      "REPORTB x",                           // bad count
      "REPORTB 2\n" + csv,                   // count > payload
      "REPORTB 1\n" + csv + "\n" + csv,      // count < payload
      "REPORTB 1\nnot,a,record",             // bad payload
      "REPORTB 99999999999\n" + csv,         // count over max_report_batch
      "REPORTB 1 junk\n" + csv,              // trailing header tokens
  };
  for (const auto& line : corpus) {
    EXPECT_THROW(proto::decode_report(line), std::invalid_argument);
  }
  for (const auto& line : corpus) {
    if (line.rfind("REPORTB", 0) == 0) {
      EXPECT_THROW(proto::decode_report_batch(line), std::invalid_argument)
          << line;
    }
  }
}

// ---- satellite regressions ------------------------------------------------

TEST(WireParseRegression, ClientIdsAbove2To53SurviveExactly) {
  // The seed parser routed u64s through a double: (1<<53)+1 came back as
  // 1<<53. The new from_chars path must be exact end to end.
  const std::uint64_t id = (1ull << 53) + 1;
  ASSERT_NE(static_cast<std::uint64_t>(static_cast<double>(id)), id)
      << "test premise: this id is not representable as a double";

  trace::measurement_record rec = testing::make_record(
      5.0, "NetB", {43.0, -89.4}, trace::probe_kind::ping, 0.1);
  rec.client_id = id;
  EXPECT_EQ(trace::from_csv(trace::to_csv(rec)).client_id, id);

  proto::measurement_report rep;
  rep.client_id = id;
  rep.record = rec;
  const auto back = proto::decode_report(proto::encode(rep));
  EXPECT_EQ(back.client_id, id);
  EXPECT_EQ(back.record.client_id, id);

  proto::checkin_request req;
  req.client_id = id;
  req.pos = {43.0, -89.4};
  EXPECT_EQ(proto::decode_checkin(proto::encode(req)).client_id, id);

  proto::task_assignment task;
  task.tcp_bytes = id;
  EXPECT_EQ(proto::decode_task(proto::encode(task)).tcp_bytes, id);
}

TEST(WireParseRegression, LongDeviceStringNeverTruncated) {
  // The seed encoder snprintf'd into a fixed stack buffer and returned the
  // silently-truncated result. encode/to_csv must grow instead.
  const std::string device(300, 'd');
  trace::measurement_record rec = testing::make_record(
      7.0, "NetB", {43.0, -89.4}, trace::probe_kind::udp_burst, 2e6);
  rec.device = device;
  rec.client_id = 12345;
  const std::string line = trace::to_csv(rec);
  EXPECT_GT(line.size(), 320u) << "must exceed the old 320-byte buffer";
  const auto back = trace::from_csv(line);
  EXPECT_EQ(back.device, device);
  EXPECT_EQ(back.client_id, 12345u) << "fields after device must survive";

  proto::checkin_request req;
  req.client_id = 9;
  req.pos = {43.0, -89.4};
  req.device = device;
  const auto round = proto::decode_checkin(proto::encode(req));
  EXPECT_EQ(round.device, device);

  proto::measurement_report rep;
  rep.client_id = 9;
  rep.record = rec;
  EXPECT_EQ(proto::decode_report(proto::encode(rep)).record.device, device);
}

TEST(WireParseRegression, ErrorExcerptClipsLongInput) {
  const std::string huge(4 << 20, 'z');
  const std::string clipped = proto::error_excerpt(huge);
  EXPECT_LE(clipped.size(), 123u + 3u);
  EXPECT_EQ(clipped.substr(clipped.size() - 3), "...");
  EXPECT_EQ(proto::error_excerpt("short"), "short");

  // Decoder errors that echo the input stay bounded too.
  try {
    proto::decode_checkin("CHECKIN client=" + huge + " lat=1 lon=1 t=1 "
                          "net=0 active=1 device=a");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_LT(std::string(e.what()).size(), 300u);
  }
  try {
    trace::from_csv(huge);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_LT(std::string(e.what()).size(), 300u);
  }
}

// ---- REPORTB framing ------------------------------------------------------

TEST(WireParseBatch, ReportBatchRoundTrips) {
  stats::rng_stream rng(80);
  std::vector<trace::measurement_record> recs;
  for (int i = 0; i < 64; ++i) recs.push_back(random_record(rng, i));
  const std::string frame = proto::encode_report_batch(recs);
  EXPECT_EQ(proto::message_type(frame), "REPORTB");
  const auto back = proto::decode_report_batch(frame);
  ASSERT_EQ(back.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    // Through the CSV schema the payload is quantized exactly like a single
    // REPORT, so one encode->decode round trip is idempotent.
    expect_same_record(back[i], trace::from_csv(trace::to_csv(recs[i])));
  }
}

TEST(WireParseBatch, EmptyBatchAndTrailingNewlineTolerated) {
  EXPECT_TRUE(proto::decode_report_batch("REPORTB 0").empty());
  const std::string csv = trace::to_csv(testing::make_record(
      1.0, "NetB", {43.0, -89.4}, trace::probe_kind::udp_burst, 1e6));
  // A transport that delivers the terminal newline still decodes.
  EXPECT_EQ(proto::decode_report_batch("REPORTB 1\n" + csv + "\n").size(), 1u);
}

// ---- the zero-allocation encode path (handle_into's building blocks) ------

TEST(WireEncodeInto, Double17ParityWithPrintf) {
  // append_double17 renders via to_chars(general, 17), which the standard
  // specifies to match printf("%.17g") byte for byte. The whole reply
  // byte-identity guarantee leans on that parity, so pin it over a corpus
  // of awkward doubles rather than assume it.
  std::vector<double> corpus = {0.0,
                                -0.0,
                                1.0,
                                -1.0,
                                0.1,
                                1.0 / 3.0,
                                1e-308,
                                1e308,
                                5e-324,  // smallest denormal
                                std::numeric_limits<double>::min(),
                                std::numeric_limits<double>::max(),
                                std::numeric_limits<double>::epsilon(),
                                std::numeric_limits<double>::infinity(),
                                -std::numeric_limits<double>::infinity(),
                                123456789.123456789,
                                2.5e6,
                                -1.5e-5};
  std::mt19937_64 rng(20260809u);
  while (corpus.size() < 2000) {
    double v;
    const std::uint64_t bits = rng();
    std::memcpy(&v, &bits, sizeof v);
    if (std::isnan(v)) continue;  // NaN spellings differ (nan vs -nan(...))
    corpus.push_back(v);
  }
  proto::reply_buffer out;
  for (const double v : corpus) {
    out.clear();
    out.append_double17(v);
    char want[64];
    std::snprintf(want, sizeof want, "%.17g", v);
    EXPECT_EQ(out.view(), std::string_view(want)) << v;
  }
}

TEST(WireEncodeInto, EncodeIntoMatchesEncode) {
  proto::task_assignment task;
  task.kind = trace::probe_kind::tcp_download;
  task.network_index = 3;
  task.tcp_bytes = 1u << 20;
  task.udp_packets = 50;
  task.ping_count = 10;

  proto::hello_reply hello;

  proto::estimate_reply est;
  est.zone = {12, -7};
  est.network = "NetB";
  est.metric = trace::metric::udp_throughput_bps;
  est.count = 41;
  est.mean = 2.5e6 / 3.0;
  est.stddev = 1.25e5;
  est.epoch_index = 9;
  est.staleness_s = 17.25;
  est.confidence = 0.84;

  proto::alerts_reply alerts;
  alerts.next_seq = 6;
  alerts.dropped = 1;
  proto::alert_event ev;
  ev.seq = 5;
  ev.zone = {-2, 4};
  ev.network = "NetA";
  ev.metric = trace::metric::loss_rate;
  ev.epoch_start_s = 300.0;
  ev.previous_mean = 0.01;
  ev.new_mean = 0.2;
  ev.previous_stddev = 0.005;
  alerts.alerts.push_back(ev);
  ev.seq = 6;
  alerts.alerts.push_back(ev);

  // Appended to a non-empty buffer: only the appended tail must match
  // (the _into forms append, never overwrite).
  proto::reply_buffer out;
  const auto appended = [&out](auto&& encode_one) {
    out.clear();
    out.append("prefix|");
    encode_one();
    return std::string(out.view().substr(7));
  };
  EXPECT_EQ(appended([&] { proto::encode_into(task, out); }),
            proto::encode(task));
  EXPECT_EQ(appended([&] { proto::encode_into(hello, out); }),
            proto::encode(hello));
  EXPECT_EQ(appended([&] { proto::encode_into(est, out); }),
            proto::encode(est));
  EXPECT_EQ(appended([&] { proto::encode_into(alerts, out); }),
            proto::encode(alerts));
}

TEST(WireEncodeInto, EncodeErrorIntoMatchesEncodeError) {
  using proto::err_code;
  const std::string long_detail(300, 'd');
  proto::reply_buffer out;
  for (const err_code code :
       {err_code::parse, err_code::unsupported, err_code::stopped,
        err_code::version, err_code::internal, err_code::overload}) {
    for (const std::string_view detail :
         {std::string_view("short detail"), std::string_view(long_detail),
          std::string_view("")}) {
      out.clear();
      proto::encode_error_into(code, detail, out);
      EXPECT_EQ(out.view(), proto::encode_error(code, detail));
    }
  }
}

TEST(WireParseBatch, DecodeBatchIntoMatchesAndReusesCapacity) {
  std::vector<trace::measurement_record> recs;
  for (int i = 0; i < 8; ++i) {
    recs.push_back(testing::make_record(10.0 + i, "NetB", {43.0, -89.4},
                                        trace::probe_kind::udp_burst, 1e6));
  }
  const std::string frame = proto::encode_report_batch(recs);
  const auto via_copy = proto::decode_report_batch(frame);

  std::vector<trace::measurement_record> into;
  proto::decode_report_batch_into(frame, into);
  ASSERT_EQ(into.size(), via_copy.size());
  const std::size_t warm_cap = into.capacity();
  // Second decode reuses the warmed vector: same contents, no regrowth.
  proto::decode_report_batch_into(frame, into);
  EXPECT_EQ(into.capacity(), warm_cap);
  ASSERT_EQ(into.size(), via_copy.size());
  for (std::size_t i = 0; i < into.size(); ++i) {
    expect_same_record(into[i], via_copy[i]);
  }

  // Same contract for the query flavour.
  std::vector<proto::query_request> qs(2);
  qs[0].pos = {43.0, -89.4};
  qs[0].network = "NetB";
  qs[0].metric = trace::metric::udp_throughput_bps;
  qs[0].time_s = 100.0;
  qs[1].pos = {43.1, -89.5};
  qs[1].network = "NetA";
  qs[1].metric = trace::metric::loss_rate;
  const std::string qframe = proto::encode_query_batch(qs);
  const auto q_copy = proto::decode_query_batch(qframe);
  std::vector<proto::query_request> q_into;
  proto::decode_query_batch_into(qframe, q_into);
  proto::decode_query_batch_into(qframe, q_into);
  ASSERT_EQ(q_into.size(), q_copy.size());
  for (std::size_t i = 0; i < q_into.size(); ++i) {
    EXPECT_EQ(q_into[i].network, q_copy[i].network);
    EXPECT_EQ(q_into[i].metric, q_copy[i].metric);
    EXPECT_EQ(q_into[i].time_s, q_copy[i].time_s);
  }
}

TEST(WireParseBatch, CrlfFramesToleratedAtDecoderLevel) {
  // CRLF tolerance moved from the transport (scratch rebuild) into the
  // decoders: a frame whose every line ends "\r\n" decodes identically.
  std::vector<trace::measurement_record> recs;
  recs.push_back(testing::make_record(10.0, "NetB", {43.0, -89.4},
                                      trace::probe_kind::udp_burst, 1e6));
  recs.push_back(testing::make_record(11.0, "NetB", {43.0, -89.4},
                                      trace::probe_kind::udp_burst, 2e6));
  const std::string frame = proto::encode_report_batch(recs);
  std::string crlf;
  for (const char c : frame) {
    if (c == '\n') crlf += "\r\n";
    else crlf += c;
  }
  crlf += "\r\n";
  const auto plain = proto::decode_report_batch(frame);
  const auto tolerant = proto::decode_report_batch(crlf);
  ASSERT_EQ(tolerant.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    expect_same_record(tolerant[i], plain[i]);
  }
}

TEST(WireParseBatch, MessageTypeTagsAreStable) {
  EXPECT_EQ(proto::message_type("REPORTB 3\nx,y"), "REPORTB");
  EXPECT_EQ(proto::message_type("REPORT client=1 csv=x"), "REPORT");
  EXPECT_EQ(proto::message_type("garbage line"), "");
  // The returned view aliases a static literal, not the (dead) input.
  std::string_view tag;
  {
    std::string temp = "CHECKIN client=1";
    tag = proto::message_type(temp);
  }
  EXPECT_EQ(tag, "CHECKIN");
}

}  // namespace
}  // namespace wiscape

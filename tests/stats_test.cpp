#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "stats/allan.h"
#include "stats/histogram.h"
#include "stats/rng.h"
#include "stats/running_stats.h"
#include "stats/sampling.h"
#include "stats/summary.h"
#include "stats/time_series.h"
#include "test_util.h"

namespace wiscape::stats {
namespace {

// ---------------------------------------------------------------- rng ----

TEST(Rng, SameSeedSameSequence) {
  rng_stream a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  rng_stream a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkByLabelIsDeterministicAndIndependent) {
  rng_stream root(7);
  rng_stream a = root.fork("alpha");
  rng_stream b = root.fork("alpha");
  rng_stream c = root.fork("beta");
  EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  EXPECT_NE(a.seed(), c.seed());
}

TEST(Rng, ForkByIndexDistinct) {
  rng_stream root(7);
  EXPECT_NE(root.fork(std::uint64_t{0}).seed(), root.fork(std::uint64_t{1}).seed());
}

TEST(Rng, UniformRangeRespected) {
  rng_stream r(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  rng_stream r(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(1, 4);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 4);
    saw_lo |= v == 1;
    saw_hi |= v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  rng_stream r(9);
  running_stats rs;
  for (int i = 0; i < 20000; ++i) rs.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(rs.mean(), 10.0, 0.1);
  EXPECT_NEAR(rs.stddev(), 2.0, 0.1);
}

TEST(Rng, BoundedParetoStaysInRange) {
  rng_stream r(11);
  for (int i = 0; i < 2000; ++i) {
    const double x = r.bounded_pareto(1.1, 10.0, 1000.0);
    EXPECT_GE(x, 10.0 * 0.999);
    EXPECT_LE(x, 1000.0 * 1.001);
  }
}

TEST(Rng, BoundedParetoRejectsBadArgs) {
  rng_stream r(1);
  EXPECT_THROW(r.bounded_pareto(0.0, 1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(r.bounded_pareto(1.0, 2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(r.bounded_pareto(1.0, 0.0, 2.0), std::invalid_argument);
}

TEST(Rng, ChanceExtremes) {
  rng_stream r(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, Splitmix64Avalanche) {
  // Adjacent inputs should differ in many bits.
  const auto a = splitmix64(1);
  const auto b = splitmix64(2);
  EXPECT_GE(__builtin_popcountll(a ^ b), 16);
}

// ------------------------------------------------------- running_stats ----

TEST(RunningStats, EmptyDefaults) {
  running_stats rs;
  EXPECT_TRUE(rs.empty());
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.relative_stddev(), 0.0);
}

TEST(RunningStats, MatchesClosedForm) {
  running_stats rs;
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  rng_stream r(4);
  running_stats a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double x = r.normal(3.0, 1.5);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsNoop) {
  running_stats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStats, RelativeStddev) {
  running_stats rs;
  rs.add(90.0);
  rs.add(110.0);
  EXPECT_NEAR(rs.relative_stddev(), std::sqrt(200.0) / 100.0, 1e-12);
}

// -------------------------------------------------------------- summary ----

TEST(Summary, PercentileInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
}

TEST(Summary, PercentileValidation) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile(xs, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile(xs, 101.0), std::invalid_argument);
}

TEST(Summary, EmpiricalCdfSortedAndEndsAtOne) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  const auto cdf = empirical_cdf(xs);
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LE(cdf[i - 1].fraction, cdf[i].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 5.0);
}

TEST(Summary, EmpiricalCdfDownsamples) {
  std::vector<double> xs(1000);
  std::iota(xs.begin(), xs.end(), 0.0);
  const auto cdf = empirical_cdf(xs, 50);
  EXPECT_LE(cdf.size(), 60u);
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(Summary, FractionAtMost) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(fraction_at_most(xs, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(fraction_at_most(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(fraction_at_most(xs, 10.0), 1.0);
}

TEST(Summary, PearsonPerfectAndAnti) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> up{2.0, 4.0, 6.0, 8.0};
  const std::vector<double> down{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson_correlation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(xs, down), -1.0, 1e-12);
}

TEST(Summary, PearsonConstantSeriesIsZero) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> c{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson_correlation(xs, c), 0.0);
}

TEST(Summary, PearsonIndependentNearZero) {
  rng_stream r(8);
  std::vector<double> a, b;
  for (int i = 0; i < 5000; ++i) {
    a.push_back(r.normal());
    b.push_back(r.normal());
  }
  EXPECT_NEAR(pearson_correlation(a, b), 0.0, 0.05);
}

TEST(Summary, PearsonValidatesInput) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0};
  EXPECT_THROW(pearson_correlation(a, b), std::invalid_argument);
  EXPECT_THROW(pearson_correlation(b, b), std::invalid_argument);
}

// ---------------------------------------------------------- time_series ----

TEST(TimeSeries, BinMeansAveragesPerWindow) {
  time_series ts;
  ts.add(0.0, 1.0);
  ts.add(1.0, 3.0);
  ts.add(10.0, 5.0);
  ts.add(11.0, 7.0);
  const auto bins = ts.bin_means(5.0);
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_DOUBLE_EQ(bins[0], 2.0);
  EXPECT_DOUBLE_EQ(bins[1], 6.0);
}

TEST(TimeSeries, BinMeansUnsortedInput) {
  time_series ts;
  ts.add(11.0, 7.0);
  ts.add(0.0, 1.0);
  ts.add(10.0, 5.0);
  ts.add(1.0, 3.0);
  const auto bins = ts.bin_means(5.0);
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_DOUBLE_EQ(bins[0], 2.0);
}

TEST(TimeSeries, BinMeansSkipsEmptyWindows) {
  time_series ts;
  ts.add(0.0, 1.0);
  ts.add(100.0, 9.0);
  EXPECT_EQ(ts.bin_means(10.0).size(), 2u);
}

TEST(TimeSeries, BinValidation) {
  time_series ts;
  ts.add(0.0, 1.0);
  EXPECT_THROW(ts.bin_means(0.0), std::invalid_argument);
  EXPECT_THROW(ts.bin_means(-1.0), std::invalid_argument);
}

TEST(TimeSeries, BetweenFilters) {
  time_series ts;
  for (int i = 0; i < 10; ++i) ts.add(i, i);
  const auto mid = ts.between(3.0, 7.0);
  EXPECT_EQ(mid.size(), 4u);
}

TEST(TimeSeries, ShortBinsNoisierThanLongBins) {
  // The Table 4 property: stddev of fine bins exceeds stddev of coarse bins
  // for a noisy series.
  const auto ts = testing::noise_series(20000, 1.0, 100.0, 10.0);
  const auto fine = ts.bin_means(10.0);
  const auto coarse = ts.bin_means(1800.0);
  EXPECT_GT(stddev(fine), 2.0 * stddev(coarse));
}

// ---------------------------------------------------------------- allan ----

TEST(Allan, WhiteNoiseDecreasesWithTau) {
  const auto ts = testing::noise_series(50000, 1.0, 100.0, 10.0);
  const double d10 = allan_deviation(ts, 10.0);
  const double d100 = allan_deviation(ts, 100.0);
  const double d1000 = allan_deviation(ts, 1000.0);
  EXPECT_GT(d10, d100);
  EXPECT_GT(d100, d1000);
  // 1/sqrt(tau) scaling within a factor.
  EXPECT_NEAR(d10 / d100, std::sqrt(10.0), 1.2);
}

TEST(Allan, DriftSeriesHasInteriorMinimum) {
  // Noise (fast) + sinusoidal drift (slow, period 5000 s): the Allan curve
  // should dip somewhere between the two scales.
  const auto ts =
      testing::drift_series(20000, 1.0, 100.0, 8.0, 15.0, 5000.0);
  const auto taus = log_spaced_taus(2.0, 8000.0, 24);
  const double best = allan_minimum_tau(ts, taus);
  EXPECT_GT(best, 10.0);
  EXPECT_LT(best, 5000.0);
}

TEST(Allan, RelativeNormalizesByMean) {
  const auto ts = testing::noise_series(5000, 1.0, 200.0, 10.0);
  EXPECT_NEAR(relative_allan_deviation(ts, 10.0),
              allan_deviation(ts, 10.0) / 200.0, 0.001);
}

TEST(Allan, FewWindowsReturnsZero) {
  time_series ts;
  ts.add(0.0, 1.0);
  ts.add(1.0, 2.0);
  EXPECT_DOUBLE_EQ(allan_deviation(ts, 100.0), 0.0);
}

TEST(Allan, Validation) {
  time_series ts;
  ts.add(0.0, 1.0);
  EXPECT_THROW(allan_deviation(ts, 0.0), std::invalid_argument);
  EXPECT_THROW(allan_minimum_tau(ts, {1000.0}), std::invalid_argument);
  EXPECT_THROW(log_spaced_taus(10.0, 5.0, 5), std::invalid_argument);
  EXPECT_THROW(log_spaced_taus(1.0, 10.0, 1), std::invalid_argument);
}

TEST(Allan, LogSpacedTausEndpointsAndMonotone) {
  const auto taus = log_spaced_taus(60.0, 3600.0, 10);
  ASSERT_EQ(taus.size(), 10u);
  EXPECT_NEAR(taus.front(), 60.0, 1e-9);
  EXPECT_NEAR(taus.back(), 3600.0, 1e-6);
  for (std::size_t i = 1; i < taus.size(); ++i) EXPECT_GT(taus[i], taus[i - 1]);
}

// ------------------------------------------------------------ histogram ----

TEST(Histogram, CountsAndClamping) {
  histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);  // clamps into first bin
  h.add(100.0);   // clamps into last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.counts().front(), 2u);
  EXPECT_EQ(h.counts().back(), 2u);
}

TEST(Histogram, PmfSumsToOne) {
  histogram h(0.0, 1.0, 7);
  rng_stream r(5);
  for (int i = 0; i < 100; ++i) h.add(r.uniform());
  const auto p = h.pmf(0.01);
  double sum = 0.0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, Validation) {
  EXPECT_THROW(histogram(1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(histogram(0.0, 1.0, 0), std::invalid_argument);
  histogram h(0.0, 1.0, 4);
  EXPECT_THROW(h.pmf(0.0), std::logic_error);
}

TEST(Entropy, UniformIsLogN) {
  const std::vector<double> p(8, 1.0 / 8.0);
  EXPECT_NEAR(entropy(p), std::log(8.0), 1e-12);
}

TEST(Entropy, PointMassIsZero) {
  const std::vector<double> p{1.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(entropy(p), 0.0);
}

TEST(Nkld, IdenticalDistributionsAreZero) {
  const std::vector<double> p{0.25, 0.25, 0.25, 0.25};
  EXPECT_DOUBLE_EQ(nkld(p, p), 0.0);
}

TEST(Nkld, IsSymmetric) {
  const std::vector<double> p{0.7, 0.2, 0.1};
  const std::vector<double> q{0.3, 0.4, 0.3};
  EXPECT_DOUBLE_EQ(nkld(p, q), nkld(q, p));
}

TEST(Nkld, GrowsWithDivergence) {
  const std::vector<double> p{0.5, 0.5};
  const std::vector<double> close{0.55, 0.45};
  const std::vector<double> far{0.95, 0.05};
  EXPECT_LT(nkld(p, close), nkld(p, far));
}

TEST(Nkld, KlValidation) {
  const std::vector<double> p{0.5, 0.5};
  const std::vector<double> bad{1.0, 0.0};
  EXPECT_THROW(kl_divergence_abs(p, bad), std::invalid_argument);
  const std::vector<double> shorter{1.0};
  EXPECT_THROW(kl_divergence_abs(p, shorter), std::invalid_argument);
}

TEST(NkldSamples, SameSourceConvergesSmall) {
  rng_stream r(6);
  std::vector<double> a, b;
  for (int i = 0; i < 4000; ++i) a.push_back(r.normal(10.0, 2.0));
  for (int i = 0; i < 4000; ++i) b.push_back(r.normal(10.0, 2.0));
  EXPECT_LT(nkld_of_samples(a, b), 0.05);
}

TEST(NkldSamples, DifferentSourcesLarge) {
  rng_stream r(6);
  std::vector<double> a, b;
  for (int i = 0; i < 2000; ++i) a.push_back(r.normal(10.0, 1.0));
  for (int i = 0; i < 2000; ++i) b.push_back(r.normal(20.0, 1.0));
  EXPECT_GT(nkld_of_samples(a, b), 0.5);
}

TEST(NkldSamples, HandlesConstantSamples) {
  const std::vector<double> a(50, 3.0);
  const std::vector<double> b(50, 3.0);
  EXPECT_LT(nkld_of_samples(a, b), 1e-9);
}

TEST(NkldSamples, RejectsEmpty) {
  const std::vector<double> a{1.0};
  EXPECT_THROW(nkld_of_samples(a, {}), std::invalid_argument);
  EXPECT_THROW(nkld_of_samples({}, a), std::invalid_argument);
}

// ------------------------------------------------------------- sampling ----

TEST(Sampling, WithoutReplacementSizesAndMembership) {
  std::vector<double> xs(100);
  std::iota(xs.begin(), xs.end(), 0.0);
  rng_stream r(3);
  const auto sub = sample_without_replacement(xs, 10, r);
  EXPECT_EQ(sub.size(), 10u);
  for (double v : sub) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 100.0);
  }
  // No duplicates (values are unique in the population).
  auto sorted = sub;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Sampling, WithoutReplacementFullPopulation) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  rng_stream r(3);
  auto sub = sample_without_replacement(xs, 3, r);
  std::sort(sub.begin(), sub.end());
  EXPECT_EQ(sub, xs);
  EXPECT_THROW(sample_without_replacement(xs, 4, r), std::invalid_argument);
}

TEST(Sampling, RandomSplitPartitions) {
  rng_stream r(5);
  const auto split = random_split(100, 0.3, r);
  EXPECT_EQ(split.first.size() + split.second.size(), 100u);
  EXPECT_NEAR(static_cast<double>(split.first.size()), 30.0, 1.0);
  std::vector<bool> seen(100, false);
  for (auto i : split.first) seen[i] = true;
  for (auto i : split.second) {
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

TEST(Sampling, RandomSplitValidation) {
  rng_stream r(5);
  EXPECT_THROW(random_split(1, 0.5, r), std::invalid_argument);
  EXPECT_THROW(random_split(10, 0.0, r), std::invalid_argument);
  EXPECT_THROW(random_split(10, 1.0, r), std::invalid_argument);
}

TEST(Sampling, ReservoirKeepsCapAndApproximatesUniform) {
  reservoir res(10, rng_stream(4));
  for (int i = 0; i < 10000; ++i) res.add(i);
  EXPECT_EQ(res.items().size(), 10u);
  EXPECT_EQ(res.seen(), 10000u);
  // Mean of kept items ~ population mean.
  double sum = 0.0;
  for (double v : res.items()) sum += v;
  EXPECT_NEAR(sum / 10.0, 5000.0, 2500.0);
}

TEST(Sampling, ReservoirRejectsZeroCapacity) {
  EXPECT_THROW(reservoir(0, rng_stream(1)), std::invalid_argument);
}

}  // namespace
}  // namespace wiscape::stats
